// Host-side throughput of the twin/diff machinery (the simulator's hot
// paths): diff creation, application, and merge across unit sizes and
// modification densities.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "mem/diff.h"

namespace dsm {
namespace {

struct Buffers {
  std::vector<std::byte> twin;
  std::vector<std::byte> current;
};

Buffers MakeBuffers(std::size_t bytes, double modified_fraction,
                    std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Buffers b;
  b.twin.resize(bytes);
  b.current.resize(bytes);
  auto* tw = reinterpret_cast<std::uint32_t*>(b.twin.data());
  auto* cur = reinterpret_cast<std::uint32_t*>(b.current.data());
  for (std::size_t i = 0; i < bytes / kWordBytes; ++i) {
    tw[i] = static_cast<std::uint32_t>(rng.Next());
    cur[i] = rng.UniformDouble() < modified_fraction ? tw[i] + 1 : tw[i];
  }
  return b;
}

void BM_DiffCreate(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  Buffers b = MakeBuffers(bytes, density, 42);
  for (auto _ : state) {
    Diff d = Diff::Create(b.twin, b.current);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DiffCreate)
    ->Args({4096, 10})
    ->Args({4096, 50})
    ->Args({4096, 100})
    ->Args({8192, 50})
    ->Args({16384, 50});

// Structured buffers: `num_runs` equally spaced runs of `run_words`
// modified words each, the rest untouched — the shape real applications
// produce (block-partitioned writers touch contiguous stretches).
Buffers MakeRunBuffers(std::size_t bytes, std::size_t num_runs,
                       std::size_t run_words, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Buffers b;
  b.twin.resize(bytes);
  b.current.resize(bytes);
  const std::size_t words = bytes / kWordBytes;
  std::vector<std::uint32_t> tw(words), cur(words);
  for (std::size_t i = 0; i < words; ++i) {
    tw[i] = static_cast<std::uint32_t>(rng.Next());
    cur[i] = tw[i];
  }
  const std::size_t stride = words / num_runs;
  for (std::size_t r = 0; r < num_runs; ++r) {
    for (std::size_t i = 0; i < run_words; ++i) {
      cur[r * stride + i] = tw[r * stride + i] + 1;
    }
  }
  std::memcpy(b.twin.data(), tw.data(), bytes);
  std::memcpy(b.current.data(), cur.data(), bytes);
  return b;
}

// The perf-gate cases (see ISSUE 2 / README "Performance methodology"):
// sparse = a few short runs separated by long equal stretches; dense =
// nearly every word modified in large contiguous runs.
void BM_DiffCreateSparse(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  Buffers b = MakeRunBuffers(bytes, 4, 8, 42);
  for (auto _ : state) {
    Diff d = Diff::Create(b.twin, b.current);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DiffCreateSparse)->Arg(4096)->Arg(16384);

void BM_DiffCreateDense(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const std::size_t words = bytes / kWordBytes;
  // 8 runs covering ~94% of the unit, short equal gaps between them.
  Buffers b = MakeRunBuffers(bytes, 8, words / 8 - 8, 42);
  for (auto _ : state) {
    Diff d = Diff::Create(b.twin, b.current);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DiffCreateDense)->Arg(4096)->Arg(16384);

void BM_DiffApply(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  Buffers b = MakeBuffers(bytes, 0.5, 42);
  Diff d = Diff::Create(b.twin, b.current);
  std::vector<std::byte> target = b.twin;
  for (auto _ : state) {
    d.Apply(target);
    benchmark::DoNotOptimize(target.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.payload_bytes()));
}
BENCHMARK(BM_DiffApply)->Arg(4096)->Arg(16384);

void BM_DiffMerge(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  Buffers b1 = MakeBuffers(bytes, 0.4, 1);
  Buffers b2 = MakeBuffers(bytes, 0.4, 2);
  Diff d1 = Diff::Create(b1.twin, b1.current);
  Diff d2 = Diff::Create(b2.twin, b2.current);
  for (auto _ : state) {
    Diff m = Diff::Merge(d1, d2, bytes / kWordBytes);
    benchmark::DoNotOptimize(m);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DiffMerge)->Arg(4096)->Arg(16384);

}  // namespace
}  // namespace dsm


#include "bench_common.h"

#include <cstdio>

namespace dsm::bench {

std::vector<ConfigPoint> FigureConfigs() {
  return {
      {"4K", AggregationMode::kStatic, 1},
      {"8K", AggregationMode::kStatic, 2},
      {"16K", AggregationMode::kStatic, 4},
      {"Dyn", AggregationMode::kDynamic, 1},
  };
}

RuntimeConfig MakeRuntimeConfig(const ConfigPoint& point, int num_procs) {
  RuntimeConfig cfg;
  cfg.num_procs = num_procs;
  cfg.aggregation = point.mode;
  cfg.pages_per_unit = point.pages_per_unit;
  return cfg;
}

FigureRow RunOne(const apps::AppSpec& spec, const ConfigPoint& point,
                 int num_procs) {
  auto app = apps::MakeApp(spec.app, spec.dataset);
  const apps::AppRun run =
      apps::Execute(*app, MakeRuntimeConfig(point, num_procs));

  FigureRow row;
  row.config = point.label;
  row.exec_seconds = run.stats.exec_seconds();
  row.useful_msgs = run.stats.comm.useful_messages;
  row.useless_msgs = run.stats.comm.useless_messages;
  row.sync_msgs = run.stats.comm.sync_messages;
  row.useful_bytes = run.stats.comm.useful_data_bytes;
  row.piggyback_bytes = run.stats.comm.piggyback_useless_bytes;
  row.useless_bytes = run.stats.comm.useless_msg_data_bytes;
  row.result = run.result;
  return row;
}

void PrintFigureBlock(const apps::AppSpec& spec, int num_procs) {
  std::printf("== %s %s ==\n", spec.app.c_str(), spec.dataset.c_str());
  std::printf(
      "%-5s %9s %6s | %9s %8s %8s %7s %6s | %9s %9s %9s %6s\n", "cfg",
      "time(s)", "norm", "msg_usef", "msg_usel", "msg_sync", "total",
      "norm", "KB_usef", "KB_piggy", "KB_usel", "norm");

  std::vector<FigureRow> rows;
  for (const ConfigPoint& point : FigureConfigs()) {
    rows.push_back(RunOne(spec, point, num_procs));
  }
  const FigureRow& base = rows.front();
  const double base_msgs = static_cast<double>(
      base.useful_msgs + base.useless_msgs + base.sync_msgs);
  const double base_bytes = static_cast<double>(
      base.useful_bytes + base.piggyback_bytes + base.useless_bytes);
  for (const FigureRow& r : rows) {
    const std::uint64_t msgs = r.useful_msgs + r.useless_msgs + r.sync_msgs;
    const std::uint64_t bytes =
        r.useful_bytes + r.piggyback_bytes + r.useless_bytes;
    std::printf(
        "%-5s %9.4f %6.3f | %9llu %8llu %8llu %7llu %6.3f | %9.1f %9.1f "
        "%9.1f %6.3f\n",
        r.config.c_str(), r.exec_seconds,
        r.exec_seconds / rows.front().exec_seconds,
        static_cast<unsigned long long>(r.useful_msgs),
        static_cast<unsigned long long>(r.useless_msgs),
        static_cast<unsigned long long>(r.sync_msgs),
        static_cast<unsigned long long>(msgs),
        base_msgs > 0 ? static_cast<double>(msgs) / base_msgs : 0.0,
        static_cast<double>(r.useful_bytes) / 1024.0,
        static_cast<double>(r.piggyback_bytes) / 1024.0,
        static_cast<double>(r.useless_bytes) / 1024.0,
        base_bytes > 0 ? static_cast<double>(bytes) / base_bytes : 0.0);
  }
  std::printf("\n");
}

}  // namespace dsm::bench

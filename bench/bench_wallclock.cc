// Host wall-clock benchmark gate for the simulator's hot paths.
//
// Runs the conformance applications at scaled-up (paper-sized) datasets
// under the three aggregation modes of the sweep, for both protocol
// backends ({4 K, 16 K, Dyn} × {LRC, HLRC}; filter with --backend=), and
// reports, per row:
//
//   * host wall-clock (what engine optimizations are allowed to change),
//   * modelled execution time (what they must NOT change),
//   * a 64-bit FNV-1a fingerprint over the full modelled state — result
//     checksum bits, per-node virtual times, every CommBreakdown counter,
//     and the per-kind NetStats tallies.
//
// Rows whose application is bit-deterministic at a fixed configuration
// (every conformance scenario with rel_tol == 0) are marked "stable": their
// fingerprint must be bit-identical across engine changes, making this
// binary a before/after gate for performance work.  Results land in
// BENCH_wallclock.json at the repository root (override with --out=PATH)
// so the perf trajectory is tracked from PR to PR.
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/kvstore.h"
#include "apps/registry.h"

namespace dsm::bench {
namespace {

// FNV-1a, 64-bit: stable, dependency-free fingerprint accumulator.
class Fingerprint {
 public:
  void Mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }
  void MixDouble(double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    Mix(bits);
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t ModelledFingerprint(double result, const RunStats& stats) {
  Fingerprint fp;
  fp.MixDouble(result);
  fp.Mix(static_cast<std::uint64_t>(stats.exec_time));
  for (VirtualNanos t : stats.node_times) {
    fp.Mix(static_cast<std::uint64_t>(t));
  }
  const CommBreakdown& c = stats.comm;
  for (std::uint64_t v :
       {c.useful_messages, c.useless_messages, c.sync_messages,
        c.useful_data_bytes, c.piggyback_useless_bytes,
        c.useless_msg_data_bytes, c.delivered_data_bytes, c.read_faults,
        c.write_faults, c.silent_validations, c.twins_created,
        c.diffs_created, c.diffs_applied, c.units_invalidated,
        c.group_prefetch_units}) {
    fp.Mix(v);
  }
  // HLRC home counters, mixed only when engaged: they are always zero
  // under the LRC backend, and unconditionally mixing the new fields
  // would have changed every fingerprint committed before the HLRC
  // backend existed.
  if (c.home_flush_messages + c.home_flushes + c.home_fetches > 0) {
    for (std::uint64_t v : {c.home_flush_messages, c.home_flushes,
                            c.home_flush_bytes, c.home_fetches,
                            c.home_fetch_bytes}) {
      fp.Mix(v);
    }
  }
  // Crash-recovery counters (DESIGN.md §9), same zero-entry skip rule:
  // a run with no fired fault hashes exactly as before the subsystem
  // existed; a faulted row pins the full recovery trajectory (messages,
  // bytes, rebuilt units, replayed records, modelled latency).
  if (c.recoveries > 0) {
    for (std::uint64_t v : {c.recoveries, c.recovery_messages,
                            c.recovery_data_bytes, c.recovery_units,
                            c.recovery_records, c.recovery_retransmits,
                            c.recovery_retransmit_bytes}) {
      fp.Mix(v);
    }
    fp.Mix(static_cast<std::uint64_t>(stats.recovery_modelled_ns));
  }
  for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
    const auto kind = static_cast<MessageKind>(k);
    const std::uint64_t msgs = stats.net.messages(kind);
    const std::uint64_t bytes = stats.net.bytes(kind);
    // Same back-compat rule for the message kinds appended for HLRC:
    // zero entries of the new kinds are skipped so pre-HLRC rows hash
    // exactly as before.
    if (k >= kFirstHomeMessageKind && msgs == 0 && bytes == 0) continue;
    fp.Mix(msgs);
    fp.Mix(bytes);
  }
  return fp.value();
}

struct ModePoint {
  const char* label;
  AggregationMode mode;
  int pages_per_unit;
};

// The conformance sweep's aggregation modes (tests/test_conformance.cc).
const ModePoint kModes[] = {
    {"4K", AggregationMode::kStatic, 1},
    {"16K", AggregationMode::kStatic, 4},
    {"Dyn", AggregationMode::kDynamic, 1},
};

struct BenchScenario {
  const char* app;
  const char* dataset;  // scaled-up counterpart of the "tiny" scenario
  bool stable;          // rel_tol == 0 in the conformance catalogue
};

// One row per conformance application, at the smallest paper-sized dataset
// (the "tiny" conformance inputs finish in microseconds and would measure
// only startup).  Water and TSP synchronize through locks, whose grant
// order depends on host scheduling — their modelled state is not
// bit-reproducible run to run, so they are benchmarked but not gated.
const BenchScenario kScenarios[] = {
    {"Jacobi", "1Kx1K", true},    {"MGS", "1Kx1K", true},
    {"3D-FFT", "64x64x32", true}, {"Shallow", "1Kx0.5K", true},
    {"Barnes", "16K", true},      {"ILINK", "CLP", true},
    {"Water", "512", false},      {"TSP", "11-city", false},
};

// Protocol backends benched side by side: the paper's LRC and the
// home-based counterpart (DESIGN.md §7).  The reference oracle is a
// correctness tool, not a performance point, so it is not swept here.
struct BackendPoint {
  const char* label;
  BackendKind backend;
};

const BackendPoint kBackends[] = {
    {"LRC", BackendKind::kLrc},
    {"HLRC", BackendKind::kHlrc},
};

struct Row {
  std::string app, dataset, mode, backend;
  std::string fault;  // crash-schedule spec, "" = failure-free row
  int procs = 8;
  int gc_lag = 0;  // non-default gc_lag_barriers for fault-sweep rows
  bool stable = false;
  // --race=on: the happens-before checker ran; `races` is its report
  // count.  Host-side observation only — excluded from the fingerprint
  // (like mem), which must stay bit-identical to a --race=off sweep.
  bool race_checked = false;
  std::uint64_t races = 0;
  double wall_ms = 0;
  double modelled_ms = 0;
  double result = 0;
  std::uint64_t fingerprint = 0;
  // Recovery-cost axis (fault rows only): modelled recovery latency and
  // the bytes/retransmits the rebuilds put on the books.
  double recovery_ms = 0;
  std::uint64_t recovery_bytes = 0;
  std::uint64_t recovery_retransmits = 0;
  // KV rows only: modelled request count and throughput
  // (requests / modelled execution time).  Derived from modelled numbers
  // but — like the mem telemetry — excluded from the fingerprint: KV is
  // lock-scheduled, so its modelled time is not bit-stable anyway.
  std::uint64_t kv_requests = 0;
  double kv_rps = 0;
  MemoryFootprint mem;
};

void Usage(std::FILE* f) {
  std::fprintf(
      f,
      "usage: bench_wallclock [--procs=N[,N...]] [--gc=N] [--app=SUBSTR]\n"
      "                       [--mode=SUBSTR] [--backend=LRC|HLRC]\n"
      "                       [--fault=EVENT[+EVENT...]|seed:S]\n"
      "                       [--fault-sweep] [--kv-sweep] [--race=on|off] "
      "[--out=PATH] [--baseline=PATH]\n"
      "  EVENT is barrier:V@N (kill proc V at its N-th barrier) or\n"
      "  release:V@M (kill proc V after its M-th interval close); '+'\n"
      "  chains events into an ordered multi-fault schedule.  Any victim\n"
      "  is legal, proc 0 included.  seed:S derives the whole schedule\n"
      "  from the 64-bit seed S.  --fault-sweep runs the recovery-cost\n"
      "  slice: a proc-0 + home-crash schedule across gc_lag_barriers\n"
      "  in {1,2,4,8} on both backends.  --kv-sweep runs the KV request\n"
      "  slice: the three KV mixes (read-mostly / write-heavy / hot, each\n"
      "  >= 1M modelled requests) on both backends, reporting modelled\n"
      "  requests/sec per row.  --race=on runs the sweep under\n"
      "  the happens-before race checker (DESIGN.md §10): host wall-clock\n"
      "  pays for the shadow analysis, modelled numbers and fingerprints\n"
      "  are bit-identical to --race=off.\n");
}

// --race takes exactly "on" or "off" — the same whole-token strictness as
// ParseCount: a typo ('--race=On', '--race=1') must not silently run an
// unchecked sweep that is then read as a clean race report.
bool ParseRaceFlag(const char* s) {
  if (std::strcmp(s, "on") == 0) return true;
  if (std::strcmp(s, "off") == 0) return false;
  std::fprintf(stderr, "--race: invalid value '%s' (want on|off)\n", s);
  Usage(stderr);
  std::exit(2);
}

// Validated numeric flag parsing: the whole token must be a base-10
// integer >= min_value.  std::atoi silently turned garbage ('--procs=8x',
// '--gc=') into 0 and ran a nonsense sweep; reject with a usage error.
int ParseCount(const char* flag, const char* s, int min_value) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < min_value ||
      v > 1 << 20) {
    std::fprintf(stderr, "%s: invalid value '%s' (integer >= %d required)\n",
                 flag, s, min_value);
    Usage(stderr);
    std::exit(2);
  }
  return static_cast<int>(v);
}

// A crash schedule plus the row tag it is reported under.  Default = inert.
struct FaultSpec {
  std::string label;  // "" = no fault
  dsm::FaultSchedule schedule;
};

// --fault accepts an ordered '+'-separated schedule of crash events —
// "barrier:V@N" (kill proc V at its N-th barrier) and "release:V@M"
// (kill proc V after its M-th interval close), any victim including
// proc 0, e.g. "barrier:0@4+release:2@6" — or "seed:S" (1–3 events fully
// derived from the 64-bit seed S).  Anything else is a usage error
// (exit 2) — a silently ignored crash spec would report failure-free
// numbers as a fault row.
FaultSpec ParseFaultSpec(const char* s) {
  auto fail = [s]() -> FaultSpec {
    std::fprintf(stderr,
                 "--fault: invalid spec '%s' (want barrier:V@N or "
                 "release:V@M, '+'-chained, or seed:S)\n",
                 s);
    Usage(stderr);
    std::exit(2);
  };
  FaultSpec spec;
  spec.label = s;
  if (std::strncmp(s, "seed:", 5) == 0) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long seed = std::strtoull(s + 5, &end, 10);
    if (errno != 0 || end == s + 5 || *end != '\0') return fail();
    spec.schedule = dsm::FaultSchedule::FromSeed(seed);
    return spec;
  }
  const char* p = s;
  while (true) {
    const char* plus = std::strchr(p, '+');
    const std::string tok =
        plus != nullptr ? std::string(p, plus) : std::string(p);
    const bool at_barrier = tok.compare(0, 8, "barrier:") == 0;
    const bool after_release = tok.compare(0, 8, "release:") == 0;
    if (!at_barrier && !after_release) return fail();
    const std::size_t at = tok.find('@', 8);
    if (at == std::string::npos || at == 8 || at + 1 == tok.size()) {
      return fail();
    }
    const int victim =
        ParseCount("--fault victim", tok.substr(8, at - 8).c_str(), 0);
    const int point = ParseCount("--fault point", tok.c_str() + at + 1,
                                 at_barrier ? 0 : 1);
    spec.schedule.events.push_back(
        at_barrier ? dsm::FaultPlan::AtBarrier(victim, point)
                   : dsm::FaultPlan::AfterRelease(victim, point));
    if (plus == nullptr) break;
    p = plus + 1;
  }
  return spec;
}

// --procs accepts a comma-separated sweep list ("--procs=8,16,64").
std::vector<int> ParseProcsList(const char* s) {
  std::vector<int> list;
  std::string token;
  for (const char* p = s;; ++p) {
    if (*p != '\0' && *p != ',') {
      token.push_back(*p);
      continue;
    }
    list.push_back(ParseCount("--procs", token.c_str(), 1));
    token.clear();
    if (*p == '\0') break;
  }
  return list;
}

Row RunCell(const BenchScenario& s, const ModePoint& mode,
            const BackendPoint& backend, int num_procs, int gc_interval,
            const FaultSpec& fault, int gc_lag = 0,
            bool race_check = false) {
  RuntimeConfig cfg;
  cfg.num_procs = num_procs;
  cfg.aggregation = mode.mode;
  cfg.pages_per_unit = mode.pages_per_unit;
  cfg.backend = backend.backend;
  cfg.gc_interval_barriers = gc_interval;
  cfg.fault = fault.schedule;
  cfg.race_check = race_check;
  if (gc_lag > 0) cfg.gc_lag_barriers = gc_lag;

  auto app = apps::MakeApp(s.app, s.dataset);
  const auto t0 = std::chrono::steady_clock::now();
  const apps::AppRun run = apps::Execute(*app, cfg);
  const auto t1 = std::chrono::steady_clock::now();

  Row row;
  row.app = s.app;
  row.dataset = s.dataset;
  row.mode = mode.label;
  row.backend = backend.label;
  row.fault = fault.label;
  row.procs = num_procs;
  row.gc_lag = gc_lag;
  row.stable = s.stable;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.modelled_ms = run.stats.exec_seconds() * 1e3;
  row.result = run.result;
  row.fingerprint = ModelledFingerprint(run.result, run.stats);
  row.recovery_ms =
      static_cast<double>(run.stats.recovery_modelled_ns) / 1e6;
  row.recovery_bytes = run.stats.comm.recovery_data_bytes;
  row.recovery_retransmits = run.stats.comm.recovery_retransmits;
  row.race_checked = run.stats.races.checked;
  row.races = run.stats.races.reports.size() + run.stats.races.dropped;
  if (const auto* kv = dynamic_cast<const apps::KvStore*>(app.get())) {
    row.kv_requests = kv->ModelledRequests(num_procs);
    const double modelled_s = run.stats.exec_seconds();
    if (modelled_s > 0) {
      row.kv_rps = static_cast<double>(row.kv_requests) / modelled_s;
    }
  }
  row.mem = run.stats.mem;
  return row;
}

// Minimal reader for the JSON this binary itself writes (one row object
// per line): extracts (app, dataset, mode, stable, wall_ms) per row.
struct BaselineRow {
  std::string app, dataset, mode, backend;
  std::string fault;  // absent in pre-fault baselines → ""
  int procs = 8;
  int gc_lag = 0;  // absent outside fault-sweep rows → 0
  bool stable = false;
  double wall_ms = 0;
  // Result checksum, %.17g-round-tripped (exact for doubles).  KV rows
  // gate on this instead of wall-clock: their host time is lock-schedule
  // noisy, but the commuting checksum must never move.
  double result = 0;
  bool has_result = false;
};

std::vector<BaselineRow> ReadBaseline(const std::string& path) {
  std::vector<BaselineRow> rows;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open baseline %s\n", path.c_str());
    return rows;
  }
  char line[2048];
  auto field = [](const char* s, const char* key) -> std::string {
    const char* p = std::strstr(s, key);
    if (p == nullptr) return {};
    p += std::strlen(key);
    const char* e = std::strchr(p, '"');
    return e != nullptr ? std::string(p, e) : std::string();
  };
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strstr(line, "\"app\"") == nullptr) continue;
    BaselineRow r;
    r.app = field(line, "\"app\": \"");
    r.dataset = field(line, "\"dataset\": \"");
    r.mode = field(line, "\"mode\": \"");
    // Baselines written before the backend dimension existed are all LRC.
    r.backend = field(line, "\"backend\": \"");
    if (r.backend.empty()) r.backend = "LRC";
    // Rows written before the fault dimension (or failure-free rows, which
    // omit the field) are all failure-free.
    r.fault = field(line, "\"fault\": \"");
    // Baselines written before the procs dimension are all 8-processor.
    const char* pp = std::strstr(line, "\"procs\": ");
    if (pp != nullptr) r.procs = std::atoi(pp + 9);
    const char* gl = std::strstr(line, "\"gc_lag\": ");
    if (gl != nullptr) r.gc_lag = std::atoi(gl + 10);
    r.stable = std::strstr(line, "\"stable\": true") != nullptr;
    const char* w = std::strstr(line, "\"wall_ms\": ");
    if (w != nullptr) r.wall_ms = std::atof(w + 11);
    const char* res = std::strstr(line, "\"result\": ");
    if (res != nullptr) {
      r.result = std::atof(res + 10);
      r.has_result = true;
    }
    if (!r.app.empty()) rows.push_back(std::move(r));
  }
  std::fclose(f);
  return rows;
}

// Gate: every stable row's host wall-clock must stay within
// `tolerance` (fractional) of the committed baseline.  Unstable rows
// (lock programs) and rows missing from the baseline are reported but
// never gate on wall-clock — but KV rows gate on their CHECKSUM instead:
// the commuting-checksum construction makes the result exact under any
// lock schedule, so a moved KV result is a correctness regression even
// though the row's host time is free to drift.  Returns the number of
// regressions.
int CompareToBaseline(const std::vector<Row>& rows,
                      const std::vector<BaselineRow>& baseline,
                      double tolerance) {
  int regressions = 0;
  for (const Row& r : rows) {
    const BaselineRow* base = nullptr;
    for (const BaselineRow& b : baseline) {
      if (b.app == r.app && b.dataset == r.dataset && b.mode == r.mode &&
          b.backend == r.backend && b.fault == r.fault &&
          b.procs == r.procs && b.gc_lag == r.gc_lag) {
        base = &b;
        break;
      }
    }
    if (base == nullptr) {
      std::printf("baseline: %s/%s/%s/%s/p%d not in baseline (new row?)\n",
                  r.app.c_str(), r.dataset.c_str(), r.mode.c_str(),
                  r.backend.c_str(), r.procs);
      continue;
    }
    if (r.app == "KV" && base->has_result && r.result != base->result) {
      ++regressions;
      std::printf(
          "baseline: %-8s %-10s %-4s %-4s p%-3d checksum %.17g -> %.17g"
          "  CHECKSUM REGRESSION\n",
          r.app.c_str(), r.dataset.c_str(), r.mode.c_str(),
          r.backend.c_str(), r.procs, base->result, r.result);
      continue;
    }
    const double ratio = base->wall_ms > 0 ? r.wall_ms / base->wall_ms : 1.0;
    const bool gated = r.stable && base->stable;
    const bool regressed = gated && ratio > 1.0 + tolerance;
    if (regressed) ++regressions;
    if (regressed || ratio > 1.0 + tolerance) {
      std::printf(
          "baseline: %-8s %-10s %-4s %-4s p%-3d %8.1f -> %8.1f ms "
          "(%+.0f%%)%s\n",
          r.app.c_str(), r.dataset.c_str(), r.mode.c_str(),
          r.backend.c_str(), r.procs, base->wall_ms, r.wall_ms,
          (ratio - 1.0) * 100,
          regressed ? "  REGRESSION" : "  (unstable, not gated)");
    }
  }
  if (regressions > 0) {
    std::printf("baseline gate FAILED: %d stable row(s) regressed >%.0f%%\n",
                regressions, tolerance * 100);
  } else {
    std::printf("baseline gate passed (tolerance %.0f%%)\n",
                tolerance * 100);
  }
  return regressions;
}

void WriteJson(const std::vector<Row>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    // Failure-free rows omit the fault/recovery fields entirely
    // (zero-entry skip rule): a pre-fault baseline and a regenerated one
    // stay line-for-line comparable on every pre-existing row.  Fault
    // rows carry the full schedule spec plus the recovery-cost axis
    // (modelled recovery latency, recovery bytes, retransmits), and
    // fault-sweep rows add the gc_lag point they were run at.
    std::string fault_field =
        r.fault.empty() ? "" : "\"fault\": \"" + r.fault + "\", ";
    // Race column, keyed on the flag (not the count): a checked row with
    // zero races records "certified clean", an unchecked row omits the
    // field so --race=off output is line-for-line the pre-detector shape.
    if (r.race_checked) {
      fault_field += "\"races\": " + std::to_string(r.races) + ", ";
    }
    if (!r.fault.empty() && r.gc_lag > 0) {
      fault_field += "\"gc_lag\": " + std::to_string(r.gc_lag) + ", ";
    }
    if (!r.fault.empty()) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "\"recovery_ms\": %.6f, \"recovery_bytes\": %llu, "
                    "\"recovery_retransmits\": %llu, ",
                    r.recovery_ms,
                    static_cast<unsigned long long>(r.recovery_bytes),
                    static_cast<unsigned long long>(r.recovery_retransmits));
      fault_field += buf;
    }
    // KV request-throughput axis, same zero-entry skip rule: non-KV rows
    // are byte-identical to a build without the column.
    if (r.kv_requests > 0) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "\"requests\": %llu, "
                    "\"modelled_requests_per_sec\": %.3f, ",
                    static_cast<unsigned long long>(r.kv_requests), r.kv_rps);
      fault_field += buf;
    }
    std::fprintf(
        f,
        "    {\"app\": \"%s\", \"dataset\": \"%s\", \"mode\": "
        "\"%s\", \"backend\": \"%s\", %s\"procs\": %d, \"stable\": %s, "
        "\"wall_ms\": %.3f, "
        "\"modelled_ms\": %.6f, \"result\": %.17g, "
        "\"fingerprint\": \"%016llx\", "
        "\"peak_live_intervals\": %llu, \"peak_archive_bytes\": %llu, "
        "\"reclaimed_intervals\": %llu, \"canonical_base_bytes\": %llu, "
        "\"gc_passes\": %llu, \"chains_built\": %llu, "
        "\"chains_shared\": %llu, \"records_elided\": %llu}%s\n",
        r.app.c_str(), r.dataset.c_str(), r.mode.c_str(), r.backend.c_str(),
        fault_field.c_str(), r.procs, r.stable ? "true" : "false", r.wall_ms,
        r.modelled_ms,
        r.result,
        static_cast<unsigned long long>(r.fingerprint),
        static_cast<unsigned long long>(r.mem.peak_live_intervals),
        static_cast<unsigned long long>(r.mem.peak_archive_bytes),
        static_cast<unsigned long long>(r.mem.reclaimed_intervals),
        static_cast<unsigned long long>(r.mem.canonical_base_peak_bytes),
        static_cast<unsigned long long>(r.mem.gc_passes),
        static_cast<unsigned long long>(r.mem.chains_built),
        static_cast<unsigned long long>(r.mem.chains_shared),
        static_cast<unsigned long long>(r.mem.records_elided),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace dsm::bench

int main(int argc, char** argv) {
  using namespace dsm::bench;
#ifdef PAGEDSM_SOURCE_DIR
  std::string out = std::string(PAGEDSM_SOURCE_DIR) + "/BENCH_wallclock.json";
#else
  std::string out = "BENCH_wallclock.json";
#endif
  std::vector<int> procs_list;
  int gc_interval = dsm::RuntimeConfig{}.gc_interval_barriers;
  std::string app_filter, mode_filter, backend_filter, baseline_path;
  FaultSpec fault_spec;  // inert unless --fault= is given
  bool fault_sweep_only = false;
  bool kv_sweep_only = false;
  bool race_check = false;
  bool explicit_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
      explicit_out = true;
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      // CI gate (see .github/workflows/ci.yml Release job): compare this
      // sweep's host wall-clock against the committed BENCH_wallclock.json
      // and exit non-zero if any STABLE row regressed more than 25% — the
      // Water-class "GC quietly costs half the wall-clock" regressions get
      // caught by the unstable-row report lines even though locks keep
      // those rows from gating hard.
      baseline_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--procs=", 8) == 0) {
      procs_list = ParseProcsList(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--gc=", 5) == 0) {
      gc_interval = ParseCount("--gc", argv[i] + 5, 0);
    } else if (std::strncmp(argv[i], "--app=", 6) == 0) {
      // Row filters for local iteration (case-sensitive substring match,
      // so the full sweep is not the only way to time one app):
      //   --app=MGS --mode=16K
      app_filter = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      mode_filter = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      // Backend filter is an exact label ("LRC" / "HLRC"): substring
      // matching would make --backend=LRC select both trajectories.
      backend_filter = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--fault=", 8) == 0) {
      // Run every selected row under this crash schedule (DESIGN.md §9).
      fault_spec = ParseFaultSpec(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--fault-sweep") == 0) {
      fault_sweep_only = true;
    } else if (std::strcmp(argv[i], "--kv-sweep") == 0) {
      kv_sweep_only = true;
    } else if (std::strncmp(argv[i], "--race=", 7) == 0) {
      race_check = ParseRaceFlag(argv[i] + 7);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      Usage(stderr);
      return 2;
    }
  }
  const bool default_procs = procs_list.empty();
  if (default_procs) procs_list.push_back(8);
  auto matches = [](const std::string& filter, const char* value) {
    return filter.empty() || std::string(value).find(filter) !=
                                 std::string::npos;
  };

  std::vector<Row> rows;
  std::printf("%-8s %-10s %-4s %-4s %5s %10s %14s  %-16s %-6s %12s %14s\n",
              "app", "dataset", "cfg", "bknd", "procs", "wall(ms)",
              "modelled(ms)", "fingerprint", "stable", "peak_ivals",
              "peak_arch_KB");
  auto run_and_print = [&](const BenchScenario& s, const ModePoint& mode,
                           const BackendPoint& backend, int np,
                           const FaultSpec& fault, int gc_lag = 0) {
    Row row = RunCell(s, mode, backend, np, gc_interval, fault, gc_lag,
                      race_check);
    std::printf(
        "%-8s %-10s %-4s %-4s %5d %10.1f %14.3f  %016llx %-6s %12llu "
        "%14llu%s%s",
        row.app.c_str(), row.dataset.c_str(), row.mode.c_str(),
        row.backend.c_str(), row.procs, row.wall_ms, row.modelled_ms,
        static_cast<unsigned long long>(row.fingerprint),
        row.stable ? "yes" : "no",
        static_cast<unsigned long long>(row.mem.peak_live_intervals),
        static_cast<unsigned long long>(row.mem.peak_archive_bytes / 1024),
        row.fault.empty() ? "" : "  fault=", row.fault.c_str());
    if (row.race_checked) {
      std::printf("  races=%llu", static_cast<unsigned long long>(row.races));
    }
    if (!row.fault.empty()) {
      std::printf("  lag=%d recovery=%.3fms/%lluB/%llu rexmit", row.gc_lag,
                  row.recovery_ms,
                  static_cast<unsigned long long>(row.recovery_bytes),
                  static_cast<unsigned long long>(row.recovery_retransmits));
    }
    if (row.kv_requests > 0) {
      std::printf("  req=%llu modelled_req/s=%.0f",
                  static_cast<unsigned long long>(row.kv_requests),
                  row.kv_rps);
    }
    std::printf("\n");
    rows.push_back(std::move(row));
  };
  // Recovery-cost slice (DESIGN.md §9): a three-event schedule covering a
  // proc-0 coordinator failover and — under HLRC, where every victim is
  // also a home — two home crashes, swept across the GC lag (which sets
  // how much log tail an LRC rebuild must replay above the checkpoint)
  // on both backends.  Part of the full default sweep so the rows are
  // tracked in BENCH_wallclock.json; --fault-sweep runs just this slice.
  auto run_fault_sweep = [&]() {
    const BenchScenario jacobi{"Jacobi", "1Kx1K", true};
    FaultSpec sched;
    sched.label = "barrier:0@4+release:2@6";
    sched.schedule.events = {dsm::FaultPlan::AtBarrier(0, 4),
                             dsm::FaultPlan::AfterRelease(2, 6)};
    for (const BackendPoint& backend : kBackends) {
      for (int lag : {1, 2, 4, 8}) {
        run_and_print(jacobi, kModes[0], backend, 8, sched, lag);
      }
    }
  };
  // KV request slice (ROADMAP "serve real traffic"): the three bench
  // mixes — each >= 1M modelled requests at the default 8 processors —
  // on both protocol backends at the 4 K base unit, reporting modelled
  // requests/sec.  Rows are unstable (lock-scheduled wall-clock and
  // modelled time) but their checksums are pinned by the --baseline
  // gate: the commuting-checksum result must never move.  Rides the full
  // default sweep; --kv-sweep runs just this slice.
  auto run_kv_sweep = [&]() {
    const BenchScenario kKvMixes[] = {
        {"KV", "read-mostly", false},
        {"KV", "write-heavy", false},
        {"KV", "hot", false},
    };
    for (const BackendPoint& backend : kBackends) {
      for (const BenchScenario& s : kKvMixes) {
        run_and_print(s, kModes[0], backend, 8, FaultSpec{});
      }
    }
  };
  if (fault_sweep_only || kv_sweep_only) {
    if (fault_sweep_only) run_fault_sweep();
    if (kv_sweep_only) run_kv_sweep();
  } else {
    for (const BackendPoint& backend : kBackends) {
      if (!backend_filter.empty() && backend_filter != backend.label) {
        continue;
      }
      for (const BenchScenario& s : kScenarios) {
        if (!matches(app_filter, s.app)) continue;
        for (const ModePoint& mode : kModes) {
          if (!matches(mode_filter, mode.label)) continue;
          for (int np : procs_list) {
            run_and_print(s, mode, backend, np, fault_spec);
          }
        }
      }
    }
  }
  // A filtered (or non-default-GC, non-default-procs, explicitly faulted)
  // run is a partial sweep: never let it silently clobber the tracked
  // full-sweep baseline at the default path.
  // --race=on is partial too: modelled numbers and fingerprints are
  // bit-identical either way, but the host wall-clock pays for the shadow
  // analysis and must not overwrite the tracked unchecked trajectory.
  const bool partial = !app_filter.empty() || !mode_filter.empty() ||
                       !backend_filter.empty() || !default_procs ||
                       !fault_spec.label.empty() || fault_sweep_only ||
                       kv_sweep_only || race_check ||
                       gc_interval !=
                           dsm::RuntimeConfig{}.gc_interval_barriers;
  // Cluster-scaling trajectory (DESIGN.md §8): the full default sweep also
  // times one bit-deterministic app with the processor count doubling past
  // the paper's native 8, on both backends, so the sparse-clock and
  // sharer-directory work is gated at scale from PR to PR.
  if (!partial) {
    const BenchScenario jacobi{"Jacobi", "1Kx1K", true};
    for (const BackendPoint& backend : kBackends) {
      for (int np : {16, 32, 64, 128}) {
        run_and_print(jacobi, kModes[0], backend, np, FaultSpec{});
      }
    }
    // Crash-recovery trajectory (DESIGN.md §9): one barrier app under a
    // kill-at-barrier and a kill-mid-interval plan, on both backends.
    // Barrier apps recover bit-deterministically, so these rows are
    // stable: the fingerprint pins the post-recovery result AND the full
    // recovery telemetry from PR to PR.
    const FaultSpec kFaultSlice[] = {
        {"barrier:1@4", dsm::FaultPlan::AtBarrier(1, 4)},
        {"release:1@8", dsm::FaultPlan::AfterRelease(1, 8)},
    };
    for (const BackendPoint& backend : kBackends) {
      for (const FaultSpec& fault : kFaultSlice) {
        run_and_print(jacobi, kModes[0], backend, 8, fault);
      }
    }
    // Recovery-cost axis: the multi-fault gc_lag sweep rides the full
    // default sweep too, so its recovery_ms / recovery_bytes rows are
    // tracked in the committed baseline.
    run_fault_sweep();
    // Request-throughput axis: the KV mixes ride the default sweep so
    // their modelled_requests_per_sec trajectory and pinned checksums
    // are tracked in the committed baseline.
    run_kv_sweep();
  }
  // Read the baseline BEFORE writing results (--out may point at the
  // same file; CI reuses the committed baseline path for the artifact),
  // but always write the fresh sweep before gating — the regressed
  // numbers are the diagnostic.
  std::vector<BaselineRow> baseline;
  if (!baseline_path.empty()) baseline = ReadBaseline(baseline_path);
  if (partial && !explicit_out) {
    std::printf("partial sweep: not writing %s (pass --out= to force)\n",
                out.c_str());
  } else {
    WriteJson(rows, out);
  }
  if (!baseline_path.empty()) {
    if (baseline.empty()) {
      std::fprintf(stderr, "baseline %s empty or unreadable\n",
                   baseline_path.c_str());
      return 2;
    }
    if (CompareToBaseline(rows, baseline, 0.25) > 0) return 1;
  }
  return 0;
}

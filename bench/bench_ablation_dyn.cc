// Ablation: dynamic aggregation's maximum group size (the paper calls it
// "some implementation-dependent maximum number of pages per group").
// Sweeps max_group_pages over {1, 2, 4, 8, 16} on the two applications
// where dynamic aggregation matters most in opposite ways: ILINK (stable
// repeating pattern — bigger groups keep winning) and MGS (no repetition —
// grouping must never hurt).
#include <cstdio>

#include "bench_common.h"

int main() {
  using dsm::apps::AppSpec;
  const AppSpec specs[] = {{"ILINK", "CLP"}, {"MGS", "1Kx1K"}};
  const int group_sizes[] = {1, 2, 4, 8, 16};

  std::printf("Ablation: dynamic aggregation max group size\n\n");
  for (const AppSpec& spec : specs) {
    std::printf("== %s %s ==\n", spec.app.c_str(), spec.dataset.c_str());
    std::printf("%-10s %10s %12s %12s\n", "max_group", "time(s)",
                "exchanges", "prefetches");
    for (int g : group_sizes) {
      dsm::RuntimeConfig cfg;
      cfg.num_procs = 8;
      cfg.aggregation = dsm::AggregationMode::kDynamic;
      cfg.max_group_pages = g;
      auto app = dsm::apps::MakeApp(spec.app, spec.dataset);
      const dsm::apps::AppRun run = dsm::apps::Execute(*app, cfg);
      std::printf("%-10d %10.4f %12llu %12llu\n", g,
                  run.stats.exec_seconds(),
                  (unsigned long long)((run.stats.comm.useful_messages +
                                        run.stats.comm.useless_messages) /
                                       2),
                  (unsigned long long)run.stats.comm.group_prefetch_units);
    }
    std::printf("\n");
  }
  return 0;
}

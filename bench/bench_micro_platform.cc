// Microbenchmarks of the modelled platform primitives against the paper's
// §5.1 measurements (these are google-benchmark wall-clock measurements of
// the *simulator*, with the modelled virtual costs reported as counters —
// the counters are the reproduction target):
//   1-byte UDP round trip: 296 µs     lock acquire: 374–574 µs
//   8-processor barrier:   861 µs     diff fetch:   579–1746 µs
#include <benchmark/benchmark.h>

#include "core/runtime.h"

namespace dsm {
namespace {

void BM_RoundTrip1Byte(benchmark::State& state) {
  NetworkConfig config;
  config.wire_header_bytes = 0;
  NetworkModel net(config);
  VirtualNanos t = 0;
  for (auto _ : state) {
    t = net.RoundTripTime(1, 0);
    benchmark::DoNotOptimize(t);
  }
  state.counters["modelled_us"] = static_cast<double>(t) / 1e3;
  state.counters["paper_us"] = 296;
}
BENCHMARK(BM_RoundTrip1Byte);

void BM_EightProcBarrier(benchmark::State& state) {
  VirtualNanos modelled = 0;
  for (auto _ : state) {
    RuntimeConfig cfg;
    cfg.num_procs = 8;
    cfg.heap_bytes = 1u << 20;
    cfg.net.wire_header_bytes = 0;
    Runtime rt(cfg);
    rt.Run([](Proc& p) { p.Barrier(); });
    modelled = rt.CollectStats().exec_time;
  }
  state.counters["modelled_us"] = static_cast<double>(modelled) / 1e3;
  state.counters["paper_us"] = 861;
}
BENCHMARK(BM_EightProcBarrier)->Unit(benchmark::kMillisecond);

void BM_LockAcquire(benchmark::State& state) {
  VirtualNanos modelled = 0;
  for (auto _ : state) {
    RuntimeConfig cfg;
    cfg.num_procs = 2;
    cfg.heap_bytes = 1u << 20;
    cfg.net.wire_header_bytes = 0;
    Runtime rt(cfg);
    rt.Run([](Proc& p) {
      if (p.id() == 0) {
        p.Lock(0);
        p.Unlock(0);
      }
    });
    modelled = rt.node(0).clock().now();
  }
  state.counters["modelled_us"] = static_cast<double>(modelled) / 1e3;
  state.counters["paper_us_min"] = 374;
  state.counters["paper_us_max"] = 574;
}
BENCHMARK(BM_LockAcquire)->Unit(benchmark::kMillisecond);

void BM_FullPageDiffFetch(benchmark::State& state) {
  VirtualNanos modelled = 0;
  for (auto _ : state) {
    RuntimeConfig cfg;
    cfg.num_procs = 2;
    cfg.heap_bytes = 1u << 20;
    Runtime rt(cfg);
    auto a = rt.AllocUnitAligned<int>(1024, "page");
    rt.Run([&](Proc& p) {
      if (p.id() == 0) {
        for (int i = 0; i < 1024; ++i) p.Write(a, i, i + 1);
      }
      p.Barrier();
      if (p.id() == 1) {
        const VirtualNanos before = p.now();
        (void)p.Read(a, 0);  // faults, fetches the full-page diff
        modelled = p.now() - before;
      }
    });
  }
  state.counters["modelled_us"] = static_cast<double>(modelled) / 1e3;
  state.counters["paper_us_min"] = 579;
  state.counters["paper_us_max"] = 1746;
}
BENCHMARK(BM_FullPageDiffFetch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dsm

// Figure 2 reproduction: 8-processor execution times, messages, and data
// for Jacobi, 3D-FFT, MGS, and Shallow across problem sizes, with
// consistency units of 4, 8, 16 KB and dynamic aggregation, normalized to
// the 4 KB page.
//
// Expected shape (paper §5.4): highly size-dependent.  Smallest sizes
// degrade at larger units (grain == 4 KB); medium sizes peak at 8 K;
// largest sizes improve throughout.  MGS degrades dramatically (useless
// message explosion).  Dyn tracks the best static size everywhere.
#include <cstdio>

#include "bench_common.h"

int main() {
  std::printf(
      "Figure 2: Jacobi, 3D-FFT, MGS, Shallow (normalized to 4K)\n\n");
  for (const auto& spec : dsm::apps::Figure2Specs()) {
    dsm::bench::PrintFigureBlock(spec);
  }
  return 0;
}

// Figure 3 reproduction: false sharing signatures for Barnes, Ilink,
// Water, and MGS at 4 KB and 16 KB consistency units.
//
// The signature is a histogram over page faults of the number of
// concurrent writers contacted; each bar splits into useful and useless
// exchanges.  Expected shape (paper §5.4): nearly invariant for Barnes,
// Ilink, and Water (slight right-shift for Barnes/Water), dramatic right
// shift dominated by useless exchanges for MGS.
#include <cstdio>

#include "apps/registry.h"
#include "bench_common.h"

int main() {
  using dsm::apps::AppSpec;
  const std::vector<AppSpec> specs = {
      {"Barnes", "16K"}, {"ILINK", "CLP"}, {"Water", "512"}, {"MGS", "1Kx1K"},
  };
  const std::vector<dsm::bench::ConfigPoint> configs = {
      {"4K", dsm::AggregationMode::kStatic, 1},
      {"16K", dsm::AggregationMode::kStatic, 4},
  };

  std::printf("Figure 3: false sharing signatures (4K vs 16K)\n\n");
  for (const AppSpec& spec : specs) {
    for (const auto& point : configs) {
      auto app = dsm::apps::MakeApp(spec.app, spec.dataset);
      const dsm::apps::AppRun run = dsm::apps::Execute(
          *app, dsm::bench::MakeRuntimeConfig(point));
      const dsm::SplitHistogram& sig = run.stats.comm.signature;
      std::printf("== %s %s @ %s ==\n", spec.app.c_str(),
                  spec.dataset.c_str(), point.label);
      std::printf("%8s %12s %12s %10s\n", "writers", "useful_ex",
                  "useless_ex", "frac");
      const auto norm = sig.NormalizedTotals();
      for (std::size_t k = 1; k < sig.num_buckets(); ++k) {
        if (sig.total(k) == 0) continue;
        std::printf("%8zu %12llu %12llu %10.3f\n", k,
                    static_cast<unsigned long long>(sig.useful(k)),
                    static_cast<unsigned long long>(sig.useless(k)),
                    norm[k]);
      }
      std::printf("\n");
    }
  }
  return 0;
}

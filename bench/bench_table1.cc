// Table 1 reproduction: applications, data sets, sequential execution
// times, and 8-processor speedups with the hardware page (4 KB) as the
// consistency unit.
//
// Absolute seconds are modelled virtual time on scaled-down datasets
// (DESIGN.md §5), so they differ from the paper's 166 MHz cluster; the
// reproduced quantity is the speedup band (the paper reports 4.1–6.5).
#include <cstdio>

#include "bench_common.h"

int main() {
  std::printf("Table 1: sequential times and 8-processor speedups (4K)\n\n");
  std::printf("%-8s %-12s %10s %10s %9s\n", "Program", "Input", "SeqTime(s)",
              "8pTime(s)", "Speedup");

  const dsm::bench::ConfigPoint page{"4K", dsm::AggregationMode::kStatic, 1};
  for (const auto& spec : dsm::apps::AllSpecs()) {
    auto seq_app = dsm::apps::MakeApp(spec.app, spec.dataset);
    const dsm::apps::AppRun seq = dsm::apps::ExecuteSequential(
        *seq_app, dsm::bench::MakeRuntimeConfig(page));
    auto par_app = dsm::apps::MakeApp(spec.app, spec.dataset);
    const dsm::apps::AppRun par =
        dsm::apps::Execute(*par_app, dsm::bench::MakeRuntimeConfig(page));

    std::printf("%-8s %-12s %10.3f %10.3f %9.2f\n", spec.app.c_str(),
                spec.dataset.c_str(), seq.stats.exec_seconds(),
                par.stats.exec_seconds(),
                seq.stats.exec_seconds() / par.stats.exec_seconds());
  }
  return 0;
}

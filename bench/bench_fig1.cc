// Figure 1 reproduction: 8-processor execution times, messages, and data
// for Barnes, Ilink, TSP, and Water, with consistency units of 4, 8, and
// 16 KB and with the dynamic aggregation algorithm, all normalized to the
// 4 KB virtual-memory page.
//
// Expected shape (paper §5.4): performance improves with increasing unit
// size for all four; message counts drop; data stays constant (Ilink, TSP)
// or increases very slightly (Barnes, Water); Dyn lands near the best
// static size.
#include <cstdio>

#include "bench_common.h"

int main() {
  std::printf("Figure 1: Barnes, ILINK, TSP, Water (normalized to 4K)\n\n");
  for (const auto& spec : dsm::apps::Figure1Specs()) {
    dsm::bench::PrintFigureBlock(spec);
  }
  return 0;
}

// Shared harness for the figure/table reproduction benches.
//
// Each bench binary runs application × consistency-unit sweeps and prints
// the same rows/series the paper reports (normalized to the 4 KB page, as
// in Figures 1 and 2).
#pragma once

#include <string>
#include <vector>

#include "apps/registry.h"

namespace dsm::bench {

struct ConfigPoint {
  const char* label;
  AggregationMode mode;
  int pages_per_unit;
};

// The paper's sweep: 4 K, 8 K, 16 K static units plus dynamic aggregation.
std::vector<ConfigPoint> FigureConfigs();

RuntimeConfig MakeRuntimeConfig(const ConfigPoint& point, int num_procs = 8);

// One measured row of a figure.
struct FigureRow {
  std::string config;
  double exec_seconds = 0;
  // Message breakdown (counts).
  std::uint64_t useful_msgs = 0, useless_msgs = 0, sync_msgs = 0;
  // Data breakdown (bytes).
  std::uint64_t useful_bytes = 0, piggyback_bytes = 0, useless_bytes = 0;
  double result = 0;  // application checksum (cross-config consistency)
};

FigureRow RunOne(const apps::AppSpec& spec, const ConfigPoint& point,
                 int num_procs = 8);

// Run all FigureConfigs() for `spec` and print the normalized block
// (execution time, messages, data — each normalized to the 4 K row).
void PrintFigureBlock(const apps::AppSpec& spec, int num_procs = 8);

}  // namespace dsm::bench

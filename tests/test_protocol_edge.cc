// Protocol edge cases: diff chains under lock ordering, coalescing
// correctness, invalidation of dirty units, stats plumbing, and label /
// config helpers.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/runtime.h"

namespace dsm {
namespace {

RuntimeConfig Config(int nprocs, int ppu = 1) {
  RuntimeConfig cfg;
  cfg.num_procs = nprocs;
  cfg.heap_bytes = 1u << 20;
  cfg.pages_per_unit = ppu;
  return cfg;
}

// Ordered, overlapping diffs through a lock chain: the LAST write in
// happens-before order must win at a third-party reader, even when the
// chain interleaves writers (coalescing must not reorder).
TEST(ProtocolEdge, InterleavedLockChainAppliesInOrder) {
  Runtime rt(Config(3));
  auto a = rt.Alloc<int>(16, "a");
  int seen = -1;
  rt.Run([&](Proc& p) {
    // p0 writes 1, p1 overwrites with 2, p0 overwrites with 3 — all under
    // the same lock, serialized by barriers to fix the order.
    if (p.id() == 0) {
      p.Lock(0);
      p.Write(a, 0, 1);
      p.Unlock(0);
    }
    p.Barrier();
    if (p.id() == 1) {
      p.Lock(0);
      p.Write(a, 0, 2);
      p.Unlock(0);
    }
    p.Barrier();
    if (p.id() == 0) {
      p.Lock(0);
      p.Write(a, 0, 3);
      p.Unlock(0);
    }
    p.Barrier();
    // p2 has seen none of the three intervals; its fetch must deliver the
    // p0(1), p1(2), p0(3) chain in happens-before order.
    if (p.id() == 2) seen = p.Read(a, 0);
  });
  EXPECT_EQ(seen, 3);
}

// Same-writer chain with a foreign interval strictly between: the merge
// guard must keep them separate and the final value correct.
TEST(ProtocolEdge, ForeignIntervalBetweenSameWriterChain) {
  Runtime rt(Config(3));
  auto a = rt.AllocUnitAligned<int>(1024, "page");
  int v0 = -1, v1 = -1;
  rt.Run([&](Proc& p) {
    if (p.id() == 0) p.Write(a, 0, 10);  // p0 interval 1: word 0
    p.Barrier();
    if (p.id() == 1) p.Write(a, 0, 20);  // p1 overwrites word 0 (ordered)
    p.Barrier();
    if (p.id() == 0) p.Write(a, 1, 30);  // p0 interval 2: word 1
    p.Barrier();
    if (p.id() == 2) {
      v0 = p.Read(a, 0);
      v1 = p.Read(a, 1);
    }
  });
  EXPECT_EQ(v0, 20);  // p1's ordered overwrite wins over p0's first write
  EXPECT_EQ(v1, 30);
}

// A unit invalidated while locally dirty keeps local modifications after
// the fetch merges foreign diffs (diffs applied to copy AND twin).
TEST(ProtocolEdge, DirtyUnitSurvivesInvalidationAndMerge) {
  Runtime rt(Config(2));
  auto a = rt.AllocUnitAligned<int>(1024, "page");
  int mine = -1, theirs = -1, final0 = -1, final512 = -1;
  rt.Run([&](Proc& p) {
    if (p.id() == 0) {
      p.Lock(0);  // acquire before writing, release publishes
      p.Write(a, 0, 100);
      p.Unlock(0);
    } else {
      p.Lock(1);
      p.Write(a, 512, 200);
      p.Unlock(1);
    }
    p.Barrier();
    // Both keep writing their own halves (dirty), then re-sync.
    if (p.id() == 0) {
      mine = p.Read(a, 0);      // own word survived
      theirs = p.Read(a, 512);  // foreign word merged in
      p.Write(a, 1, 101);
    }
    p.Barrier();
    if (p.id() == 1) {
      final0 = p.Read(a, 0);
      final512 = p.Read(a, 512);
    }
  });
  EXPECT_EQ(mine, 100);
  EXPECT_EQ(theirs, 200);
  EXPECT_EQ(final0, 100);
  EXPECT_EQ(final512, 200);
}

// Usage tracking off: results identical, classification becomes
// all-useless (no credits), raw counts unchanged.
TEST(ProtocolEdge, TrackingDisabledKeepsSemantics) {
  RuntimeConfig cfg = Config(2);
  cfg.track_usage = false;
  Runtime rt(cfg);
  auto a = rt.Alloc<int>(256, "a");
  int seen = -1;
  rt.Run([&](Proc& p) {
    if (p.id() == 0) p.Write(a, 7, 77);
    p.Barrier();
    if (p.id() == 1) seen = p.Read(a, 7);
  });
  EXPECT_EQ(seen, 77);
  RunStats s = rt.CollectStats();
  EXPECT_EQ(s.comm.useful_messages, 0u);  // nothing credited
  EXPECT_EQ(s.comm.useless_messages, 2u);
}

// Multi-unit element access: a struct spanning two consistency units is
// read and written coherently.
TEST(ProtocolEdge, AccessSpanningUnits) {
  struct Big {
    int words[2048];  // 8 KB, spans two 4 KB units
  };
  Runtime rt(Config(2));
  auto a = rt.Alloc<Big>(2, "big");
  int lo = 0, hi = 0;
  rt.Run([&](Proc& p) {
    if (p.id() == 0) {
      Big b{};
      b.words[0] = 1;
      b.words[2047] = 2;
      p.Write(a, 1, b);  // element 1 starts mid-unit: definitely straddles
    }
    p.Barrier();
    if (p.id() == 1) {
      const Big b = p.Read(a, 1);
      lo = b.words[0];
      hi = b.words[2047];
    }
  });
  EXPECT_EQ(lo, 1);
  EXPECT_EQ(hi, 2);
}

TEST(ProtocolEdge, UnitLabels) {
  RuntimeConfig cfg;
  cfg.pages_per_unit = 1;
  EXPECT_STREQ(cfg.UnitLabel(), "4K");
  cfg.pages_per_unit = 2;
  EXPECT_STREQ(cfg.UnitLabel(), "8K");
  cfg.pages_per_unit = 4;
  EXPECT_STREQ(cfg.UnitLabel(), "16K");
  cfg.aggregation = AggregationMode::kDynamic;
  EXPECT_STREQ(cfg.UnitLabel(), "Dyn");
  EXPECT_EQ(cfg.unit_bytes(), kBasePageBytes);  // dynamic uses 4 K pages
}

TEST(ProtocolEdge, StatsToStringsAreNonEmpty) {
  Runtime rt(Config(2));
  auto a = rt.Alloc<int>(64, "a");
  rt.Run([&](Proc& p) {
    if (p.id() == 0) p.Write(a, 0, 1);
    p.Barrier();
    if (p.id() == 1) (void)p.Read(a, 0);
  });
  RunStats s = rt.CollectStats();
  EXPECT_FALSE(s.ToString().empty());
  EXPECT_FALSE(s.comm.ToString().empty());
  EXPECT_FALSE(s.net.ToString().empty());
}

// Deterministic replay: two identical barrier-program runs produce
// identical statistics and virtual times.
TEST(ProtocolEdge, DeterministicReplay) {
  auto run_once = [] {
    Runtime rt(Config(4, 2));
    auto a = rt.AllocUnitAligned<int>(8192, "a");
    rt.Run([&](Proc& p) {
      for (int it = 0; it < 3; ++it) {
        for (int i = p.id(); i < 8192; i += p.nprocs()) {
          p.Write(a, static_cast<std::size_t>(i), it + i);
        }
        p.Barrier();
        long sum = 0;
        for (int i = 0; i < 512; ++i) {
          sum += p.Read(a, static_cast<std::size_t>(i));
        }
        p.Compute(static_cast<std::uint64_t>(sum % 7));
        p.Barrier();
      }
    });
    return rt.CollectStats();
  };
  RunStats a = run_once();
  RunStats b = run_once();
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.node_times, b.node_times);
  EXPECT_EQ(a.comm.useful_messages, b.comm.useful_messages);
  EXPECT_EQ(a.comm.useless_messages, b.comm.useless_messages);
  EXPECT_EQ(a.comm.useful_data_bytes, b.comm.useful_data_bytes);
  EXPECT_EQ(a.net.total_bytes(), b.net.total_bytes());
}

// --- RuntimeConfig validation (fail-fast misuse diagnostics) -----------------
//
// The Runtime constructor validates its config before building any state;
// a malformed field surfaces as std::invalid_argument naming the field,
// never as a deep CHECK abort or a hang.

// Expects Runtime construction to throw and the message to mention `hint`.
void ExpectRejected(const RuntimeConfig& cfg, const std::string& hint) {
  try {
    Runtime rt(cfg);
    FAIL() << "config accepted; expected rejection mentioning '" << hint
           << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(hint), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(ConfigValidation, RejectsBadProcessorCounts) {
  RuntimeConfig cfg = Config(0);
  ExpectRejected(cfg, "num_procs");
  cfg = Config(5000);
  ExpectRejected(cfg, "num_procs");
  // One processor is degenerate and almost always a mis-filled config;
  // the sequential oracle opts in via allow_sequential.
  cfg = Config(1);
  ExpectRejected(cfg, "allow_sequential");
  cfg.allow_sequential = true;
  EXPECT_NO_THROW(Runtime rt(cfg));
}

TEST(ConfigValidation, RejectsBadHeapAndUnitShapes) {
  RuntimeConfig cfg = Config(2);
  cfg.heap_bytes = 0;
  ExpectRejected(cfg, "heap_bytes");

  cfg = Config(2);
  cfg.pages_per_unit = 3;  // not a power of two
  ExpectRejected(cfg, "pages_per_unit");
  cfg.pages_per_unit = 0;
  ExpectRejected(cfg, "pages_per_unit");

  cfg = Config(2);
  cfg.max_group_pages = 0;
  ExpectRejected(cfg, "max_group_pages");
}

TEST(ConfigValidation, RejectsBadServiceKnobs) {
  RuntimeConfig cfg = Config(2);
  cfg.gc_lag_barriers = 0;
  ExpectRejected(cfg, "gc_lag_barriers");

  cfg = Config(2);
  cfg.gc_interval_barriers = -1;
  ExpectRejected(cfg, "gc_interval_barriers");

  cfg = Config(2);
  cfg.hlrc_home_block_units = 0;
  ExpectRejected(cfg, "hlrc_home_block_units");

  cfg = Config(2);
  cfg.num_locks = 0;
  ExpectRejected(cfg, "num_locks");
}

TEST(ConfigValidation, RejectsMalformedFaultPlans) {
  // Victim 0 is legal: its barrier-manager / serial-GC / watermark roles
  // fail over to the lowest surviving rank for the crash barrier
  // (DESIGN.md §9).
  RuntimeConfig cfg = Config(4);
  cfg.fault = FaultPlan::AtBarrier(0, 1);
  EXPECT_NO_THROW(Runtime rt(cfg));

  cfg = Config(4);
  cfg.fault = FaultPlan::AtBarrier(4, 1);  // out of range
  ExpectRejected(cfg, "victim");

  cfg = Config(4);
  cfg.fault = FaultPlan::AtBarrier(1, -1);
  ExpectRejected(cfg, "barrier");

  cfg = Config(4);
  cfg.fault = FaultPlan::AfterRelease(1, 0);
  ExpectRejected(cfg, "release");

  // The reference oracle has no protocol state to crash and rebuild.
  cfg = Config(4);
  cfg.backend = BackendKind::kReference;
  cfg.fault = FaultPlan::AtBarrier(1, 1);
  ExpectRejected(cfg, "reference");

  // LRC recovery needs the archive GC's canonical-base checkpoints.
  cfg = Config(4);
  cfg.gc_interval_barriers = 0;
  cfg.fault = FaultPlan::AtBarrier(1, 1);
  ExpectRejected(cfg, "no checkpoint available");

  // A well-formed plan on a protocol backend is accepted.
  cfg = Config(4);
  cfg.fault = FaultPlan::AfterRelease(1, 2);
  EXPECT_NO_THROW(Runtime rt(cfg));
}

TEST(ConfigValidation, RejectsMalformedFaultSchedules) {
  // A victim dies at most once per trigger point.
  RuntimeConfig cfg = Config(4);
  cfg.fault.events = {FaultPlan::AtBarrier(1, 2), FaultPlan::AtBarrier(1, 2)};
  ExpectRejected(cfg, "at most once");

  // A barrier phase must leave a survivor to run the coordinator roles.
  cfg = Config(2);
  cfg.fault.events = {FaultPlan::AtBarrier(0, 1), FaultPlan::AtBarrier(1, 1)};
  ExpectRejected(cfg, "survive");

  // The same victim may die twice at distinct points — proc 0 included.
  cfg = Config(4);
  cfg.fault.events = {FaultPlan::AtBarrier(0, 1), FaultPlan::AtBarrier(0, 3)};
  EXPECT_NO_THROW(Runtime rt(cfg));
}

}  // namespace
}  // namespace dsm

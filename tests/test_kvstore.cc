// KV workload gates (DESIGN.md §11) — the ROADMAP's "serve real traffic"
// frontier, with the PR 9 race detector as its day-one safety net:
//
//   * the full 3-backend × 3-aggregation conformance sweep runs with
//     race_check = true in EVERY cell: checksums bit-identical (the
//     commuting-checksum construction), zero race reports (fine-grained
//     shard locking certified, not assumed),
//   * RacyKv — the deliberately under-locked variant (a stats word
//     updated outside the shard lock) — must be reported EXACTLY:
//     every planted race, nothing else, in every cell,
//   * armed multi-fault crash schedules (barrier crash, after-release
//     crash, proc-0 coordinator failover, and an HLRC shard-home crash)
//     recover to the failure-free checksum bit-for-bit, twice-run
//     same-seed schedules agree, and recovery manufactures no race
//     reports — the PR 8 torture pattern extended to a lock-dominated
//     request workload,
//   * the bench mixes really are the scale the ROADMAP asks for
//     (>= 1M modelled requests per default --kv-sweep row).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/kvstore.h"
#include "apps/registry.h"
#include "core/fault.h"

namespace dsm::apps {
namespace {

struct AggPoint {
  const char* label;
  AggregationMode mode;
  int ppu;
};

const AggPoint kAggs[] = {
    {"4K", AggregationMode::kStatic, 1},
    {"16K", AggregationMode::kStatic, 4},
    {"Dyn", AggregationMode::kDynamic, 1},
};

const BackendKind kBackends[] = {BackendKind::kLrc, BackendKind::kHlrc,
                                 BackendKind::kReference};

RuntimeConfig CellConfig(BackendKind backend, const AggPoint& agg,
                         int num_procs) {
  RuntimeConfig cfg;
  cfg.num_procs = num_procs;
  cfg.backend = backend;
  cfg.aggregation = agg.mode;
  cfg.pages_per_unit = agg.ppu;
  cfg.race_check = true;
  return cfg;
}

std::string ReportDump(const RaceStats& races) {
  std::string out;
  for (const RaceReport& r : races.reports) out += "  " + r.ToString() + "\n";
  return out;
}

// --- correctly-locked KV: exact checksums, certified race-free ---------------

TEST(KvConformance, AllCellsBitIdenticalAndRaceFree) {
  ConformanceScenario scenario;
  for (const ConformanceScenario& s : ConformanceScenarios()) {
    if (s.app == "KV") scenario = s;
  }
  ASSERT_EQ(scenario.app, "KV") << "KV missing from ConformanceScenarios()";
  ASSERT_EQ(scenario.rel_tol, 0.0);  // the commuting-checksum promise

  double first = 0.0;
  bool have_first = false;
  for (BackendKind backend : kBackends) {
    for (const AggPoint& agg : kAggs) {
      const RuntimeConfig cfg = CellConfig(backend, agg, scenario.num_procs);
      const std::string where =
          std::string("KV @ ") + agg.label + "/" + cfg.BackendLabel();
      KvStore app(KvDataset(scenario.dataset));
      const AppRun run = Execute(app, cfg);

      ASSERT_TRUE(run.stats.races.checked) << where;
      EXPECT_TRUE(run.stats.races.reports.empty())
          << where << " reported:\n"
          << ReportDump(run.stats.races);
      EXPECT_EQ(run.stats.races.dropped, 0u) << where;

      EXPECT_EQ(run.result, scenario.checksum) << where;
      if (!have_first) {
        first = run.result;
        have_first = true;
        EXPECT_NE(run.result, 0.0) << where;
      } else {
        EXPECT_EQ(run.result, first) << where;
      }

      // Request traffic must actually exercise the protocol cells.
      if (backend == BackendKind::kReference) {
        EXPECT_EQ(run.stats.net.total_messages(), 0u) << where;
      } else {
        EXPECT_GT(run.stats.net.total_messages(), 0u) << where;
        EXPECT_GT(run.stats.comm.sync_messages, 0u) << where;
      }
    }
  }
}

// --- RacyKv: the under-locked fast path is caught, exactly -------------------

TEST(RacyKvDetector, InjectedScheduleReportedExactlyEverywhere) {
  double first_result = 0.0;
  bool have_first = false;
  for (BackendKind backend : kBackends) {
    for (const AggPoint& agg : kAggs) {
      const RuntimeConfig cfg = CellConfig(backend, agg, 4);
      const std::string where =
          std::string("RacyKv @ ") + agg.label + "/" + cfg.BackendLabel();
      RacyKv app(KvDataset("tiny"));
      const AppRun run = Execute(app, cfg);

      ASSERT_TRUE(run.stats.races.checked) << where;
      EXPECT_EQ(run.stats.races.dropped, 0u) << where;
      const std::vector<RaceReport> expected =
          app.ExpectedRaces(cfg.num_procs, cfg.unit_bytes());
      ASSERT_FALSE(expected.empty()) << where;
      EXPECT_EQ(run.stats.races.reports, expected)
          << where << "\ngot:\n"
          << ReportDump(run.stats.races);

      // The racy stats words never feed the checksum: the result stays
      // bit-identical across every cell even though the program races.
      if (!have_first) {
        first_result = run.result;
        have_first = true;
        EXPECT_NE(run.result, 0.0) << where;
      } else {
        EXPECT_EQ(run.result, first_result) << where;
      }
    }
  }
}

TEST(RacyKvDetector, ReportsAreRunToRunDeterministic) {
  // Same seed, same config → the identical report list, order included —
  // even though the shard-lock chains around the planted accesses are
  // host-scheduled (the racy accesses happen at sub-phase 0, before any
  // lock of their phase).
  std::vector<RaceReport> first;
  for (int round = 0; round < 3; ++round) {
    const RuntimeConfig cfg = CellConfig(BackendKind::kLrc, kAggs[0], 4);
    RacyKv app(KvDataset("tiny"));
    const AppRun run = Execute(app, cfg);
    if (round == 0) {
      first = run.stats.races.reports;
      ASSERT_FALSE(first.empty());
    } else {
      EXPECT_EQ(run.stats.races.reports, first) << "round " << round;
    }
  }
}

// --- KV under armed crash schedules ------------------------------------------

// The multi-fault matrix: a mid-phase barrier crash plus an
// after-release crash of a second victim (the lock-dominated stream
// closes an interval at every Unlock, so release triggers land inside
// the request traffic), a proc-0 crash (coordinator failover), and — on
// HLRC, where every processor homes a slice of the table — a shard-home
// crash that forces home reconstruction and re-homing under live
// request traffic.
std::vector<FaultSchedule> KvSchedules(BackendKind backend) {
  std::vector<FaultSchedule> out;
  FaultSchedule multi;
  multi.events = {FaultPlan::AtBarrier(1, 2),
                  FaultPlan::AfterRelease(3, 500)};
  out.push_back(multi);
  out.push_back(FaultSchedule(FaultPlan::AtBarrier(0, 3)));
  if (backend == BackendKind::kHlrc) {
    out.push_back(FaultSchedule(FaultPlan::AtBarrier(2, 4)));
  }
  return out;
}

TEST(KvFaultRecovery, MultiFaultChecksumMatchesFailureFreeEverywhere) {
  for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
    RuntimeConfig base = CellConfig(backend, kAggs[0], 4);
    KvStore clean(KvDataset("tiny"));
    const AppRun clean_run = Execute(clean, base);
    ASSERT_NE(clean_run.result, 0.0);

    for (const FaultSchedule& sched : KvSchedules(backend)) {
      RuntimeConfig cfg = base;
      cfg.fault = sched;
      const std::string where = std::string("KV @ ") + cfg.BackendLabel() +
                                " fault " + sched.Label();
      KvStore app(KvDataset("tiny"));
      const AppRun run = Execute(app, cfg);
      EXPECT_GT(run.stats.recovery_events, 0) << where;
      // The commuting checksum recovers bit-for-bit: every surviving
      // delta is still applied exactly once, and the rebuilt victim
      // replays its own archived/homed history.
      EXPECT_EQ(run.result, clean_run.result) << where;
      // Recovery must not manufacture race reports (the crash sweep
      // publishes the victim's clocks on its force-released shard locks).
      ASSERT_TRUE(run.stats.races.checked) << where;
      EXPECT_TRUE(run.stats.races.reports.empty())
          << where << " reported:\n"
          << ReportDump(run.stats.races);
    }
  }
}

TEST(KvFaultRecovery, SameScheduleTwiceSameChecksum) {
  // The PR 8 same-seed gate, scoped to what a lock app can promise: the
  // modelled state follows the host's grant order (never bit-stable for
  // lock programs), but the checksum must be bit-identical run to run
  // under the identical armed schedule.
  for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
    RuntimeConfig cfg = CellConfig(backend, kAggs[0], 4);
    cfg.fault = FaultSchedule::FromSeed(0x6b760d5eedull);
    double first = 0.0;
    for (int round = 0; round < 2; ++round) {
      KvStore app(KvDataset("tiny"));
      const AppRun run = Execute(app, cfg);
      EXPECT_GT(run.stats.recovery_events, 0)
          << cfg.BackendLabel() << " round " << round;
      if (round == 0) {
        first = run.result;
      } else {
        EXPECT_EQ(run.result, first) << cfg.BackendLabel();
      }
    }
  }
}

// --- the bench mixes are really request-scale --------------------------------

TEST(KvSweepDatasets, BenchMixesDriveAtLeastAMillionRequests) {
  for (const char* label : {"read-mostly", "write-heavy", "hot"}) {
    KvStore app(KvDataset(label));
    EXPECT_GE(app.ModelledRequests(8), 1'000'000u) << label;
    // The three mixes must really differ along the axes they are named
    // for (a renamed copy of one mix would silently hollow the sweep).
    const KvParams& p = app.params();
    if (std::string(label) == "read-mostly") {
      EXPECT_GE(p.read_percent, 90);
    }
    if (std::string(label) == "write-heavy") {
      EXPECT_LE(p.read_percent, 30);
    }
    if (std::string(label) == "hot") {
      EXPECT_GE(p.hot_percent, 50);
    }
  }
}

}  // namespace
}  // namespace dsm::apps

// Unit tests for the support substrates: RNG, histogram, virtual clock,
// cost model calibration, network model calibration, heap, page table,
// word tracker, vector clocks, interval archive, net stats.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/check.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/vector_clock.h"
#include "core/write_notice.h"
#include "mem/global_heap.h"
#include "mem/page_table.h"
#include "mem/word_tracker.h"
#include "net/net_stats.h"
#include "net/network_model.h"
#include "sim/cost_model.h"
#include "sim/virtual_clock.h"

namespace dsm {
namespace {

// --- common ---------------------------------------------------------------

TEST(Check, ThrowsWithMessage) {
  try {
    DSM_CHECK(1 == 2) << "context " << 42;
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIntInBounds) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeCoversEndpoints) {
  Xoshiro256 rng(11);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformRange(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    lo |= (v == 2);
    hi |= (v == 5);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Histogram, SplitCountsAndNormalization) {
  SplitHistogram h;
  h.AddUseful(1, 10);
  h.AddUseless(1, 5);
  h.AddUseful(7, 30);
  EXPECT_EQ(h.useful(1), 10u);
  EXPECT_EQ(h.useless(1), 5u);
  EXPECT_EQ(h.total(7), 30u);
  EXPECT_EQ(h.grand_total(), 45u);
  const auto norm = h.NormalizedTotals();
  EXPECT_DOUBLE_EQ(norm[7], 1.0);
  EXPECT_DOUBLE_EQ(norm[1], 0.5);
}

TEST(Histogram, MergeGrowsBuckets) {
  SplitHistogram a, b;
  a.AddUseful(1);
  b.AddUseless(5);
  a.Merge(b);
  EXPECT_EQ(a.useful(1), 1u);
  EXPECT_EQ(a.useless(5), 1u);
}

// --- sim --------------------------------------------------------------------

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock c;
  c.Advance(100);
  c.AdvanceTo(50);  // no-op: never backwards
  EXPECT_EQ(c.now(), 100);
  c.AdvanceTo(200);
  EXPECT_EQ(c.now(), 200);
  EXPECT_THROW(c.Advance(-1), CheckError);
}

TEST(CostModel, DiffCostsScaleWithSize) {
  CostModel cost;
  EXPECT_GT(cost.DiffCreateCost(16384), cost.DiffCreateCost(4096));
  EXPECT_GT(cost.TwinCost(8192), cost.TwinCost(4096));
  EXPECT_EQ(cost.DiffApplyCost(0), cost.diff_apply_fixed);
}

// --- net: calibration to the paper's §5.1 platform numbers ------------------

TEST(NetworkModel, OneByteRoundTripIs296us) {
  NetworkConfig config;
  config.wire_header_bytes = 0;  // calibration excludes header framing
  NetworkModel net(config);
  EXPECT_EQ(net.RoundTripTime(1, 0), 296 * kNanosPerMicro - 2 * 80 + 80);
  // 2 × (147.92 µs + 1 B · 80 ns) ≈ 296 µs within one byte-time.
  EXPECT_NEAR(static_cast<double>(net.RoundTripTime(1, 1)),
              296.0 * kNanosPerMicro, 200.0);
}

TEST(NetworkModel, BandwidthIs100Mbps) {
  NetworkModel net;
  // Marginal cost of 12500 extra bytes = 1 ms at 12.5 MB/s.
  const VirtualNanos base = net.OneWayTime(0);
  const VirtualNanos loaded = net.OneWayTime(12500);
  EXPECT_EQ(loaded - base, 1 * kNanosPerMilli);
}

TEST(NetworkModel, DiffFetchInPaperBand) {
  // The paper: "time to obtain a diff varies from 579 to 1,746 µs".
  NetworkModel net;
  CostModel cost;
  const VirtualNanos full_page_diff =
      net.RoundTripTime(24, 4096 + 64) + cost.request_service_overhead +
      cost.DiffCreateCost(4096) + cost.DiffApplyCost(4096);
  EXPECT_GE(full_page_diff, 579 * kNanosPerMicro);
  EXPECT_LE(full_page_diff, 1746 * kNanosPerMicro);
}

TEST(NetStats, CountsPerKindAndTotals) {
  NetStats stats;
  stats.Record(MessageKind::kDiffRequest, 24);
  stats.Record(MessageKind::kDiffResponse, 4096);
  stats.Record(MessageKind::kBarrierArrival, 16);
  EXPECT_EQ(stats.total_messages(), 3u);
  EXPECT_EQ(stats.data_messages(), 2u);
  EXPECT_EQ(stats.sync_messages(), 1u);
  EXPECT_EQ(stats.data_bytes(), 4120u);
}

// --- mem ---------------------------------------------------------------------

TEST(GlobalHeap, BumpAllocationAndAlignment) {
  GlobalHeap heap(1 << 20, 4096);
  const GlobalAddr a = heap.Alloc(100, 4, "a");
  const GlobalAddr b = heap.Alloc(100, 64, "b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  const GlobalAddr c = heap.AllocUnitAligned(10, "c");
  EXPECT_EQ(c % 4096, 0u);
}

TEST(GlobalHeap, ExhaustionThrows) {
  GlobalHeap heap(8192, 4096);
  heap.Alloc(8000, 4);
  EXPECT_THROW(heap.Alloc(400, 4), CheckError);
}

TEST(GlobalHeap, RejectsBadUnitSizes) {
  EXPECT_THROW(GlobalHeap(1 << 20, 3000), CheckError);   // not a power of 2
  EXPECT_THROW(GlobalHeap(1 << 20, 2048), CheckError);   // below page size
  EXPECT_THROW(GlobalHeap(10000, 4096), CheckError);     // not a multiple
}

TEST(GlobalHeap, UnitMapping) {
  GlobalHeap heap(1 << 20, 8192);
  EXPECT_EQ(heap.UnitOf(0), 0u);
  EXPECT_EQ(heap.UnitOf(8191), 0u);
  EXPECT_EQ(heap.UnitOf(8192), 1u);
  EXPECT_EQ(heap.UnitBase(2), 16384u);
  EXPECT_EQ(heap.num_units(), (1u << 20) / 8192);
}

TEST(PageTable, StateTransitionsAndTwins) {
  PageTable table(4, 4096);
  EXPECT_EQ(table.state(0), UnitState::kReadValid);
  EXPECT_FALSE(table.NeedsFaultOnRead(0));
  EXPECT_TRUE(table.NeedsFaultOnWrite(0));

  std::vector<std::byte> content(4096, std::byte{0x5A});
  table.MakeTwin(1, content);
  EXPECT_TRUE(table.HasTwin(1));
  EXPECT_EQ(table.twin(1)[0], std::byte{0x5A});
  EXPECT_THROW(table.MakeTwin(1, content), CheckError);  // double twin
  table.DropTwin(1);
  EXPECT_FALSE(table.HasTwin(1));

  table.set_state(2, UnitState::kInvalid);
  EXPECT_TRUE(table.NeedsFaultOnRead(2));
  table.set_state(3, UnitState::kUpdatedInvalid);
  EXPECT_TRUE(table.NeedsFaultOnRead(3));
  EXPECT_TRUE(table.NeedsFaultOnWrite(3));
}

TEST(PageTable, TwinPoolRecyclesDroppedBuffers) {
  PageTable table(4, 4096);
  std::vector<std::byte> a(4096, std::byte{0x11});
  std::vector<std::byte> b(4096, std::byte{0x22});

  // First twin comes from the allocator.
  table.MakeTwin(0, a);
  EXPECT_EQ(table.twin_recycles(), 0u);

  // A drop/re-twin cycle is served from the free list...
  table.DropTwin(0);
  table.MakeTwin(1, b);
  EXPECT_EQ(table.twin_recycles(), 1u);
  // ...and carries the new contents, not the dropped twin's.
  EXPECT_EQ(table.twin(1)[0], std::byte{0x22});

  // Same unit re-twinned after a drop also recycles.
  table.DropTwin(1);
  table.MakeTwin(1, a);
  EXPECT_EQ(table.twin_recycles(), 2u);
  EXPECT_EQ(table.twin(1)[0], std::byte{0x11});

  // Two live twins need one fresh allocation beyond the pooled buffer.
  table.MakeTwin(2, b);
  EXPECT_EQ(table.twin_recycles(), 2u);
}

TEST(WordTracker, CreditOnFirstReadOnly) {
  WordTracker tracker(2, 1024);
  tracker.Deliver(0, 5, /*msg_id=*/3);
  int credited = -1;
  tracker.OnRead(0, 5, 1, [&](std::uint32_t m) { credited = (int)m; });
  EXPECT_EQ(credited, 3);
  credited = -1;
  tracker.OnRead(0, 5, 1, [&](std::uint32_t m) { credited = (int)m; });
  EXPECT_EQ(credited, -1);  // only the first read credits
}

TEST(WordTracker, OverwriteKillsCredit) {
  WordTracker tracker(2, 1024);
  tracker.Deliver(0, 7, 1);
  tracker.OnWrite(0, 7, 1);
  int credited = -1;
  tracker.OnRead(0, 7, 1, [&](std::uint32_t m) { credited = (int)m; });
  EXPECT_EQ(credited, -1);
}

TEST(WordTracker, RedeliveryRetags) {
  WordTracker tracker(2, 1024);
  tracker.Deliver(0, 9, 1);
  tracker.Deliver(0, 9, 2);  // newer message overwrites the tag
  std::vector<std::uint32_t> credits;
  tracker.OnRead(0, 9, 1, [&](std::uint32_t m) { credits.push_back(m); });
  EXPECT_EQ(credits, (std::vector<std::uint32_t>{2}));
}

TEST(WordTracker, UntouchedUnitsCostNothing) {
  WordTracker tracker(8, 1024);
  EXPECT_FALSE(tracker.HasTracking(5));
  int calls = 0;
  tracker.OnRead(5, 0, 64, [&](std::uint32_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(WordTracker, RangeReadCreditsEachFreshWord) {
  WordTracker tracker(1, 64);
  tracker.Deliver(0, 2, 0);
  tracker.Deliver(0, 3, 0);
  tracker.Deliver(0, 5, 1);
  int credits = 0;
  tracker.OnRead(0, 0, 8, [&](std::uint32_t) { ++credits; });
  EXPECT_EQ(credits, 3);
}

// --- fresh-count bookkeeping (the OnRead/OnWrite early-out) -----------------

TEST(WordTracker, FreshCountReachesZeroAfterCreditsAndOverwrites) {
  WordTracker tracker(2, 64);
  EXPECT_EQ(tracker.fresh_count(0), 0u);
  tracker.Deliver(0, 1, 0);
  tracker.Deliver(0, 5, 0);
  tracker.Deliver(0, 9, 1);
  EXPECT_EQ(tracker.fresh_count(0), 3u);

  tracker.OnWrite(0, 5, 1);  // one mark dies uncredited
  EXPECT_EQ(tracker.fresh_count(0), 2u);

  int credits = 0;
  tracker.OnRead(0, 0, 16, [&](std::uint32_t) { ++credits; });
  EXPECT_EQ(credits, 2);
  EXPECT_EQ(tracker.fresh_count(0), 0u);
}

TEST(WordTracker, ExhaustedUnitTakesEarlyOutWithoutCredits) {
  WordTracker tracker(1, 64);
  tracker.Deliver(0, 3, 7);
  tracker.OnWrite(0, 0, 64);
  ASSERT_EQ(tracker.fresh_count(0), 0u);

  // The unit still has tag storage (HasTracking), but with no live fresh
  // tag both hot paths return before touching it.
  EXPECT_TRUE(tracker.HasTracking(0));
  int credits = 0;
  tracker.OnRead(0, 0, 64, [&](std::uint32_t) { ++credits; });
  EXPECT_EQ(credits, 0);
  tracker.OnWrite(0, 0, 64);  // must also be a no-op
  EXPECT_EQ(tracker.fresh_count(0), 0u);
}

TEST(WordTracker, RedeliveryToFreshWordDoesNotDoubleCount) {
  WordTracker tracker(1, 64);
  tracker.Deliver(0, 4, 1);
  tracker.Deliver(0, 4, 2);  // re-tag, not a second fresh word
  EXPECT_EQ(tracker.fresh_count(0), 1u);

  std::vector<std::uint32_t> credits;
  tracker.OnRead(0, 0, 64, [&](std::uint32_t m) { credits.push_back(m); });
  EXPECT_EQ(credits, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(tracker.fresh_count(0), 0u);
}

TEST(WordTracker, ReadStopsAtLastLiveTagButStaysExact) {
  // The early-break when the count hits zero must not skip credits: two
  // fresh words read in one range call both credit.
  WordTracker tracker(1, 64);
  tracker.Deliver(0, 0, 3);
  tracker.Deliver(0, 63, 4);
  std::vector<std::uint32_t> credits;
  tracker.OnRead(0, 0, 64, [&](std::uint32_t m) { credits.push_back(m); });
  EXPECT_EQ(credits, (std::vector<std::uint32_t>{3, 4}));
  EXPECT_EQ(tracker.fresh_count(0), 0u);
}

// --- core primitives ----------------------------------------------------------

TEST(VectorClockTest, MergeTakesElementwiseMax) {
  VectorClock a(3), b(3);
  a[0] = 5;
  b[1] = 7;
  a.Merge(b);
  EXPECT_EQ(a[0], 5u);
  EXPECT_EQ(a[1], 7u);
  EXPECT_EQ(a[2], 0u);
}

TEST(VectorClockTest, DominatedByAndCovers) {
  VectorClock a(2), b(2);
  a[0] = 1;
  b[0] = 2;
  b[1] = 1;
  EXPECT_TRUE(a.DominatedBy(b));
  EXPECT_FALSE(b.DominatedBy(a));
  EXPECT_TRUE(b.Covers(0, 2));
  EXPECT_FALSE(b.Covers(0, 3));
}

TEST(VectorClockTest, FreezeKeepsSmallClocksDense) {
  VectorClock vc(static_cast<int>(VectorClock::kKeepDenseProcs));
  vc[3] = 9;
  vc.Freeze();
  EXPECT_FALSE(vc.frozen());
  EXPECT_EQ(vc[3], 9u);
}

TEST(VectorClockTest, FrozenObserversMatchDense) {
  // Barrier-style lockstep clock with one writer ahead and a straggler:
  // three runs.  Every observer must answer identically on either form.
  constexpr int kProcs = 32;
  VectorClock dense(kProcs);
  for (ProcId p = 0; p < kProcs; ++p) dense[p] = 5;
  dense[0] = 7;
  dense[kProcs - 1] = 2;
  VectorClock frozen = dense;
  frozen.Freeze();
  ASSERT_TRUE(frozen.frozen());

  // Frozen clocks are immutable: read through the const operator[] (the
  // mutable overload requires the dense form).
  const VectorClock& fz = frozen;
  EXPECT_EQ(fz.size(), kProcs);
  for (ProcId p = 0; p < kProcs; ++p) {
    EXPECT_EQ(fz[p], dense[p]) << "component " << static_cast<int>(p);
  }
  EXPECT_EQ(frozen.Sum(), dense.Sum());
  EXPECT_TRUE(frozen == dense);
  EXPECT_TRUE(dense == frozen);
  EXPECT_TRUE(dense.DominatedBy(frozen));
  EXPECT_TRUE(frozen.DominatedBy(dense));
  EXPECT_TRUE(frozen.Covers(0, 7));
  EXPECT_FALSE(frozen.Covers(1, 6));

  // Freeze is idempotent and a second Freeze changes nothing observable.
  VectorClock again = frozen;
  again.Freeze();
  EXPECT_TRUE(again == dense);

  // Merge-from accepts either form and lands on the elementwise max.
  VectorClock from_frozen(kProcs), from_dense(kProcs);
  from_frozen[1] = 11;
  from_dense[1] = 11;
  from_frozen.Merge(frozen);
  from_dense.Merge(dense);
  EXPECT_TRUE(from_frozen == from_dense);
  EXPECT_EQ(from_frozen[1], 11u);
  EXPECT_EQ(from_frozen[2], 5u);
}

TEST(VectorClockTest, EncodedBytesTracksRunsNotProcs) {
  // 64 lockstep components = one run: 4-byte count + one 8-byte run,
  // against 4 + 4*64 dense.  The sparse form never beats dense at <= 8
  // procs (kKeepDenseProcs) and never exceeds the dense fallback.
  constexpr int kProcs = 64;
  VectorClock lockstep(kProcs);
  for (ProcId p = 0; p < kProcs; ++p) lockstep[p] = 3;
  lockstep.Freeze();
  EXPECT_EQ(lockstep.EncodedBytes(), 4u + 8u);
  EXPECT_EQ(VectorClock::DenseEncodedBytes(kProcs), 4u + 4u * 64u);

  // Worst case — strictly alternating values, one run per component —
  // falls back to the dense encoding rather than paying 8 bytes per run.
  VectorClock zigzag(kProcs);
  for (ProcId p = 0; p < kProcs; ++p) zigzag[p] = (p % 2 == 0) ? 1 : 2;
  zigzag.Freeze();
  EXPECT_LE(zigzag.EncodedBytes(), VectorClock::DenseEncodedBytes(kProcs));

  // Small clocks stay dense in memory (kKeepDenseProcs) but the wire
  // accounting is representation-independent: three runs either way.
  VectorClock small(8);
  small[2] = 4;
  EXPECT_EQ(small.EncodedBytes(), 4u + 8u * 3u);
  small.Freeze();
  EXPECT_EQ(small.EncodedBytes(), 4u + 8u * 3u);
}

TEST(IntervalArchiveTest, AppendFindRange) {
  IntervalArchive archive;
  for (Seq s : {1u, 3u, 4u, 7u}) {
    IntervalRecord rec;
    rec.proc = 0;
    rec.seq = s;
    rec.vc = VectorClock(2);
    rec.vc[0] = s;
    archive.Append(std::move(rec));
  }
  EXPECT_EQ(archive.size(), 4u);
  EXPECT_NE(archive.Find(3), nullptr);
  EXPECT_EQ(archive.Find(2), nullptr);  // seq gaps are legal
  const auto range = archive.Range(1, 4);
  ASSERT_EQ(range.size(), 2u);
  EXPECT_EQ(range[0]->seq, 3u);
  EXPECT_EQ(range[1]->seq, 4u);
}

TEST(IntervalArchiveTest, RejectsOutOfOrderAppend) {
  IntervalArchive archive;
  IntervalRecord rec;
  rec.proc = 0;
  rec.seq = 5;
  archive.Append(std::move(rec));
  IntervalRecord older;
  older.proc = 0;
  older.seq = 4;
  EXPECT_THROW(archive.Append(std::move(older)), CheckError);
}

TEST(IntervalArchiveTest, HappenedBeforeViaVectorClocks) {
  IntervalRecord a;
  a.proc = 0;
  a.seq = 1;
  a.vc = VectorClock(2);
  a.vc[0] = 1;

  IntervalRecord b_after;
  b_after.proc = 1;
  b_after.seq = 1;
  b_after.vc = VectorClock(2);
  b_after.vc[0] = 1;  // saw a
  b_after.vc[1] = 1;

  IntervalRecord b_concurrent;
  b_concurrent.proc = 1;
  b_concurrent.seq = 1;
  b_concurrent.vc = VectorClock(2);
  b_concurrent.vc[1] = 1;

  EXPECT_TRUE(a.HappenedBefore(b_after));
  EXPECT_FALSE(a.HappenedBefore(b_concurrent));
  EXPECT_FALSE(b_concurrent.HappenedBefore(a));
}

TEST(IntervalArchiveTest, PaysForDiffPhaseSemantics) {
  IntervalArchive archive;
  IntervalRecord rec;
  rec.proc = 0;
  rec.seq = 1;
  rec.units = {4};
  rec.diffs.resize(1);
  const IntervalRecord* stored = archive.Append(std::move(rec));
  // First requester pays, and so does any requester in the same phase
  // (modelled as concurrent scans at the server — keeps the charge
  // deterministic under host scheduling).
  EXPECT_TRUE(stored->PaysForDiff(0, 3));
  EXPECT_TRUE(stored->PaysForDiff(0, 3));
  // Later phases are served from the writer's diff cache.
  EXPECT_FALSE(stored->PaysForDiff(0, 4));
  EXPECT_FALSE(stored->PaysForDiff(0, 7));
}

TEST(IntervalArchiveTest, ConcurrentAppendAndLookup) {
  IntervalArchive archive;
  std::thread writer([&] {
    for (Seq s = 1; s <= 1000; ++s) {
      IntervalRecord rec;
      rec.proc = 0;
      rec.seq = s;
      archive.Append(std::move(rec));
    }
  });
  // Concurrent lookups must be safe and monotone while the writer appends.
  std::size_t prev = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::size_t now = archive.Range(0, 1000).size();
    EXPECT_GE(now, prev);
    prev = now;
  }
  writer.join();
  EXPECT_EQ(archive.size(), 1000u);
  EXPECT_EQ(archive.Range(0, 1000).size(), 1000u);
}

}  // namespace
}  // namespace dsm

// Core LRC + multiple-writer protocol semantics, including the worked
// examples of paper §2 (useless messages from write-write false sharing,
// useless data from partial reads of truly-shared pages).
#include <gtest/gtest.h>

#include "core/runtime.h"

namespace dsm {
namespace {

RuntimeConfig SmallConfig(int nprocs) {
  RuntimeConfig cfg;
  cfg.num_procs = nprocs;
  cfg.heap_bytes = 1u << 20;
  return cfg;
}

// A write by one processor becomes visible to another after a barrier.
TEST(ProtocolBasic, WritePropagatesAcrossBarrier) {
  Runtime rt(SmallConfig(2));
  auto a = rt.Alloc<int>(16, "a");
  int seen = -1;
  rt.Run([&](Proc& p) {
    if (p.id() == 0) p.Write(a, 3, 42);
    p.Barrier();
    if (p.id() == 1) seen = p.Read(a, 3);
  });
  EXPECT_EQ(seen, 42);
}

// Without synchronization there is no visibility requirement; with LRC the
// reader keeps its (zero-initialized) copy.
TEST(ProtocolBasic, NoVisibilityWithoutSynchronization) {
  Runtime rt(SmallConfig(2));
  auto a = rt.Alloc<int>(16, "a");
  // Proc 1 reads before any barrier; LRC guarantees it sees its own copy.
  int before = -1, after = -1;
  rt.Run([&](Proc& p) {
    if (p.id() == 1) before = p.Read(a, 3);
    p.Barrier();
    if (p.id() == 0) p.Write(a, 3, 7);
    p.Barrier();
    if (p.id() == 1) after = p.Read(a, 3);
  });
  EXPECT_EQ(before, 0);
  EXPECT_EQ(after, 7);
}

// Multiple-writer protocol: two processors write disjoint halves of the
// same page concurrently; after the barrier every processor sees both
// halves merged.  This is the scenario hardware DSM would ping-pong on.
TEST(ProtocolBasic, MultipleWritersMergeOnOnePage) {
  Runtime rt(SmallConfig(3));
  const std::size_t n = kBasePageBytes / sizeof(int);  // exactly one page
  auto a = rt.AllocUnitAligned<int>(n, "page");
  std::vector<int> got(n, -1);
  rt.Run([&](Proc& p) {
    if (p.id() == 0) {
      for (std::size_t i = 0; i < n / 2; ++i) p.Write(a, i, 1000 + (int)i);
    } else if (p.id() == 1) {
      for (std::size_t i = n / 2; i < n; ++i) p.Write(a, i, 2000 + (int)i);
    }
    p.Barrier();
    if (p.id() == 2) {
      for (std::size_t i = 0; i < n; ++i) got[i] = p.Read(a, i);
    }
  });
  for (std::size_t i = 0; i < n / 2; ++i) EXPECT_EQ(got[i], 1000 + (int)i);
  for (std::size_t i = n / 2; i < n; ++i) EXPECT_EQ(got[i], 2000 + (int)i);
}

// Paper §2, useless messages: p1 and p2 write the same page, p3 reads only
// p1's half.  p3 must exchange messages with BOTH writers (2 exchanges =
// 4 messages), and the exchange with p2 is useless.
TEST(ProtocolBasic, WriteWriteFalseSharingCausesUselessMessages) {
  Runtime rt(SmallConfig(3));
  const std::size_t n = kBasePageBytes / sizeof(int);
  auto a = rt.AllocUnitAligned<int>(n, "page");
  rt.Run([&](Proc& p) {
    if (p.id() == 0) {
      for (std::size_t i = 0; i < n / 2; ++i) p.Write(a, i, 1);
    } else if (p.id() == 1) {
      for (std::size_t i = n / 2; i < n; ++i) p.Write(a, i, 2);
    }
    p.Barrier();
    if (p.id() == 2) {
      for (std::size_t i = 0; i < n / 2; ++i) (void)p.Read(a, i);
    }
    p.Barrier();
  });
  RunStats stats = rt.CollectStats();
  // One fault on p3 contacting two concurrent writers.
  EXPECT_EQ(stats.comm.useful_messages, 2u);   // exchange with p0
  EXPECT_EQ(stats.comm.useless_messages, 2u);  // exchange with p1
  EXPECT_EQ(stats.comm.useful_data_bytes, kBasePageBytes / 2);
  EXPECT_EQ(stats.comm.useless_msg_data_bytes, kBasePageBytes / 2);
  EXPECT_EQ(stats.comm.piggyback_useless_bytes, 0u);
  // Signature: one fault in bucket 2, one useful + one useless exchange.
  EXPECT_EQ(stats.comm.signature.useful(2), 1u);
  EXPECT_EQ(stats.comm.signature.useless(2), 1u);
}

// Paper §2, useless data: p1 writes a whole page, p2 reads only the top
// half.  One useful exchange whose bottom half is piggybacked useless data.
TEST(ProtocolBasic, PartialReadCausesPiggybackedUselessData) {
  Runtime rt(SmallConfig(2));
  const std::size_t n = kBasePageBytes / sizeof(int);
  auto a = rt.AllocUnitAligned<int>(n, "page");
  rt.Run([&](Proc& p) {
    if (p.id() == 0) {
      for (std::size_t i = 0; i < n; ++i) p.Write(a, i, 5);
    }
    p.Barrier();
    if (p.id() == 1) {
      for (std::size_t i = 0; i < n / 2; ++i) (void)p.Read(a, i);
    }
    p.Barrier();
  });
  RunStats stats = rt.CollectStats();
  EXPECT_EQ(stats.comm.useful_messages, 2u);
  EXPECT_EQ(stats.comm.useless_messages, 0u);
  EXPECT_EQ(stats.comm.useful_data_bytes, kBasePageBytes / 2);
  EXPECT_EQ(stats.comm.piggyback_useless_bytes, kBasePageBytes / 2);
  EXPECT_EQ(stats.comm.signature.useful(1), 1u);
}

// Diffs carry only modified words: a single-word write ships a single-word
// diff, not the page.
TEST(ProtocolBasic, DiffCarriesOnlyModifiedWords) {
  Runtime rt(SmallConfig(2));
  auto a = rt.AllocUnitAligned<int>(1024, "page");
  rt.Run([&](Proc& p) {
    if (p.id() == 0) p.Write(a, 17, 99);
    p.Barrier();
    if (p.id() == 1) (void)p.Read(a, 17);
    p.Barrier();
  });
  RunStats stats = rt.CollectStats();
  EXPECT_EQ(stats.comm.useful_data_bytes, 4u);
  EXPECT_EQ(stats.comm.useless_data_bytes(), 0u);
}

// Locks order intervals: migratory read-modify-write under a lock is seen
// coherently by a later reader, and ordered (overlapping) diffs apply in
// happens-before order.
TEST(ProtocolBasic, MigratoryDataUnderLock) {
  Runtime rt(SmallConfig(4));
  auto counter = rt.Alloc<int>(4, "counter");
  int final_value = -1;
  rt.Run([&](Proc& p) {
    p.Lock(0);
    p.Write(counter, 0, p.Read(counter, 0) + 1);
    p.Unlock(0);
    p.Barrier();
    if (p.id() == 2) final_value = p.Read(counter, 0);
  });
  EXPECT_EQ(final_value, 4);
}

// A processor that wrote a page concurrently with another writer keeps its
// own words after fetching the other writer's diff (twin merge).
TEST(ProtocolBasic, ConcurrentWriterKeepsOwnWordsAfterFetch) {
  Runtime rt(SmallConfig(2));
  const std::size_t n = kBasePageBytes / sizeof(int);
  auto a = rt.AllocUnitAligned<int>(n, "page");
  std::vector<int> seen0(4, -1);
  rt.Run([&](Proc& p) {
    if (p.id() == 0) {
      p.Write(a, 0, 10);
    } else {
      p.Write(a, 1, 20);
    }
    p.Barrier();
    if (p.id() == 0) {
      seen0[0] = p.Read(a, 0);
      seen0[1] = p.Read(a, 1);
    }
  });
  EXPECT_EQ(seen0[0], 10);
  EXPECT_EQ(seen0[1], 20);
}

// Sequential mode (1 processor): no protocol activity at all.
TEST(ProtocolBasic, SequentialModeHasNoProtocolTraffic) {
  RuntimeConfig cfg = SmallConfig(1);
  cfg.allow_sequential = true;
  Runtime rt(cfg);
  auto a = rt.Alloc<int>(4096, "a");
  rt.Run([&](Proc& p) {
    for (int i = 0; i < 4096; ++i) p.Write(a, i, i);
    p.Barrier();
    long sum = 0;
    for (int i = 0; i < 4096; ++i) sum += p.Read(a, i);
    EXPECT_EQ(sum, 4096L * 4095 / 2);
  });
  RunStats stats = rt.CollectStats();
  EXPECT_EQ(stats.net.total_messages(), 0u);
  EXPECT_EQ(stats.comm.twins_created, 0u);
  EXPECT_GT(stats.exec_time, 0);
}

// Virtual time: a run's execution time is the max over nodes and includes
// communication on the critical path.
TEST(ProtocolBasic, VirtualTimeAdvancesWithCommunication) {
  Runtime rt(SmallConfig(2));
  auto a = rt.AllocUnitAligned<int>(1024, "page");
  rt.Run([&](Proc& p) {
    if (p.id() == 0)
      for (int i = 0; i < 1024; ++i) p.Write(a, i, i);
    p.Barrier();
    if (p.id() == 1)
      for (int i = 0; i < 1024; ++i) (void)p.Read(a, i);
  });
  RunStats stats = rt.CollectStats();
  // Barrier (~0.3 ms) + diff fetch (~0.7 ms) dominate.
  EXPECT_GT(stats.exec_time, 500 * kNanosPerMicro);
  EXPECT_EQ(stats.node_times.size(), 2u);
}

}  // namespace
}  // namespace dsm

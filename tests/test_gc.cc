// Archive GC equivalence harness (DESIGN.md §6).
//
// The collector is a host-side optimization: for ANY
// gc_interval_barriers setting, results, modelled times, and every
// communication statistic must be bit-identical to the archive-everything
// run — the flattened chains replay the exact coalescing, wire sizes,
// lazy-diffing charges, and word deliveries of the records they replace.
// This suite sweeps the conformance catalogue over gc ∈ {0, 1, 4},
// drives a targeted base-plus-tail fault, and checks that the live
// archive stays bounded instead of scaling with barrier count.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "apps/registry.h"

namespace dsm::apps {
namespace {

struct AggPoint {
  const char* label;
  AggregationMode mode;
  int ppu;
};

const AggPoint kAggs[] = {
    {"4K", AggregationMode::kStatic, 1},
    {"16K", AggregationMode::kStatic, 4},
    {"Dyn", AggregationMode::kDynamic, 1},
};

RuntimeConfig GcConfig(const AggPoint& agg, int num_procs, int gc_interval) {
  RuntimeConfig cfg;
  cfg.num_procs = num_procs;
  cfg.aggregation = agg.mode;
  cfg.pages_per_unit = agg.ppu;
  cfg.gc_interval_barriers = gc_interval;
  return cfg;
}

// Every modelled quantity, bit for bit.  MemoryFootprint is deliberately
// NOT compared: it is host-side telemetry and legitimately changes with
// the GC setting.
void ExpectModelledStateEqual(const RunStats& a, const RunStats& b,
                              const std::string& where) {
  EXPECT_EQ(a.exec_time, b.exec_time) << where;
  EXPECT_EQ(a.node_times, b.node_times) << where;

  const CommBreakdown& ca = a.comm;
  const CommBreakdown& cb = b.comm;
  EXPECT_EQ(ca.useful_messages, cb.useful_messages) << where;
  EXPECT_EQ(ca.useless_messages, cb.useless_messages) << where;
  EXPECT_EQ(ca.sync_messages, cb.sync_messages) << where;
  EXPECT_EQ(ca.useful_data_bytes, cb.useful_data_bytes) << where;
  EXPECT_EQ(ca.piggyback_useless_bytes, cb.piggyback_useless_bytes) << where;
  EXPECT_EQ(ca.useless_msg_data_bytes, cb.useless_msg_data_bytes) << where;
  EXPECT_EQ(ca.delivered_data_bytes, cb.delivered_data_bytes) << where;
  EXPECT_EQ(ca.read_faults, cb.read_faults) << where;
  EXPECT_EQ(ca.write_faults, cb.write_faults) << where;
  EXPECT_EQ(ca.silent_validations, cb.silent_validations) << where;
  EXPECT_EQ(ca.twins_created, cb.twins_created) << where;
  EXPECT_EQ(ca.diffs_created, cb.diffs_created) << where;
  EXPECT_EQ(ca.diffs_applied, cb.diffs_applied) << where;
  EXPECT_EQ(ca.units_invalidated, cb.units_invalidated) << where;
  EXPECT_EQ(ca.group_prefetch_units, cb.group_prefetch_units) << where;
  EXPECT_EQ(ca.home_flush_messages, cb.home_flush_messages) << where;
  EXPECT_EQ(ca.home_flushes, cb.home_flushes) << where;
  EXPECT_EQ(ca.home_flush_bytes, cb.home_flush_bytes) << where;
  EXPECT_EQ(ca.home_fetches, cb.home_fetches) << where;
  EXPECT_EQ(ca.home_fetch_bytes, cb.home_fetch_bytes) << where;
  EXPECT_EQ(ca.signature.ToString(), cb.signature.ToString()) << where;

  for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
    const auto kind = static_cast<MessageKind>(k);
    EXPECT_EQ(a.net.messages(kind), b.net.messages(kind)) << where;
    EXPECT_EQ(a.net.bytes(kind), b.net.bytes(kind)) << where;
  }
}

class GcEquivalenceTest
    : public ::testing::TestWithParam<ConformanceScenario> {};

TEST_P(GcEquivalenceTest, CollectedRunsMatchArchiveEverything) {
  const ConformanceScenario& s = GetParam();
  for (const AggPoint& agg : kAggs) {
    AppRun baseline;  // gc off
    for (int gc : {0, 1, 4}) {
      const std::string where = s.app + " @ " + agg.label +
                                " gc=" + std::to_string(gc);
      auto app = MakeApp(s.app, s.dataset);
      const AppRun run =
          Execute(*app, GcConfig(agg, s.num_procs, gc));
      if (gc == 0) {
        baseline = run;
        continue;
      }
      if (s.modelled_stable) {
        // Bit-deterministic apps: GC must be perfectly invisible.
        EXPECT_EQ(run.result, baseline.result) << where;
        ExpectModelledStateEqual(run.stats, baseline.stats, where);
      } else if (s.rel_tol == 0.0) {
        // Lock-scheduled statistics but an exact (commuting-sums)
        // checksum: Fuzz.  The result must still match bit for bit.
        EXPECT_EQ(run.result, baseline.result) << where;
      } else {
        // Lock-ordered apps are not bit-reproducible run to run under ANY
        // setting; the checksum tolerance is the strongest portable check.
        EXPECT_NEAR(run.result / baseline.result, 1.0, s.rel_tol) << where;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, GcEquivalenceTest,
    ::testing::ValuesIn(ConformanceScenarios()),
    [](const ::testing::TestParamInfo<ConformanceScenario>& info) {
      std::string name = info.param.app;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- targeted base-plus-tail fault ------------------------------------------
//
// Proc 0 rewrites a unit every epoch for many barriers while proc 1 never
// touches it, so proc 1's pending chain spans the whole history; proc 2
// writes disjoint words late (the live tail).  With GC on, the old epochs
// are flattened into the canonical base and reclaimed long before proc 1
// finally reads — the fault must resolve from base + tail to exactly the
// bytes (and exactly the stats) of the archive-everything run.
struct LateReaderOutcome {
  std::vector<int> values;
  RunStats stats;
  std::uint64_t reclaimed = 0;
  std::uint64_t live_intervals_peak = 0;
};

LateReaderOutcome RunLateReader(int gc_interval) {
  RuntimeConfig cfg;
  cfg.num_procs = 4;
  cfg.heap_bytes = 1u << 20;
  cfg.gc_interval_barriers = gc_interval;
  constexpr int kEpochs = 12;
  constexpr std::size_t kWords = 16;

  Runtime rt(cfg);
  auto data = rt.Alloc<int>(1024, "data");
  LateReaderOutcome out;
  std::mutex mu;
  rt.Run([&](Proc& p) {
    for (int e = 0; e < kEpochs; ++e) {
      if (p.id() == 0) {
        // Overlapping rewrites: only the newest value may survive.
        for (std::size_t i = 0; i < kWords; ++i) {
          p.Write(data, i, 1000 * (e + 1) + static_cast<int>(i));
        }
      }
      if (p.id() == 2 && e >= kEpochs - 2) {
        // Live tail: recent epochs, disjoint words.
        for (std::size_t i = 0; i < kWords; ++i) {
          p.Write(data, 64 + i, 7000 + 10 * e + static_cast<int>(i));
        }
      }
      p.Barrier();
    }
    if (p.id() == 1) {
      // First and only access: the fault walks the full covered history.
      std::vector<int> got;
      for (std::size_t i = 0; i < kWords; ++i) got.push_back(p.Read(data, i));
      for (std::size_t i = 0; i < kWords; ++i) {
        got.push_back(p.Read(data, 64 + i));
      }
      std::lock_guard lock(mu);
      out.values = std::move(got);
    }
    p.Barrier();
  });
  out.stats = rt.CollectStats();
  out.reclaimed = out.stats.mem.reclaimed_intervals;
  out.live_intervals_peak = out.stats.mem.peak_live_intervals;
  return out;
}

TEST(GcBasePlusTail, LateFaultMatchesFullHistoryBitForBit) {
  const LateReaderOutcome off = RunLateReader(0);
  const LateReaderOutcome on = RunLateReader(1);

  // Procs 1 and 3 never touch the unit, so their pending sets (and
  // pre-existing chains) are identical every pass: the GC's intern cache
  // must build their chains once and share the bodies.
  EXPECT_GT(on.stats.mem.chains_built, 0u);
  EXPECT_GT(on.stats.mem.chains_shared, 0u);
  // Barrier-only program: read-aware flattening must never engage.
  EXPECT_EQ(on.stats.mem.records_elided, 0u);

  // GC actually ran and reclaimed the old epochs out from under the
  // pending chain.
  EXPECT_EQ(off.reclaimed, 0u);
  EXPECT_GT(on.reclaimed, 0u);
  EXPECT_LT(on.live_intervals_peak, off.live_intervals_peak);

  // The late reader saw the newest value of every word.
  ASSERT_EQ(on.values.size(), 32u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(on.values[i], 12000 + static_cast<int>(i)) << "word " << i;
    EXPECT_EQ(on.values[16 + i], 7110 + static_cast<int>(i))
        << "tail word " << i;
  }
  EXPECT_EQ(off.values, on.values);

  // And paid exactly the modelled costs of the full-history resolution.
  ExpectModelledStateEqual(on.stats, off.stats, "late reader");
}

// --- virgin store: chain headers live only on sharers ------------------------
//
// One writer rewrites a unit for many epochs while the rest of the
// cluster never touches it.  The per-unit sharer directory must keep
// every never-faulting processor on the single shared virgin image
// (DESIGN.md §8): chain bodies built are a property of the write history
// and must not move when the cluster grows, while the shared-header
// count grows with the virgin population.  And the whole mechanism stays
// modelled-invisible at the scaled size.
struct VirginOutcome {
  std::vector<int> values;
  RunStats stats;
};

VirginOutcome RunVirgin(int nprocs, int gc_interval) {
  RuntimeConfig cfg;
  cfg.num_procs = nprocs;
  cfg.heap_bytes = 1u << 20;
  cfg.gc_interval_barriers = gc_interval;
  constexpr int kEpochs = 10;
  constexpr std::size_t kWords = 16;

  Runtime rt(cfg);
  auto data = rt.Alloc<int>(1024, "data");
  VirginOutcome out;
  std::mutex mu;
  rt.Run([&](Proc& p) {
    for (int e = 0; e < kEpochs; ++e) {
      if (p.id() == 0) {
        for (std::size_t i = 0; i < kWords; ++i) {
          p.Write(data, i, 100 * (e + 1) + static_cast<int>(i));
        }
      }
      p.Barrier();
    }
    // Proc 1 faults only after the last collection: during every GC pass
    // all processors but the writer are virgin.
    if (p.id() == 1) {
      std::vector<int> got;
      for (std::size_t i = 0; i < kWords; ++i) got.push_back(p.Read(data, i));
      std::lock_guard lock(mu);
      out.values = std::move(got);
    }
    p.Barrier();
  });
  out.stats = rt.CollectStats();
  return out;
}

TEST(GcVirginStore, ChainHeadersStayOffNonSharers) {
  const VirginOutcome off = RunVirgin(16, 0);
  const VirginOutcome small = RunVirgin(4, 1);
  const VirginOutcome big = RunVirgin(16, 1);

  // The late reader saw the final epoch, and GC stayed bit-invisible at
  // the scaled cluster size.
  ASSERT_EQ(big.values.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(big.values[i], 1000 + static_cast<int>(i)) << "word " << i;
  }
  EXPECT_EQ(big.values, off.values);
  ExpectModelledStateEqual(big.stats, off.stats, "virgin 16p");

  // Chain bodies track the write history, not the cluster: the 12 extra
  // never-faulting processors ride the shared virgin image instead of
  // getting per-node headers (the old per-node residual would make this
  // scale linearly in nprocs).
  EXPECT_GT(small.stats.mem.chains_built, 0u);
  EXPECT_EQ(big.stats.mem.chains_built, small.stats.mem.chains_built);
  // ...while each extra virgin consumer is accounted as a shared header.
  EXPECT_GT(big.stats.mem.chains_shared, small.stats.mem.chains_shared);
}

// --- lock-heavy sweeps -------------------------------------------------------
//
// Water and TSP synchronize through locks, whose grant order is host
// scheduled: their modelled state is not bit-reproducible under ANY
// setting (the stable apps' bit-identity is covered by GcEquivalenceTest
// above), so these sweeps assert the strongest portable properties —
// result tolerance across gc ∈ {0, 1, 4}, archive memory bounded by
// collection, and the lock-specific GC machinery actually engaging:
// shared flattened chains and read-aware elision (DESIGN.md §6).
struct LockSweepOutcome {
  double result = 0;
  MemoryFootprint mem;
};

LockSweepOutcome RunLockApp(const char* app, const char* dataset,
                            int num_procs, int gc_interval) {
  RuntimeConfig cfg;
  cfg.num_procs = num_procs;
  cfg.gc_interval_barriers = gc_interval;
  auto a = MakeApp(app, dataset);
  const AppRun run = Execute(*a, cfg);
  return {run.result, run.stats.mem};
}

TEST(GcLockHeavy, WaterSweepRecoversMemoryAndElides) {
  const LockSweepOutcome off = RunLockApp("Water", "512", 8, 0);
  EXPECT_EQ(off.mem.reclaimed_intervals, 0u);
  EXPECT_EQ(off.mem.records_elided, 0u);
  for (int gc : {1, 4}) {
    const LockSweepOutcome on = RunLockApp("Water", "512", 8, gc);
    const std::string where = "Water gc=" + std::to_string(gc);
    // Force accumulation is lock-ordered: same checksum up to fp
    // tolerance (the conformance catalogue's bound for Water).
    EXPECT_NEAR(on.result / off.result, 1.0, 1e-3) << where;
    // Collection actually ran; at every-barrier cadence it roughly
    // halves the peak archive (gc=4 fires too rarely within Water's
    // handful of barriers to dent the peak — it still reclaims).
    EXPECT_GT(on.mem.reclaimed_intervals, 0u) << where;
    EXPECT_LE(on.mem.peak_live_intervals, off.mem.peak_live_intervals)
        << where;
    if (gc == 1) {
      EXPECT_LT(on.mem.peak_live_intervals,
                off.mem.peak_live_intervals * 3 / 5)
          << where;
    }
    // The lock-heavy machinery engaged: chains were built, some were
    // adopted from the intern cache, and never-read force/aux slots were
    // elided instead of chained.
    EXPECT_GT(on.mem.chains_built, 0u) << where;
    EXPECT_GT(on.mem.chains_shared, 0u) << where;
    EXPECT_GT(on.mem.records_elided, 0u) << where;
  }
}

TEST(GcLockHeavy, TspSweepKeepsResultAndBoundsArchive) {
  const LockSweepOutcome off = RunLockApp("TSP", "tiny", 4, 0);
  EXPECT_EQ(off.mem.records_elided, 0u);  // gc off → nothing to elide
  for (int gc : {1, 4}) {
    const LockSweepOutcome on = RunLockApp("TSP", "tiny", 4, gc);
    const std::string where = "TSP gc=" + std::to_string(gc);
    // Branch-and-bound pruning races, but the best tour it converges to
    // is stable to the conformance tolerance.
    EXPECT_NEAR(on.result / off.result, 1.0, 1e-6) << where;
    // TSP's interval population follows host lock-grant order, so the
    // two runs' peaks carry a little scheduling noise each; under TSan's
    // timing distortion the raw <= comparison sat exactly on the margin
    // (observed 611 vs 610).  A 2% allowance keeps the real claim — GC
    // bounds the archive instead of letting it grow monotonically —
    // while tolerating grant-order jitter.
    EXPECT_LE(on.mem.peak_live_intervals,
              off.mem.peak_live_intervals + off.mem.peak_live_intervals / 50)
        << where;
  }
}

// --- HLRC: no archive, no GC -------------------------------------------------
//
// The home-based backend absorbs diffs at the homes and keeps only
// notice-metadata records, so the interval-archive GC must never engage:
// no passes, no canonical bases, no chains, no reclaim counts — even with
// collection nominally enabled and even for a lock-heavy mixed workload.
// Guards against the GC hooks firing on a backend that has no archive.
TEST(HlrcNoArchive, GcHooksStayOffForTheHomeBackend) {
  for (const char* app : {"Jacobi", "Fuzz"}) {
    for (int gc : {0, 1}) {
      RuntimeConfig cfg;
      cfg.num_procs = 4;
      cfg.backend = BackendKind::kHlrc;
      cfg.gc_interval_barriers = gc;
      auto a = MakeApp(app, "tiny");
      const AppRun run = Execute(*a, cfg);
      const std::string where =
          std::string(app) + " gc=" + std::to_string(gc);
      const MemoryFootprint& mem = run.stats.mem;
      EXPECT_EQ(mem.gc_passes, 0u) << where;
      EXPECT_EQ(mem.reclaimed_intervals, 0u) << where;
      EXPECT_EQ(mem.peak_live_intervals, 0u) << where;
      EXPECT_EQ(mem.peak_archive_bytes, 0u) << where;
      EXPECT_EQ(mem.canonical_base_peak_bytes, 0u) << where;
      EXPECT_EQ(mem.chains_built, 0u) << where;
      EXPECT_EQ(mem.chains_shared, 0u) << where;
      EXPECT_EQ(mem.records_elided, 0u) << where;
      // The backend actually moved data through the homes.
      EXPECT_GT(run.stats.comm.home_flushes, 0u) << where;
      EXPECT_GT(run.stats.comm.home_fetches, 0u) << where;
    }
  }
}

// HLRC's memory story is the notice-log watermark prune, not the archive
// GC — so bound it directly: after many barrier epochs, each node's
// archive must hold only the last few notice records (everything every
// consumer has seen is pruned), not one per interval ever closed.  A
// broken HlrcPruneNotices is an unbounded host-memory leak that the
// telemetry counters (deliberately unhooked for HLRC) would never show.
TEST(HlrcNoArchive, NoticeLogIsWatermarkPruned) {
  RuntimeConfig cfg;
  cfg.num_procs = 4;
  cfg.backend = BackendKind::kHlrc;
  cfg.heap_bytes = 1u << 20;
  constexpr int kEpochs = 40;

  Runtime rt(cfg);
  auto data = rt.Alloc<int>(1024, "data");
  rt.Run([&](Proc& p) {
    for (int e = 0; e < kEpochs; ++e) {
      // Every proc closes a non-empty interval every epoch.
      p.Write(data, static_cast<std::size_t>(p.id()) * 64,
              e * 10 + p.id());
      p.Barrier();
      // And consumes the notices (reads a peer's word) so the watermark
      // advances.
      (void)p.Read(data,
                   static_cast<std::size_t>((p.id() + 1) % 4) * 64);
      p.Barrier();
    }
  });
  for (ProcId pr = 0; pr < cfg.num_procs; ++pr) {
    const IntervalArchive& a = *rt.shared().archives[pr];
    // One interval per epoch was closed; all but the last barrier-or-two
    // of them must be gone (the prune lags one barrier behind the
    // consumers' merges; min_retained_seq() is 0 when everything was
    // pruned).
    EXPECT_LE(a.size(), 4u) << "proc " << pr;
    if (a.size() > 0) {
      EXPECT_GT(a.min_retained_seq(), static_cast<Seq>(kEpochs / 2))
          << "proc " << pr;
    }
  }
}

// --- serial-vs-striped pass sizing -------------------------------------------
//
// GcSerialPassLimit is the (pure) policy behind the GC's execution-mode
// switch; modelled state is identical either way, so the policy is free
// to depend on the host — pin its shape so a refactor cannot silently
// turn every pass striped on a laptop or serial on a server.
TEST(GcPolicy, SerialLimitScalesWithHardwareConcurrency) {
  // Unknown concurrency: the historical fixed threshold.
  EXPECT_EQ(GcSerialPassLimit(0), 1024u);
  // Single core: striping conserves work but buys no parallelism — every
  // pass stays serial.
  EXPECT_EQ(GcSerialPassLimit(1), std::numeric_limits<std::size_t>::max());
  // The 4-thread point reproduces the historical default; wider hosts
  // stripe progressively lighter passes, down to a floor.
  EXPECT_EQ(GcSerialPassLimit(2), 2048u);
  EXPECT_EQ(GcSerialPassLimit(4), 1024u);
  EXPECT_EQ(GcSerialPassLimit(8), 512u);
  EXPECT_EQ(GcSerialPassLimit(64), 64u);
  EXPECT_EQ(GcSerialPassLimit(256), 64u);
  for (unsigned hw = 2; hw < 128; ++hw) {
    EXPECT_GE(GcSerialPassLimit(hw), GcSerialPassLimit(hw + 1)) << hw;
  }
}

// The switch is only legal because both execution modes are bit-identical
// to the model — force each mode explicitly (the auto policy would pick
// whichever one this host's core count selects, leaving the other
// untested) and compare everything.
TEST(GcPolicy, SerialAndStripedPassesAreBitIdentical) {
  auto run_mode = [](GcPassMode mode) {
    RuntimeConfig cfg;
    cfg.num_procs = 4;
    cfg.gc_pass_mode = mode;
    auto app = MakeApp("MGS", "tiny");
    return Execute(*app, cfg);
  };
  const AppRun serial = run_mode(GcPassMode::kForceSerial);
  const AppRun striped = run_mode(GcPassMode::kForceStriped);
  // Both modes actually collected (MGS reclaims every barrier).
  EXPECT_GT(serial.stats.mem.reclaimed_intervals, 0u);
  EXPECT_GT(striped.stats.mem.reclaimed_intervals, 0u);
  EXPECT_EQ(striped.result, serial.result);
  ExpectModelledStateEqual(striped.stats, serial.stats,
                           "serial vs striped");
  // Host-side chain economics are deterministic too: each unit has one
  // worker in either mode, walking nodes in the same fixed order.
  EXPECT_EQ(striped.stats.mem.reclaimed_intervals,
            serial.stats.mem.reclaimed_intervals);
  EXPECT_EQ(striped.stats.mem.chains_built, serial.stats.mem.chains_built);
  EXPECT_EQ(striped.stats.mem.chains_shared,
            serial.stats.mem.chains_shared);
}

// --- bounded archive ---------------------------------------------------------
//
// MGS is the archive-growth worst case: every vector is rewritten at every
// step, so without GC the live archive scales with the barrier count.
// With GC on, the peak must be a small constant independent of it.
TEST(GcBoundedArchive, MgsPeakLiveIntervalsDoNotScaleWithBarriers) {
  auto run_mgs = [](int gc_interval) {
    RuntimeConfig cfg;
    cfg.num_procs = 4;
    cfg.gc_interval_barriers = gc_interval;
    auto app = MakeApp("MGS", "tiny");
    return Execute(*app, cfg).stats.mem;
  };
  const MemoryFootprint off = run_mgs(0);
  const MemoryFootprint on = run_mgs(1);

  // MGS "tiny" runs 32 vectors → 60+ barriers; without GC the archive
  // holds hundreds of live intervals at peak.
  EXPECT_GT(off.peak_live_intervals, 100u);
  EXPECT_EQ(off.reclaimed_intervals, 0u);
  // With GC the peak is bounded by interval × lag epochs of production —
  // far below the barrier count, not proportional to it.
  EXPECT_LT(on.peak_live_intervals, 32u);
  EXPECT_GT(on.gc_passes, 10u);
  EXPECT_GT(on.reclaimed_intervals, 100u);
  EXPECT_LT(on.peak_archive_bytes, off.peak_archive_bytes / 4);
}

// --- HLRC clean-twin skip ----------------------------------------------------
//
// hlrc_skip_clean_diff_scan is a host-side fast path: when a twin is
// known clean (every write since TwinUnit restored the twin's value),
// the flush and fetch paths skip the word-by-word diff scan but must
// still charge the exact modelled costs of the scan they skipped.  A/B
// the knob on a program that mixes value-identical rewrites (unit 0 —
// clean twin every epoch after the first) with genuinely-changing writes
// (unit 1): results and every modelled quantity must be bit-identical.
TEST(HlrcCleanTwin, SkipKnobIsBitInvisible) {
  auto run = [](bool skip) {
    RuntimeConfig cfg;
    cfg.num_procs = 4;
    cfg.backend = BackendKind::kHlrc;
    cfg.heap_bytes = 1u << 20;
    cfg.hlrc_skip_clean_diff_scan = skip;
    constexpr int kEpochs = 8;

    Runtime rt(cfg);
    auto data = rt.AllocUnitAligned<int>(2048, "data");  // two 4K units
    std::vector<int> seen;
    std::mutex mu;
    rt.Run([&](Proc& p) {
      std::vector<int> got;
      for (int e = 0; e < kEpochs; ++e) {
        if (p.id() == 0) {
          // Unit 0: value-identical rewrites — the twin ends each epoch
          // clean, yet the flush must charge the full scan accounting.
          for (std::size_t i = 0; i < 8; ++i) {
            p.Write(data, i, 7 * static_cast<int>(i));
          }
          // Unit 1: a word that really changes — the dirty path.
          p.Write(data, 1024, e * 10);
        }
        p.Barrier();
        if (p.id() == 1) {
          got.push_back(p.Read(data, 0));
          got.push_back(p.Read(data, 1024));
        }
        p.Barrier();
      }
      if (p.id() == 1) {
        std::lock_guard lock(mu);
        seen = std::move(got);
      }
    });
    return std::make_pair(std::move(seen), rt.CollectStats());
  };

  const auto [values_on, stats_on] = run(true);
  const auto [values_off, stats_off] = run(false);
  ASSERT_EQ(values_on.size(), 16u);
  EXPECT_EQ(values_on, values_off);
  EXPECT_EQ(values_on[1], 0);
  EXPECT_EQ(values_on[15], 70);
  ExpectModelledStateEqual(stats_on, stats_off, "clean-twin skip");
}

// --- recovery telemetry back-compat ------------------------------------------
//
// The crash-recovery counters (DESIGN.md §9) follow the zero-entry skip
// rule: on a run with no fault plan they stay zero and appear NOWHERE in
// the textual stats, so existing goldens, fingerprints, and parsers are
// untouched by the subsystem's existence.
TEST(GcTelemetry, NoFaultRunEmitsNoRecoveryCounters) {
  for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
    RuntimeConfig cfg;
    cfg.num_procs = 4;
    cfg.backend = backend;
    auto app = MakeApp("Jacobi", "tiny");
    const AppRun run = Execute(*app, cfg);
    const CommBreakdown& c = run.stats.comm;
    EXPECT_EQ(c.recoveries, 0u);
    EXPECT_EQ(c.recovery_messages, 0u);
    EXPECT_EQ(c.recovery_data_bytes, 0u);
    EXPECT_EQ(c.recovery_units, 0u);
    EXPECT_EQ(c.recovery_records, 0u);
    EXPECT_EQ(run.stats.recovery_modelled_ns, 0);
    EXPECT_EQ(run.stats.recovery_wall_ns, 0u);
    EXPECT_EQ(run.stats.ToString().find("recovery"), std::string::npos);
    EXPECT_EQ(c.ToString().find("recovery"), std::string::npos);
  }
}

}  // namespace
}  // namespace dsm::apps

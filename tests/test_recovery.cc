// Deterministic fault injection + crash recovery (DESIGN.md §9).
//
// A seeded FaultSchedule kills an ordered list of victims — ANY
// processor, proc 0 and repeat victims included — each at a modelled
// point: the victim's n-th barrier or right after its m-th interval
// close.  The RecoveryCoordinator rebuilds each victim's volatile state
// from the stable substrate (LRC: canonical-base checkpoints + surviving
// archives; HLRC: home images, with a crashed home's units reconstructed
// from surviving sharers and re-homed via the override table), and proc
// 0's coordinator roles fail over to the lowest surviving rank for the
// crash barrier.  The gates:
//
//   * post-recovery results bit-identical to the failure-free run for
//     every conformance cell (tolerance only for lock-scheduled apps),
//     proc-0 and home-crash schedules included,
//   * the same schedule (seed included) twice → bit-identical everything,
//     recovery telemetry included — swept over ≥32 random schedules,
//   * LRC with the archive GC disabled fails fast with a clear
//     "no checkpoint available" error instead of hanging; HLRC with the
//     GC disabled accepts the same schedule (homes, not checkpoints, are
//     its stable substrate),
//   * recovery telemetry appears in ToString only when a fault fired.
#include <gtest/gtest.h>

#include <cctype>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "apps/registry.h"
#include "core/fault.h"

namespace dsm::apps {
namespace {

struct AggPoint {
  const char* label;
  AggregationMode mode;
  int ppu;
};

const AggPoint kAggs[] = {
    {"4K", AggregationMode::kStatic, 1},
    {"16K", AggregationMode::kStatic, 4},
    {"Dyn", AggregationMode::kDynamic, 1},
};

// Every modelled quantity, bit for bit (MemoryFootprint excluded: host
// telemetry).  Recovery wall time is host time and excluded too.
void ExpectModelledStateEqual(const RunStats& a, const RunStats& b,
                              const std::string& where) {
  EXPECT_EQ(a.exec_time, b.exec_time) << where;
  EXPECT_EQ(a.node_times, b.node_times) << where;
  EXPECT_EQ(a.recovery_modelled_ns, b.recovery_modelled_ns) << where;

  const CommBreakdown& ca = a.comm;
  const CommBreakdown& cb = b.comm;
  EXPECT_EQ(ca.useful_messages, cb.useful_messages) << where;
  EXPECT_EQ(ca.useless_messages, cb.useless_messages) << where;
  EXPECT_EQ(ca.sync_messages, cb.sync_messages) << where;
  EXPECT_EQ(ca.useful_data_bytes, cb.useful_data_bytes) << where;
  EXPECT_EQ(ca.delivered_data_bytes, cb.delivered_data_bytes) << where;
  EXPECT_EQ(ca.read_faults, cb.read_faults) << where;
  EXPECT_EQ(ca.write_faults, cb.write_faults) << where;
  EXPECT_EQ(ca.twins_created, cb.twins_created) << where;
  EXPECT_EQ(ca.diffs_created, cb.diffs_created) << where;
  EXPECT_EQ(ca.diffs_applied, cb.diffs_applied) << where;
  EXPECT_EQ(ca.units_invalidated, cb.units_invalidated) << where;
  EXPECT_EQ(ca.recoveries, cb.recoveries) << where;
  EXPECT_EQ(ca.recovery_messages, cb.recovery_messages) << where;
  EXPECT_EQ(ca.recovery_data_bytes, cb.recovery_data_bytes) << where;
  EXPECT_EQ(ca.recovery_units, cb.recovery_units) << where;
  EXPECT_EQ(ca.recovery_records, cb.recovery_records) << where;
  EXPECT_EQ(ca.recovery_retransmits, cb.recovery_retransmits) << where;
  EXPECT_EQ(ca.recovery_retransmit_bytes, cb.recovery_retransmit_bytes)
      << where;
  EXPECT_EQ(a.recovery_events, b.recovery_events) << where;
  EXPECT_EQ(ca.signature.ToString(), cb.signature.ToString()) << where;

  for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
    const auto kind = static_cast<MessageKind>(k);
    EXPECT_EQ(a.net.messages(kind), b.net.messages(kind)) << where;
    EXPECT_EQ(a.net.bytes(kind), b.net.bytes(kind)) << where;
  }
}

// --- targeted rebuild checks -------------------------------------------------
//
// A small deterministic epoch program with a known final value per word:
// proc 0 rewrites one region every epoch (foreign history for the victim),
// the victim (proc 1) rewrites its own region (its OWN archive must feed
// the rebuild — the log models stable storage and survives the crash), and
// proc 2 reads the victim's region at the end (the victim's shared-side
// state must stay servable through the crash).
struct EpochOutcome {
  std::vector<int> victim_saw;
  std::vector<int> peer_saw;
  RunStats stats;
};

EpochOutcome RunEpochs(BackendKind backend, const FaultSchedule& plan,
                       int gc_interval = -1) {
  RuntimeConfig cfg;
  cfg.num_procs = 4;
  cfg.heap_bytes = 1u << 20;
  cfg.backend = backend;
  cfg.fault = plan;
  if (gc_interval >= 0) cfg.gc_interval_barriers = gc_interval;
  constexpr int kEpochs = 8;
  constexpr std::size_t kWords = 16;

  Runtime rt(cfg);
  auto data = rt.Alloc<int>(1024, "data");
  EpochOutcome out;
  std::mutex mu;
  rt.Run([&](Proc& p) {
    for (int e = 0; e < kEpochs; ++e) {
      if (p.id() == 0) {
        for (std::size_t i = 0; i < kWords; ++i) {
          p.Write(data, i, 1000 * (e + 1) + static_cast<int>(i));
        }
      }
      if (p.id() == 1) {
        for (std::size_t i = 0; i < kWords; ++i) {
          p.Write(data, 64 + i, 500 * (e + 1) + static_cast<int>(i));
        }
      }
      p.Barrier();
    }
    if (p.id() == 1) {
      std::vector<int> got;
      for (std::size_t i = 0; i < kWords; ++i) got.push_back(p.Read(data, i));
      for (std::size_t i = 0; i < kWords; ++i) {
        got.push_back(p.Read(data, 64 + i));
      }
      std::lock_guard lock(mu);
      out.victim_saw = std::move(got);
    }
    if (p.id() == 2) {
      std::vector<int> got;
      for (std::size_t i = 0; i < kWords; ++i) {
        got.push_back(p.Read(data, 64 + i));
      }
      std::lock_guard lock(mu);
      out.peer_saw = std::move(got);
    }
    p.Barrier();
  });
  out.stats = rt.CollectStats();
  return out;
}

void ExpectEpochValues(const EpochOutcome& out, const std::string& where) {
  ASSERT_EQ(out.victim_saw.size(), 32u) << where;
  ASSERT_EQ(out.peer_saw.size(), 16u) << where;
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(out.victim_saw[i], 8000 + static_cast<int>(i))
        << where << " foreign word " << i;
    EXPECT_EQ(out.victim_saw[16 + i], 4000 + static_cast<int>(i))
        << where << " own word " << i;
    EXPECT_EQ(out.peer_saw[i], 4000 + static_cast<int>(i))
        << where << " peer-read word " << i;
  }
}

TEST(RecoveryRebuild, LrcAtBarrierMatchesFailureFree) {
  // Barrier 3: the first GC pass (interval 1, lag 2) has completed, so the
  // rebuild exercises checkpoint bases + log tail, not just log replay.
  const EpochOutcome fault =
      RunEpochs(BackendKind::kLrc, FaultPlan::AtBarrier(1, 3));
  const EpochOutcome clean = RunEpochs(BackendKind::kLrc, FaultPlan{});
  ExpectEpochValues(fault, "lrc at-barrier");
  EXPECT_EQ(fault.victim_saw, clean.victim_saw);
  EXPECT_EQ(fault.peer_saw, clean.peer_saw);
  EXPECT_EQ(fault.stats.comm.recoveries, 1u);
  EXPECT_GT(fault.stats.comm.recovery_messages, 0u);
  EXPECT_GT(fault.stats.comm.recovery_units, 0u);
  EXPECT_GT(fault.stats.recovery_modelled_ns, 0);
  EXPECT_EQ(clean.stats.comm.recoveries, 0u);
}

TEST(RecoveryRebuild, LrcEarlyBarrierRebuildsFromPureLogReplay) {
  // Barrier 1: no GC pass has run yet — no canonical bases, the rebuild
  // is pure archive replay from the zero heap.
  const EpochOutcome fault =
      RunEpochs(BackendKind::kLrc, FaultPlan::AtBarrier(1, 1));
  ExpectEpochValues(fault, "lrc early barrier");
  EXPECT_EQ(fault.stats.comm.recoveries, 1u);
  EXPECT_GT(fault.stats.comm.recovery_records, 0u);
}

TEST(RecoveryRebuild, LrcAfterReleaseRebuildsMidInterval) {
  const EpochOutcome fault =
      RunEpochs(BackendKind::kLrc, FaultPlan::AfterRelease(1, 2));
  const EpochOutcome clean = RunEpochs(BackendKind::kLrc, FaultPlan{});
  ExpectEpochValues(fault, "lrc after-release");
  EXPECT_EQ(fault.victim_saw, clean.victim_saw);
  EXPECT_EQ(fault.peer_saw, clean.peer_saw);
  EXPECT_EQ(fault.stats.comm.recoveries, 1u);
}

TEST(RecoveryRebuild, HlrcAtBarrierRebuildsFromHomes) {
  const EpochOutcome fault =
      RunEpochs(BackendKind::kHlrc, FaultPlan::AtBarrier(1, 3));
  const EpochOutcome clean = RunEpochs(BackendKind::kHlrc, FaultPlan{});
  ExpectEpochValues(fault, "hlrc at-barrier");
  EXPECT_EQ(fault.victim_saw, clean.victim_saw);
  EXPECT_EQ(fault.peer_saw, clean.peer_saw);
  EXPECT_EQ(fault.stats.comm.recoveries, 1u);
  // HLRC recovery is whole-unit home copies: units but no replayed records.
  EXPECT_GT(fault.stats.comm.recovery_units, 0u);
  EXPECT_EQ(fault.stats.comm.recovery_records, 0u);
}

TEST(RecoveryRebuild, HlrcAfterReleaseRebuildsFromHomes) {
  const EpochOutcome fault =
      RunEpochs(BackendKind::kHlrc, FaultPlan::AfterRelease(1, 2));
  ExpectEpochValues(fault, "hlrc after-release");
  EXPECT_EQ(fault.stats.comm.recoveries, 1u);
}

// --- conformance sweep -------------------------------------------------------
//
// Every catalogue app, every unit size, both protocol backends, both crash
// kinds: the post-recovery checksum must match the failure-free run bit
// for bit (lock-scheduled apps to their catalogue tolerance).
class RecoveryConformanceTest
    : public ::testing::TestWithParam<ConformanceScenario> {};

TEST_P(RecoveryConformanceTest, PostRecoveryChecksumMatchesFailureFree) {
  const ConformanceScenario& s = GetParam();
  const FaultPlan kPlans[] = {
      FaultPlan::AtBarrier(1, 1),
      FaultPlan::AfterRelease(1, 2),
  };
  for (const AggPoint& agg : kAggs) {
    for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
      RuntimeConfig cfg;
      cfg.num_procs = s.num_procs;
      cfg.aggregation = agg.mode;
      cfg.pages_per_unit = agg.ppu;
      cfg.backend = backend;
      const std::string cell =
          s.app + " @ " + agg.label +
          (backend == BackendKind::kLrc ? " LRC" : " HLRC");

      auto base_app = MakeApp(s.app, s.dataset);
      const AppRun baseline = Execute(*base_app, cfg);
      EXPECT_EQ(baseline.stats.comm.recoveries, 0u) << cell;

      for (const FaultPlan& plan : kPlans) {
        const std::string where =
            cell + (plan.kind == FaultKind::kAtBarrier ? " at-barrier"
                                                       : " after-release");
        RuntimeConfig fcfg = cfg;
        fcfg.fault = plan;
        auto app = MakeApp(s.app, s.dataset);
        const AppRun run = Execute(*app, fcfg);
        if (plan.kind == FaultKind::kAfterRelease && s.rel_tol > 0.0) {
          // Lock-scheduled apps distribute work by host timing: the victim
          // may close fewer non-empty intervals than the trigger (TSP's
          // queue can starve a worker), so the plan fires at most once.
          EXPECT_LE(run.stats.comm.recoveries, 1u) << where;
        } else {
          EXPECT_EQ(run.stats.comm.recoveries, 1u) << where;
        }
        if (s.rel_tol == 0.0) {
          EXPECT_EQ(run.result, baseline.result) << where;
        } else {
          EXPECT_NEAR(run.result / baseline.result, 1.0, s.rel_tol) << where;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, RecoveryConformanceTest,
    ::testing::ValuesIn(ConformanceScenarios()),
    [](const ::testing::TestParamInfo<ConformanceScenario>& info) {
      std::string name = info.param.app;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- determinism -------------------------------------------------------------
//
// The same plan — seed-derived victim included — twice must reproduce the
// run bit for bit: checksum, full modelled state, recovery telemetry.
// Swept over backend × unit size × gc cadence.
TEST(RecoveryDeterminism, SameSeedTwiceIsBitIdentical) {
  for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
    for (const AggPoint& agg : kAggs) {
      for (int gc : {1, 4}) {
        for (FaultPlan plan :
             {FaultPlan::AtBarrier(-1, 2, 0x5eedULL),
              FaultPlan::AfterRelease(-1, 2, 0x5eedULL)}) {
          const std::string where =
              std::string(backend == BackendKind::kLrc ? "LRC" : "HLRC") +
              " @ " + agg.label + " gc=" + std::to_string(gc) +
              (plan.kind == FaultKind::kAtBarrier ? " at-barrier"
                                                  : " after-release");
          RuntimeConfig cfg;
          cfg.num_procs = 4;
          cfg.aggregation = agg.mode;
          cfg.pages_per_unit = agg.ppu;
          cfg.backend = backend;
          cfg.gc_interval_barriers = gc;
          cfg.fault = plan;

          auto app_a = MakeApp("Jacobi", "tiny");
          const AppRun a = Execute(*app_a, cfg);
          auto app_b = MakeApp("Jacobi", "tiny");
          const AppRun b = Execute(*app_b, cfg);

          EXPECT_EQ(a.stats.comm.recoveries, 1u) << where;
          EXPECT_GT(a.stats.recovery_modelled_ns, 0) << where;
          EXPECT_EQ(a.result, b.result) << where;
          ExpectModelledStateEqual(a.stats, b.stats, where);
        }
      }
    }
  }
}

// The seed drives the victim choice deterministically, uniform over ALL
// processors — proc 0 is a legal pick (its coordinator roles fail over).
TEST(RecoveryDeterminism, SeedDerivedVictimIsStableOverAllProcs) {
  bool saw_zero = false;
  bool saw_nonzero = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const FaultPlan p =
        ResolveFaultPlan(FaultPlan::AtBarrier(-1, 1, seed), 8);
    const FaultPlan q =
        ResolveFaultPlan(FaultPlan::AtBarrier(-1, 1, seed), 8);
    EXPECT_EQ(p.victim, q.victim) << seed;
    EXPECT_GE(p.victim, 0) << seed;
    EXPECT_LT(p.victim, 8) << seed;
    (p.victim == 0 ? saw_zero : saw_nonzero) = true;
  }
  EXPECT_TRUE(saw_zero) << "64 seeds never picked proc 0: not uniform";
  EXPECT_TRUE(saw_nonzero);
  // An explicit victim passes through untouched.
  EXPECT_EQ(ResolveFaultPlan(FaultPlan::AtBarrier(3, 1, 42), 8).victim, 3);

  // Schedule resolution: event 0 of a seeded schedule reproduces the
  // single-plan derivation (back-compat for recorded seeds), and resolved
  // schedules are well-formed — no duplicate (victim, kind, point).
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    FaultSchedule s;
    s.events.push_back(FaultPlan::AtBarrier(-1, 1, seed));
    const FaultSchedule r = ResolveFaultSchedule(s, 8);
    EXPECT_EQ(r.events[0].victim,
              ResolveFaultPlan(FaultPlan::AtBarrier(-1, 1, seed), 8).victim)
        << seed;

    const FaultSchedule t = ResolveFaultSchedule(FaultSchedule::FromSeed(seed), 4);
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        const FaultPlan& a = t.events[i];
        const FaultPlan& b = t.events[j];
        EXPECT_FALSE(a.victim == b.victim && a.kind == b.kind &&
                     (a.kind == FaultKind::kAtBarrier
                          ? a.barrier == b.barrier
                          : a.release == b.release))
            << "seed " << seed << " events " << j << "," << i;
      }
    }
  }
}

// --- coordinator failover ----------------------------------------------------
//
// Proc 0 hosts the barrier manager, the serial GC pass, the checkpoint
// watermark and the HLRC prune; killing it must hand those roles to the
// lowest surviving rank for the crash barrier and hand them back after
// the rebuild — with the shared results still bit-identical to the
// failure-free run.
TEST(CoordinatorFailover, ProcZeroCrashMatchesFailureFree) {
  for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
    const std::string where =
        backend == BackendKind::kLrc ? "LRC" : "HLRC";
    const EpochOutcome fault =
        RunEpochs(backend, FaultPlan::AtBarrier(0, 3));
    const EpochOutcome clean = RunEpochs(backend, FaultSchedule{});
    ExpectEpochValues(fault, where + " proc-0 at-barrier");
    EXPECT_EQ(fault.victim_saw, clean.victim_saw) << where;
    EXPECT_EQ(fault.peer_saw, clean.peer_saw) << where;
    EXPECT_EQ(fault.stats.comm.recoveries, 1u) << where;
    EXPECT_EQ(fault.stats.recovery_events, 1) << where;
  }
}

TEST(CoordinatorFailover, ProcZeroAfterReleaseCrashRecovers) {
  // After-release crashes never involve the barrier manager mid-flight;
  // this pins the proc-0 rebuild path itself (its own archive feeds the
  // replay under LRC).
  for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
    const EpochOutcome fault =
        RunEpochs(backend, FaultPlan::AfterRelease(0, 2));
    const EpochOutcome clean = RunEpochs(backend, FaultSchedule{});
    EXPECT_EQ(fault.victim_saw, clean.victim_saw);
    EXPECT_EQ(fault.peer_saw, clean.peer_saw);
    EXPECT_EQ(fault.stats.comm.recoveries, 1u);
  }
}

// --- HLRC home-crash re-homing -----------------------------------------------
//
// Every armed HLRC victim is also a home under the pure block map, so its
// units are reconstructed from surviving sharers and re-homed through the
// override table; survivors (and the rebuilt victim) learn the new map
// lazily, paying the modelled timeout + retransmit on their first home
// contact after the re-home batch applies.
TEST(HlrcHomeCrash, RehomedUnitsChargeRetransmits) {
  const EpochOutcome fault =
      RunEpochs(BackendKind::kHlrc, FaultPlan::AtBarrier(1, 3));
  const EpochOutcome clean = RunEpochs(BackendKind::kHlrc, FaultSchedule{});
  ExpectEpochValues(fault, "hlrc home crash");
  EXPECT_EQ(fault.victim_saw, clean.victim_saw);
  EXPECT_EQ(fault.peer_saw, clean.peer_saw);
  EXPECT_EQ(fault.stats.comm.recoveries, 1u);
  // The epoch program keeps flushing after the crash barrier, so at least
  // one survivor hits a moved home and pays the retransmit.
  EXPECT_GT(fault.stats.comm.recovery_retransmits, 0u);
  EXPECT_GT(fault.stats.comm.recovery_retransmit_bytes, 0u);
  EXPECT_EQ(clean.stats.comm.recovery_retransmits, 0u);
}

// --- multi-fault schedules ---------------------------------------------------

TEST(MultiFaultSchedules, SameVictimTwiceRecoversTwice) {
  // Satellite 6 regression: the per-event fired flags make re-arming a
  // recovered victim race-free — the second event must fire exactly once,
  // after (and only after) the first recovery completed.
  FaultSchedule sched;
  sched.events = {FaultPlan::AtBarrier(1, 2), FaultPlan::AtBarrier(1, 5)};
  for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
    const std::string where =
        backend == BackendKind::kLrc ? "LRC" : "HLRC";
    const EpochOutcome fault = RunEpochs(backend, sched);
    const EpochOutcome clean = RunEpochs(backend, FaultSchedule{});
    ExpectEpochValues(fault, where + " same victim twice");
    EXPECT_EQ(fault.victim_saw, clean.victim_saw) << where;
    EXPECT_EQ(fault.peer_saw, clean.peer_saw) << where;
    EXPECT_EQ(fault.stats.comm.recoveries, 2u) << where;
    EXPECT_EQ(fault.stats.recovery_events, 2) << where;
  }
}

TEST(MultiFaultSchedules, ThreeVictimsMixedKindsAcrossBackends) {
  FaultSchedule sched;
  sched.events = {FaultPlan::AtBarrier(0, 2), FaultPlan::AfterRelease(1, 4),
                  FaultPlan::AtBarrier(2, 6)};
  for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
    const std::string where =
        backend == BackendKind::kLrc ? "LRC" : "HLRC";
    const EpochOutcome fault = RunEpochs(backend, sched);
    const EpochOutcome clean = RunEpochs(backend, FaultSchedule{});
    ExpectEpochValues(fault, where + " three victims");
    EXPECT_EQ(fault.victim_saw, clean.victim_saw) << where;
    EXPECT_EQ(fault.peer_saw, clean.peer_saw) << where;
    EXPECT_EQ(fault.stats.comm.recoveries, 3u) << where;
    EXPECT_EQ(fault.stats.recovery_events, 3) << where;
    EXPECT_GT(fault.stats.recovery_modelled_ns, 0) << where;
  }
}

// --- seeded torture sweep ----------------------------------------------------
//
// ≥32 random schedules (1–3 faults, any victims, both crash kinds) × both
// protocol backends × 3 deterministic apps: the post-recovery checksum
// must equal the failure-free run and the same seed twice must be
// bit-identical, recovery telemetry included.
TEST(RecoveryTorture, RandomSchedulesRecoverBitIdentical) {
  const char* kTortureApps[] = {"Jacobi", "MGS", "Shallow"};
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const std::string app = kTortureApps[seed % 3];
    for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
      const std::string where =
          app + " seed " + std::to_string(seed) +
          (backend == BackendKind::kLrc ? " LRC" : " HLRC");
      RuntimeConfig cfg;
      cfg.num_procs = 4;
      cfg.backend = backend;

      auto clean_app = MakeApp(app, "tiny");
      const AppRun clean = Execute(*clean_app, cfg);

      cfg.fault = FaultSchedule::FromSeed(seed);
      auto app_a = MakeApp(app, "tiny");
      const AppRun a = Execute(*app_a, cfg);
      auto app_b = MakeApp(app, "tiny");
      const AppRun b = Execute(*app_b, cfg);

      // An event whose trigger point lies beyond the app's run never
      // fires; whatever DID fire must have recovered cleanly.
      EXPECT_EQ(a.result, clean.result) << where;
      EXPECT_EQ(a.result, b.result) << where;
      ExpectModelledStateEqual(a.stats, b.stats, where);
      EXPECT_LE(a.stats.comm.recoveries, cfg.fault.events.size()) << where;
    }
  }
}

// --- validation --------------------------------------------------------------

TEST(RecoveryValidation, LrcWithoutGcFailsFastWithClearError) {
  RuntimeConfig cfg;
  cfg.num_procs = 4;
  cfg.gc_interval_barriers = 0;  // no GC → no canonical-base checkpoints
  cfg.fault = FaultPlan::AtBarrier(1, 1);
  try {
    Runtime rt(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no checkpoint available"),
              std::string::npos)
        << e.what();
  }
}

TEST(RecoveryValidation, HlrcWithoutGcAcceptsArmedSchedules) {
  // Satellite 1: the no-checkpoint rejection is LRC-only.  HLRC recovery
  // reads home images, not canonical-base checkpoints, so an armed
  // schedule with the archive GC disabled must be accepted — and recover.
  const EpochOutcome fault = RunEpochs(
      BackendKind::kHlrc, FaultPlan::AtBarrier(1, 3), /*gc_interval=*/0);
  const EpochOutcome clean =
      RunEpochs(BackendKind::kHlrc, FaultSchedule{}, /*gc_interval=*/0);
  ExpectEpochValues(fault, "hlrc gc=0");
  EXPECT_EQ(fault.victim_saw, clean.victim_saw);
  EXPECT_EQ(fault.peer_saw, clean.peer_saw);
  EXPECT_EQ(fault.stats.comm.recoveries, 1u);
}

TEST(RecoveryValidation, ReferenceBackendRejectsFaultPlans) {
  RuntimeConfig cfg;
  cfg.num_procs = 4;
  cfg.backend = BackendKind::kReference;
  cfg.fault = FaultPlan::AtBarrier(1, 1);
  EXPECT_THROW(Runtime rt(cfg), std::invalid_argument);
}

// --- telemetry gating --------------------------------------------------------
//
// PR 5's zero-entry skip rule: recovery counters appear in ToString only
// when a fault actually fired, so no-fault output is byte-identical to
// builds that predate the subsystem.
TEST(RecoveryTelemetry, EmittedOnlyWhenAFaultFired) {
  const EpochOutcome clean = RunEpochs(BackendKind::kLrc, FaultPlan{});
  EXPECT_EQ(clean.stats.ToString().find("recovery"), std::string::npos);
  EXPECT_EQ(clean.stats.comm.ToString().find("recovery"), std::string::npos);
  EXPECT_EQ(clean.stats.recovery_modelled_ns, 0);
  EXPECT_EQ(clean.stats.recovery_wall_ns, 0u);

  const EpochOutcome fault =
      RunEpochs(BackendKind::kLrc, FaultPlan::AtBarrier(1, 3));
  EXPECT_NE(fault.stats.ToString().find("recovery: events 1"),
            std::string::npos);
  EXPECT_NE(fault.stats.comm.ToString().find("recovery: episodes=1"),
            std::string::npos);
  // Recovery messages count toward the totals but stay outside the
  // reader-side delivered-byte taxonomy.
  EXPECT_EQ(fault.stats.comm.total_data_bytes(),
            fault.stats.comm.delivered_data_bytes);
}

}  // namespace
}  // namespace dsm::apps

// Application correctness: each program must compute the same answer on
// 1 processor (no protocol) and on 8 processors, at every consistency-unit
// configuration (4 K / 8 K / 16 K / dynamic).  This is the end-to-end check
// that the LRC + multiple-writer protocol preserves program semantics at
// every aggregation setting.
#include <gtest/gtest.h>

#include "apps/registry.h"
#include "apps/tsp.h"

namespace dsm::apps {
namespace {

struct ConfigCase {
  const char* label;
  AggregationMode mode;
  int pages_per_unit;
};

const ConfigCase kConfigs[] = {
    {"4K", AggregationMode::kStatic, 1},
    {"8K", AggregationMode::kStatic, 2},
    {"16K", AggregationMode::kStatic, 4},
    {"Dyn", AggregationMode::kDynamic, 1},
};

RuntimeConfig MakeConfig(const ConfigCase& c, int nprocs = 8) {
  RuntimeConfig cfg;
  cfg.num_procs = nprocs;
  cfg.aggregation = c.mode;
  cfg.pages_per_unit = c.pages_per_unit;
  return cfg;
}

class AppConfigTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

// App names paired with the index into kConfigs.
const char* const kDeterministicApps[] = {
    "Jacobi", "MGS", "Shallow", "Barnes", "ILINK",
};

TEST_P(AppConfigTest, ParallelMatchesSequential) {
  const auto& [app_name, config_idx] = GetParam();
  const ConfigCase& cc = kConfigs[config_idx];

  auto seq_app = MakeApp(app_name, "tiny");
  const AppRun seq = ExecuteSequential(*seq_app, MakeConfig(cc));

  auto par_app = MakeApp(app_name, "tiny");
  const AppRun par = Execute(*par_app, MakeConfig(cc));

  // These six programs partition writes disjointly and reduce in fixed
  // order, so parallel results are bit-identical to sequential.
  EXPECT_EQ(seq.result, par.result)
      << app_name << " @ " << cc.label << ": seq=" << seq.result
      << " par=" << par.result;
  // The parallel run must actually have exercised the protocol.
  EXPECT_GT(par.stats.net.total_messages(), 0u);
  EXPECT_EQ(seq.stats.net.total_messages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsAllConfigs, AppConfigTest,
    ::testing::Combine(::testing::ValuesIn(kDeterministicApps),
                       ::testing::Range(0, 4)),
    [](const auto& info) {
      std::string name = std::string(std::get<0>(info.param)) + "_" +
                         kConfigs[std::get<1>(info.param)].label;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// 3D-FFT reduces its checksum through per-processor partials, so the
// floating-point grouping differs between 1 and 8 processors; the values
// agree to rounding error.
class FftConfigTest : public ::testing::TestWithParam<int> {};

TEST_P(FftConfigTest, ParallelMatchesSequentialWithinRounding) {
  const ConfigCase& cc = kConfigs[GetParam()];
  auto seq_app = MakeApp("3D-FFT", "tiny");
  const AppRun seq = ExecuteSequential(*seq_app, MakeConfig(cc));
  auto par_app = MakeApp("3D-FFT", "tiny");
  const AppRun par = Execute(*par_app, MakeConfig(cc));
  ASSERT_NE(seq.result, 0.0);
  EXPECT_NEAR(par.result / seq.result, 1.0, 1e-12) << "3D-FFT @ " << cc.label;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, FftConfigTest, ::testing::Range(0, 4),
                         [](const auto& info) {
                           return std::string(kConfigs[info.param].label);
                         });

// Water accumulates forces under locks; addition order varies with the
// interleaving, so parallel matches sequential only up to fp tolerance.
class WaterConfigTest : public ::testing::TestWithParam<int> {};

TEST_P(WaterConfigTest, ParallelMatchesSequentialWithinTolerance) {
  const ConfigCase& cc = kConfigs[GetParam()];
  auto seq_app = MakeApp("Water", "tiny");
  const AppRun seq = ExecuteSequential(*seq_app, MakeConfig(cc));
  auto par_app = MakeApp("Water", "tiny");
  const AppRun par = Execute(*par_app, MakeConfig(cc));
  ASSERT_NE(seq.result, 0.0);
  EXPECT_NEAR(par.result / seq.result, 1.0, 1e-3)
      << "Water @ " << cc.label;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, WaterConfigTest, ::testing::Range(0, 4),
                         [](const auto& info) {
                           return std::string(kConfigs[info.param].label);
                         });

// TSP is a branch-and-bound search: the explored node set is
// schedule-dependent but the optimum is not, and must match brute force.
class TspConfigTest : public ::testing::TestWithParam<int> {};

TEST_P(TspConfigTest, FindsOptimalTour) {
  const ConfigCase& cc = kConfigs[GetParam()];
  const TspParams params = TspDataset("tiny");
  const double optimal = Tsp::BruteForce(params);

  auto app = MakeApp("TSP", "tiny");
  const AppRun par = Execute(*app, MakeConfig(cc));
  EXPECT_NEAR(par.result, optimal, 1e-3) << "TSP @ " << cc.label;
}

TEST_P(TspConfigTest, SequentialFindsOptimalTour) {
  const ConfigCase& cc = kConfigs[GetParam()];
  const TspParams params = TspDataset("tiny");
  const double optimal = Tsp::BruteForce(params);
  auto app = MakeApp("TSP", "tiny");
  const AppRun seq = ExecuteSequential(*app, MakeConfig(cc));
  EXPECT_NEAR(seq.result, optimal, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, TspConfigTest, ::testing::Range(0, 4),
                         [](const auto& info) {
                           return std::string(kConfigs[info.param].label);
                         });

// Registry sanity.
TEST(Registry, AllSpecsConstructible) {
  for (const AppSpec& spec : AllSpecs()) {
    auto app = MakeApp(spec.app, spec.dataset);
    ASSERT_NE(app, nullptr);
    EXPECT_EQ(app->name(), spec.app);
    EXPECT_EQ(app->dataset(), spec.dataset);
    EXPECT_GT(app->heap_bytes(), 0u);
  }
}

TEST(Registry, UnknownAppThrows) {
  EXPECT_THROW(MakeApp("NoSuchApp", "x"), CheckError);
  EXPECT_THROW(MakeApp("Jacobi", "no-such-size"), CheckError);
}

}  // namespace
}  // namespace dsm::apps

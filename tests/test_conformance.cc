// Cross-backend conformance harness: every application in the registry's
// conformance catalogue runs under {4 K static, 16 K static, dynamic}
// aggregation × {LRC protocol, home-based LRC, sequentially consistent
// reference} and must produce the same checksum in every cell.  The
// reference backend executes the identical Run body on one shared image
// with no twins, no diffs, and no write notices, so any divergence is a
// protocol bug, not an application bug.  Each cell's RunStats must also
// satisfy the accounting invariants (the safety net future performance
// PRs run against).
//
// Setting DSM_BACKEND=lrc|hlrc|ref in the environment restricts the sweep
// to one backend's three aggregation cells — CI uses it to fail fast on a
// broken backend before running the full matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "core/vector_clock.h"

namespace dsm::apps {
namespace {

struct Cell {
  AggregationMode mode;
  int pages_per_unit;
  BackendKind backend;
};

std::vector<BackendKind> SweepBackends() {
  const char* env = std::getenv("DSM_BACKEND");
  if (env == nullptr || env[0] == '\0') {
    return {BackendKind::kLrc, BackendKind::kHlrc, BackendKind::kReference};
  }
  const std::string v = env;
  if (v == "lrc") return {BackendKind::kLrc};
  if (v == "hlrc") return {BackendKind::kHlrc};
  if (v == "ref") return {BackendKind::kReference};
  ADD_FAILURE() << "unknown DSM_BACKEND value '" << v
                << "' (expected lrc|hlrc|ref)";
  return {BackendKind::kLrc};
}

std::vector<Cell> SweepCells() {
  std::vector<Cell> cells;
  const struct {
    AggregationMode mode;
    int ppu;
  } aggs[] = {
      {AggregationMode::kStatic, 1},   // 4 K
      {AggregationMode::kStatic, 4},   // 16 K
      {AggregationMode::kDynamic, 1},  // Dyn
  };
  const std::vector<BackendKind> backends = SweepBackends();
  for (const auto& a : aggs) {
    for (BackendKind b : backends) {
      cells.push_back({a.mode, a.ppu, b});
    }
  }
  return cells;
}

RuntimeConfig CellConfig(const Cell& cell, int num_procs) {
  RuntimeConfig cfg;
  cfg.num_procs = num_procs;
  cfg.aggregation = cell.mode;
  cfg.pages_per_unit = cell.pages_per_unit;
  cfg.backend = cell.backend;
  return cfg;
}

// The golden checksum anchors program semantics across toolchains, where
// FP contraction may perturb low-order bits; protocol correctness is
// enforced by the much stronger cross-cell comparison below.  The
// max(|checksum|, 1.0) floor matters for near-zero goldens (MGS's
// checksum is an orthogonality residual ~1e-6 whose exact value is not
// portable across toolchains): there the check degrades, deliberately, to
// "the residual stays in the near-zero band" — a broken orthogonalization
// produces residuals orders of magnitude above 1e-3.
void ExpectMatchesGolden(const ConformanceScenario& s, double actual,
                         const std::string& where) {
  const double slack = std::max(s.rel_tol, 1e-3);
  EXPECT_LE(std::abs(actual - s.checksum),
            std::max(std::abs(s.checksum), 1.0) * slack)
      << where << ": result " << actual << " vs golden " << s.checksum;
}

void ExpectStatsSane(const ConformanceScenario& s, const Cell& cell,
                     const RunStats& stats, const std::string& where) {
  // Per-node virtual times: one per processor, none past the critical path.
  ASSERT_EQ(stats.node_times.size(), static_cast<std::size_t>(s.num_procs))
      << where;
  const VirtualNanos max_node =
      *std::max_element(stats.node_times.begin(), stats.node_times.end());
  EXPECT_EQ(stats.exec_time, max_node) << where;
  EXPECT_GT(stats.exec_time, 0) << where;

  // Accounting invariant: the useful/useless split must cover every word
  // delivered — useful + piggybacked useless + useless-message data equals
  // the independently tallied delivered payload.
  EXPECT_EQ(stats.comm.total_data_bytes(), stats.comm.delivered_data_bytes)
      << where;

  // Exchanges are request/response pairs.
  EXPECT_EQ((stats.comm.useful_messages + stats.comm.useless_messages) % 2,
            0u)
      << where;

  if (cell.backend == BackendKind::kReference) {
    // Sequential consistency on one image: nothing crosses the wire.
    EXPECT_EQ(stats.comm.total_messages(), 0u) << where;
    EXPECT_EQ(stats.net.total_messages(), 0u) << where;
    EXPECT_EQ(stats.comm.delivered_data_bytes, 0u) << where;
  } else if (cell.backend == BackendKind::kHlrc) {
    // Home-based LRC: releases flush to homes, faults fetch whole units;
    // the diff-chase machinery must stay cold.
    EXPECT_GT(stats.net.total_messages(), 0u) << where;
    EXPECT_GT(stats.comm.sync_messages, 0u) << where;
    // Every sharing app fetches from some remote home.  Flush counters
    // cover remote homes only, and an app whose writers happen to own
    // their home units (MGS's cyclic vector layout at 4 K) legitimately
    // flushes nothing across the wire — perfect home affinity.
    EXPECT_GT(stats.comm.home_fetches, 0u) << where;
    EXPECT_EQ(stats.net.messages(MessageKind::kHomeFlush),
              stats.net.messages(MessageKind::kHomeFlushAck))
        << where;
    EXPECT_EQ(stats.net.messages(MessageKind::kHomeFetch),
              stats.net.messages(MessageKind::kHomeFetchReply))
        << where;
    EXPECT_EQ(stats.net.messages(MessageKind::kDiffRequest), 0u) << where;
    EXPECT_EQ(stats.net.messages(MessageKind::kDiffResponse), 0u) << where;
    // Every delivered byte came out of a whole-unit home fetch, and the
    // useful/useless split must still cover all of them (checked above).
    EXPECT_EQ(stats.comm.home_fetch_bytes, stats.comm.delivered_data_bytes)
        << where;
  } else {
    // Every conformance app shares data, so a multi-processor LRC run must
    // actually exercise the protocol.
    EXPECT_GT(stats.net.total_messages(), 0u) << where;
    EXPECT_GT(stats.comm.sync_messages, 0u) << where;
    // Physical diff traffic exists iff semantic exchanges were recorded.
    EXPECT_EQ(stats.net.messages(MessageKind::kDiffRequest),
              stats.net.messages(MessageKind::kDiffResponse))
        << where;
    // Home traffic belongs to the HLRC backend alone.
    EXPECT_EQ(stats.comm.home_flushes, 0u) << where;
    EXPECT_EQ(stats.comm.home_fetches, 0u) << where;
    EXPECT_EQ(stats.comm.home_flush_messages, 0u) << where;
    EXPECT_EQ(stats.net.messages(MessageKind::kHomeFetch), 0u) << where;
    EXPECT_EQ(stats.net.messages(MessageKind::kHomeFlush), 0u) << where;
  }
}

class ConformanceTest
    : public ::testing::TestWithParam<ConformanceScenario> {};

TEST_P(ConformanceTest, AllCellsAgree) {
  const ConformanceScenario& s = GetParam();

  struct CellResult {
    std::string label;
    double result;
  };
  std::vector<CellResult> results;

  for (const Cell& cell : SweepCells()) {
    const RuntimeConfig cfg = CellConfig(cell, s.num_procs);
    const std::string where = s.app + " @ " + cfg.UnitLabel() + "/" +
                              cfg.BackendLabel();
    auto app = MakeApp(s.app, s.dataset);
    const AppRun run = Execute(*app, cfg);
    ExpectStatsSane(s, cell, run.stats, where);
    ExpectMatchesGolden(s, run.result, where);
    results.push_back({where, run.result});
  }

  // Cross-cell agreement: the strong check.  Bit-deterministic apps must
  // agree exactly between the LRC protocol and the reference oracle at
  // every aggregation setting; scheduling-tolerant apps within rel_tol.
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (s.rel_tol == 0.0) {
      EXPECT_EQ(results[i].result, results[0].result)
          << results[i].label << " diverged from " << results[0].label;
    } else {
      EXPECT_NEAR(results[i].result / results[0].result, 1.0, s.rel_tol)
          << results[i].label << " vs " << results[0].label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, ConformanceTest,
    ::testing::ValuesIn(ConformanceScenarios()),
    [](const ::testing::TestParamInfo<ConformanceScenario>& info) {
      std::string name = info.param.app;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ConformanceCatalogue, CoversTheSweepFloor) {
  // The harness promises ≥ 11 apps × 3 aggregation configs × 3 backends
  // (3 aggregation cells per backend when DSM_BACKEND restricts the
  // sweep to one): the paper's 8, Fuzz, plus the KV request workload and
  // the Life stencil.
  EXPECT_GE(ConformanceScenarios().size(), 11u);
  EXPECT_EQ(SweepCells().size(), 3u * SweepBackends().size());
}

// --- Fuzz at the wider span ---------------------------------------------------

TEST(FuzzWide, AllBackendsAgreeBitForBit) {
  // The "wide" dataset spreads the random mix over a 64-page span (16
  // full 16 K units): a second fuzz shape, kept out of the per-app
  // matrix for time but still pinned across every backend.
  double first = 0.0;
  for (BackendKind backend :
       {BackendKind::kReference, BackendKind::kLrc, BackendKind::kHlrc}) {
    RuntimeConfig cfg;
    cfg.num_procs = 4;
    cfg.backend = backend;
    auto app = MakeApp("Fuzz", "wide");
    const AppRun run = Execute(*app, cfg);
    if (backend == BackendKind::kReference) {
      first = run.result;
    } else {
      EXPECT_EQ(run.result, first) << cfg.BackendLabel();
    }
  }
  EXPECT_NE(first, 0.0);
}

// --- Cluster-scaling conformance (DESIGN.md §8) ------------------------------

// The protocol must stay exact when the processor count leaves the paper's
// native 8: an odd count (3), a two-word sharer mask still in the dense
// clock regime (16), and a 64-way cell that exercises the sparse clock
// encoding, the sharer directory's virgin store, and the HLRC min-seen
// prune at scale.  Jacobi (barrier) and Fuzz (locks + barriers) run under
// every backend and must reproduce the same-procs reference checksum
// bit for bit; the word-accounting invariant has to survive the scale-up
// in every protocol cell.  CI runs this suite as its fail-fast slice
// (--gtest_filter='*ProcScaling*') before the full matrix.
class ProcScalingTest : public ::testing::TestWithParam<int> {};

TEST_P(ProcScalingTest, JacobiAndFuzzMatchReference) {
  const int procs = GetParam();
  // Jacobi keeps the conformance "tiny" grid; Fuzz uses the short "scale"
  // mix — its all-to-all interleaved sharing is ~quadratic in procs under
  // LRC, and the checksum is anchored to the same-procs reference below,
  // not to a golden.
  const struct {
    const char* name;
    const char* dataset;
  } apps[] = {{"Jacobi", "tiny"}, {"Fuzz", "scale"}};
  for (const auto& [name, dataset] : apps) {
    double reference = 0.0;
    for (BackendKind backend :
         {BackendKind::kReference, BackendKind::kLrc, BackendKind::kHlrc}) {
      RuntimeConfig cfg;
      cfg.num_procs = procs;
      cfg.backend = backend;
      auto app = MakeApp(name, dataset);
      const AppRun run = Execute(*app, cfg);
      const std::string where = std::string(name) + " @ p" +
                                std::to_string(procs) + "/" +
                                cfg.BackendLabel();
      if (backend == BackendKind::kReference) {
        reference = run.result;
        EXPECT_NE(run.result, 0.0) << where;
        continue;
      }
      EXPECT_EQ(run.result, reference) << where;
      EXPECT_EQ(run.stats.comm.total_data_bytes(),
                run.stats.comm.delivered_data_bytes)
          << where;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, ProcScalingTest, ::testing::Values(3, 16, 64),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

// Sparse-clock wire accounting (DESIGN.md §8): on a low-sharing barrier
// app the per-notice clock cost must track the number of distinct writer
// frontiers, not the cluster size.  Jacobi's clocks advance in lockstep,
// so the sparse bytes per notice stay near-flat from 8 to 64 processors
// while the dense-equivalent bytes grow with nprocs.
TEST(SparseClockTelemetry, NoticeBytesTrackFrontiersNotClusterSize) {
  auto per_notice = [](int procs) {
    RuntimeConfig cfg;
    cfg.num_procs = procs;
    auto app = MakeApp("Jacobi", "tiny");
    const AppRun run = Execute(*app, cfg);
    const CommBreakdown& c = run.stats.comm;
    EXPECT_GT(c.notice_clock_bytes, 0u) << "p" << procs;
    // The sparse form is never worse than the dense fallback.
    EXPECT_LE(c.notice_clock_bytes, c.notice_clock_bytes_dense)
        << "p" << procs;
    const double notices =
        static_cast<double>(c.notice_clock_bytes_dense) /
        static_cast<double>(VectorClock::DenseEncodedBytes(procs));
    return static_cast<double>(c.notice_clock_bytes) / notices;
  };

  const double sparse8 = per_notice(8);
  const double sparse64 = per_notice(64);
  // Dense cost per notice is 36 B at p8 vs 260 B at p64 (7.2x); the
  // sparse cost must stay within a small constant of the 8-proc figure.
  EXPECT_LT(sparse64, 2.0 * sparse8);
}

// --- HLRC home-assignment knob ----------------------------------------------

TEST(HlrcHomeAssignment, BlockSizeNeverChangesResults) {
  // hlrc_home_block_units moves data between homes (different message
  // targets and combining) but must never change what a program computes.
  const ConformanceScenario jacobi = ConformanceScenarios().front();
  ASSERT_EQ(jacobi.app, "Jacobi");
  double first = 0.0;
  for (int block : {1, 2, 8}) {
    RuntimeConfig cfg;
    cfg.num_procs = jacobi.num_procs;
    cfg.backend = BackendKind::kHlrc;
    cfg.hlrc_home_block_units = block;
    auto app = MakeApp(jacobi.app, jacobi.dataset);
    const AppRun run = Execute(*app, cfg);
    if (block == 1) {
      first = run.result;
      ExpectMatchesGolden(jacobi, run.result, "HLRC block=1");
    } else {
      EXPECT_EQ(run.result, first) << "block=" << block;
    }
    EXPECT_GT(run.stats.comm.home_flushes, 0u) << "block=" << block;
  }
}

// --- Runtime misuse and error propagation ----------------------------------

TEST(RuntimeMisuse, SecondRunThrows) {
  RuntimeConfig cfg;
  cfg.num_procs = 2;
  cfg.heap_bytes = 1u << 20;
  Runtime rt(cfg);
  rt.Run([](Proc& p) { p.Barrier(); });
  EXPECT_THROW(rt.Run([](Proc&) {}), CheckError);
}

TEST(RuntimeMisuse, BodyExceptionPropagatesToCaller) {
  for (BackendKind backend : {BackendKind::kLrc, BackendKind::kReference}) {
    RuntimeConfig cfg;
    cfg.num_procs = 4;
    cfg.heap_bytes = 1u << 20;
    cfg.backend = backend;
    Runtime rt(cfg);
    auto a = rt.Alloc<int>(64, "a");
    EXPECT_THROW(
        rt.Run([&](Proc& p) {
          p.Write(a, static_cast<std::size_t>(p.id()), p.id());
          // Every proc throws after its write; the barrier is never
          // reached, and exactly one exception must surface.
          throw std::runtime_error("body failure");
        }),
        std::runtime_error);
  }
}

TEST(RuntimeMisuse, SingleProcBodyExceptionPropagates) {
  RuntimeConfig cfg;
  cfg.num_procs = 1;
  cfg.allow_sequential = true;
  cfg.heap_bytes = 1u << 20;
  Runtime rt(cfg);
  EXPECT_THROW(rt.Run([](Proc&) { throw std::logic_error("boom"); }),
               std::logic_error);
}

}  // namespace
}  // namespace dsm::apps

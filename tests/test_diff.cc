// Twin/diff machinery: unit tests plus randomized property tests (the
// diff is the integrity-critical core of the multiple-writer protocol).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/rng.h"
#include "mem/diff.h"

namespace dsm {
namespace {

std::vector<std::byte> Bytes(const std::vector<std::uint32_t>& words) {
  std::vector<std::byte> out(words.size() * kWordBytes);
  std::memcpy(out.data(), words.data(), out.size());
  return out;
}

TEST(Diff, EmptyWhenIdentical) {
  auto a = Bytes({1, 2, 3, 4});
  Diff d = Diff::Create(a, a);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.payload_words(), 0u);
  EXPECT_EQ(d.EncodedBytes(), Diff::kHeaderBytes);
}

TEST(Diff, SingleWordChange) {
  auto twin = Bytes({1, 2, 3, 4});
  auto cur = Bytes({1, 9, 3, 4});
  Diff d = Diff::Create(twin, cur);
  ASSERT_EQ(d.num_runs(), 1u);
  EXPECT_EQ(d.runs()[0].word_offset, 1u);
  EXPECT_EQ(d.runs()[0].word_count, 1u);
  EXPECT_EQ(d.payload_word(0), 9u);
}

TEST(Diff, AdjacentChangesCoalesceIntoOneRun) {
  auto twin = Bytes({1, 2, 3, 4, 5});
  auto cur = Bytes({1, 7, 8, 9, 5});
  Diff d = Diff::Create(twin, cur);
  ASSERT_EQ(d.num_runs(), 1u);
  EXPECT_EQ(d.runs()[0].word_offset, 1u);
  EXPECT_EQ(d.runs()[0].word_count, 3u);
}

TEST(Diff, DisjointChangesMakeSeparateRuns) {
  auto twin = Bytes({1, 2, 3, 4, 5, 6});
  auto cur = Bytes({9, 2, 3, 8, 5, 7});
  Diff d = Diff::Create(twin, cur);
  EXPECT_EQ(d.num_runs(), 3u);
  EXPECT_EQ(d.payload_words(), 3u);
}

TEST(Diff, ApplyReconstructsModifications) {
  auto twin = Bytes({10, 20, 30, 40});
  auto cur = Bytes({11, 20, 33, 40});
  Diff d = Diff::Create(twin, cur);
  auto target = twin;  // an unmodified copy at another node
  d.Apply(target);
  EXPECT_EQ(target, cur);
}

TEST(Diff, ApplyPreservesConcurrentDisjointWrites) {
  // Two writers modify disjoint words of one page; applying writer A's
  // diff onto writer B's copy must keep B's modifications.
  auto base = Bytes({0, 0, 0, 0});
  auto a = Bytes({5, 0, 0, 0});
  auto b = Bytes({0, 0, 0, 7});
  Diff da = Diff::Create(base, a);
  auto merged = b;
  da.Apply(merged);
  EXPECT_EQ(merged, Bytes({5, 0, 0, 7}));
}

TEST(Diff, ForEachWordEnumeratesAllModifiedWords) {
  auto twin = Bytes({0, 0, 0, 0, 0, 0});
  auto cur = Bytes({1, 1, 0, 0, 1, 0});
  Diff d = Diff::Create(twin, cur);
  std::vector<std::uint32_t> offsets;
  d.ForEachWord([&](std::uint32_t w) { offsets.push_back(w); });
  EXPECT_EQ(offsets, (std::vector<std::uint32_t>{0, 1, 4}));
}

TEST(Diff, EncodedBytesAccountsRunsAndPayload) {
  auto twin = Bytes({0, 0, 0, 0});
  auto cur = Bytes({1, 0, 2, 0});
  Diff d = Diff::Create(twin, cur);
  EXPECT_EQ(d.EncodedBytes(), Diff::kHeaderBytes +
                                  2 * Diff::kRunDescriptorBytes +
                                  2 * kWordBytes);
}

TEST(DiffMerge, NewerWinsOnOverlap) {
  auto base = Bytes({0, 0, 0, 0});
  auto v1 = Bytes({1, 1, 0, 0});
  auto v2 = Bytes({2, 1, 9, 0});
  Diff d1 = Diff::Create(base, v1);
  Diff d2 = Diff::Create(v1, v2);
  Diff merged = Diff::Merge(d1, d2, 4);
  auto target = base;
  merged.Apply(target);
  EXPECT_EQ(target, v2);
}

TEST(DiffMerge, UnionOfDisjointRuns) {
  auto base = Bytes({0, 0, 0, 0, 0});
  auto v1 = Bytes({1, 0, 0, 0, 0});
  auto v2 = Bytes({1, 0, 0, 0, 5});
  Diff d1 = Diff::Create(base, v1);
  Diff d2 = Diff::Create(v1, v2);
  Diff merged = Diff::Merge(d1, d2, 5);
  EXPECT_EQ(merged.payload_words(), 2u);
  auto target = base;
  merged.Apply(target);
  EXPECT_EQ(target, v2);
}

// --- Merge vs. a brute-force word-map oracle -------------------------------

// Word-map view of a diff: offset → value, in apply order.
std::map<std::uint32_t, std::uint32_t> WordMap(const Diff& d) {
  std::map<std::uint32_t, std::uint32_t> map;
  std::size_t p = 0;
  for (const DiffRun& run : d.runs()) {
    for (std::uint32_t i = 0; i < run.word_count; ++i) {
      map[run.word_offset + i] = d.payload_word(p++);
    }
  }
  return map;
}

// The oracle: absorb older then newer word by word (newer wins), exactly
// the semantics the O(runs + payload) two-pointer merge must reproduce.
std::map<std::uint32_t, std::uint32_t> MergeOracle(const Diff& older,
                                                   const Diff& newer) {
  std::map<std::uint32_t, std::uint32_t> map = WordMap(older);
  for (const auto& [offset, value] : WordMap(newer)) map[offset] = value;
  return map;
}

// Canonical runs: non-empty, sorted, maximal (a gap of at least one
// unmodified word between consecutive runs).
void ExpectCanonicalRuns(const Diff& d, std::size_t words_per_unit) {
  std::uint32_t prev_end = 0;
  bool first = true;
  for (const DiffRun& run : d.runs()) {
    EXPECT_GT(run.word_count, 0u);
    if (!first) {
      EXPECT_GT(run.word_offset, prev_end);
    }
    prev_end = run.word_offset + run.word_count;
    first = false;
  }
  EXPECT_LE(prev_end, words_per_unit);
}

void ExpectMergeMatchesOracle(const Diff& older, const Diff& newer,
                              std::size_t words_per_unit) {
  const Diff merged = Diff::Merge(older, newer, words_per_unit);
  EXPECT_EQ(WordMap(merged), MergeOracle(older, newer));
  ExpectCanonicalRuns(merged, words_per_unit);
}

TEST(DiffMerge, EmptyOlder) {
  auto base = Bytes({0, 0, 0, 0});
  auto v = Bytes({0, 7, 7, 0});
  Diff empty = Diff::Create(base, base);
  Diff d = Diff::Create(base, v);
  ExpectMergeMatchesOracle(empty, d, 4);
  const Diff merged = Diff::Merge(empty, d, 4);
  EXPECT_EQ(merged.payload_words(), 2u);
}

TEST(DiffMerge, EmptyNewer) {
  auto base = Bytes({0, 0, 0, 0});
  auto v = Bytes({3, 0, 0, 3});
  Diff d = Diff::Create(base, v);
  Diff empty = Diff::Create(base, base);
  ExpectMergeMatchesOracle(d, empty, 4);
  const Diff merged = Diff::Merge(d, empty, 4);
  EXPECT_EQ(WordMap(merged), WordMap(d));
}

TEST(DiffMerge, BothEmpty) {
  auto base = Bytes({1, 2, 3});
  Diff empty = Diff::Create(base, base);
  const Diff merged = Diff::Merge(empty, empty, 3);
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(merged.payload_words(), 0u);
}

TEST(DiffMerge, FullyOverlappingRunsNewerWins) {
  auto base = Bytes({0, 0, 0, 0, 0, 0});
  auto v1 = Bytes({0, 1, 1, 1, 0, 0});
  auto v2 = Bytes({0, 2, 2, 2, 0, 0});
  Diff older = Diff::Create(base, v1);
  Diff newer = Diff::Create(base, v2);
  ExpectMergeMatchesOracle(older, newer, 6);
  const Diff merged = Diff::Merge(older, newer, 6);
  ASSERT_EQ(merged.num_runs(), 1u);
  EXPECT_EQ(merged.payload_words(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(merged.payload_word(i), 2u);
}

TEST(DiffMerge, PartialOverlapKeepsOlderFringe) {
  // Older covers [1,4), newer covers [3,6): older survives on [1,3).
  auto base = Bytes({0, 0, 0, 0, 0, 0, 0});
  auto v1 = Bytes({0, 1, 1, 1, 0, 0, 0});
  auto v2 = Bytes({0, 0, 0, 2, 2, 2, 0});
  Diff older = Diff::Create(base, v1);
  Diff newer = Diff::Create(base, v2);
  ExpectMergeMatchesOracle(older, newer, 7);
  const Diff merged = Diff::Merge(older, newer, 7);
  ASSERT_EQ(merged.num_runs(), 1u);  // [1,6) coalesces
  EXPECT_EQ(merged.runs()[0].word_offset, 1u);
  EXPECT_EQ(merged.runs()[0].word_count, 5u);
}

TEST(DiffMerge, AdjacentRunsCoalesceIntoOne) {
  auto base = Bytes({0, 0, 0, 0, 0, 0});
  auto v1 = Bytes({0, 5, 5, 0, 0, 0});  // run [1,3)
  auto v2 = Bytes({0, 0, 0, 6, 6, 0});  // run [3,5), adjacent
  Diff older = Diff::Create(base, v1);
  Diff newer = Diff::Create(base, v2);
  ExpectMergeMatchesOracle(older, newer, 6);
  const Diff merged = Diff::Merge(older, newer, 6);
  ASSERT_EQ(merged.num_runs(), 1u);
  EXPECT_EQ(merged.runs()[0].word_offset, 1u);
  EXPECT_EQ(merged.runs()[0].word_count, 4u);
}

TEST(DiffMerge, InterleavedDisjointRuns) {
  auto base = Bytes({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  auto v1 = Bytes({1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0});  // runs at 0, 4, 8
  auto v2 = Bytes({0, 0, 2, 0, 0, 0, 2, 0, 0, 0, 2, 0});  // runs at 2, 6, 10
  Diff older = Diff::Create(base, v1);
  Diff newer = Diff::Create(base, v2);
  ExpectMergeMatchesOracle(older, newer, 12);
  const Diff merged = Diff::Merge(older, newer, 12);
  EXPECT_EQ(merged.num_runs(), 6u);
  EXPECT_EQ(merged.payload_words(), 6u);
}

TEST(DiffMerge, NewerRunSpanningSeveralOlderRuns) {
  auto base = Bytes({0, 0, 0, 0, 0, 0, 0, 0});
  auto v1 = Bytes({1, 1, 0, 1, 0, 1, 1, 0});  // runs [0,2),[3,4),[5,7)
  auto v2 = Bytes({0, 2, 2, 2, 2, 2, 0, 0});  // one run [1,6) across them
  Diff older = Diff::Create(base, v1);
  Diff newer = Diff::Create(base, v2);
  ExpectMergeMatchesOracle(older, newer, 8);
}

// --- property tests --------------------------------------------------------

class DiffPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// Round trip: for random twin/current pairs, Create then Apply onto the
// twin reproduces current exactly, and the diff never carries more words
// than differ.
TEST_P(DiffPropertyTest, CreateApplyRoundTrip) {
  Xoshiro256 rng(GetParam());
  const std::size_t words = 64 + rng.UniformInt(1024);
  std::vector<std::uint32_t> twin_w(words), cur_w(words);
  std::size_t expected_modified = 0;
  for (std::size_t i = 0; i < words; ++i) {
    twin_w[i] = static_cast<std::uint32_t>(rng.Next());
    if (rng.UniformDouble() < 0.3) {
      cur_w[i] = twin_w[i] + 1 + static_cast<std::uint32_t>(rng.UniformInt(100));
      ++expected_modified;
    } else {
      cur_w[i] = twin_w[i];
    }
  }
  auto twin = Bytes(twin_w);
  auto cur = Bytes(cur_w);
  Diff d = Diff::Create(twin, cur);
  EXPECT_EQ(d.payload_words(), expected_modified);
  auto target = twin;
  d.Apply(target);
  EXPECT_EQ(target, cur);
}

// Merge equivalence: applying (d1 then d2) equals applying Merge(d1, d2).
TEST_P(DiffPropertyTest, MergeEquivalentToSequentialApply) {
  Xoshiro256 rng(GetParam() ^ 0xfeed);
  const std::size_t words = 32 + rng.UniformInt(512);
  std::vector<std::uint32_t> v0(words), v1(words), v2(words);
  for (std::size_t i = 0; i < words; ++i) {
    v0[i] = static_cast<std::uint32_t>(rng.Next());
    v1[i] = rng.UniformDouble() < 0.25 ? v0[i] + 1 : v0[i];
    v2[i] = rng.UniformDouble() < 0.25 ? v1[i] + 1 : v1[i];
  }
  auto b0 = Bytes(v0), b1 = Bytes(v1), b2 = Bytes(v2);
  Diff d1 = Diff::Create(b0, b1);
  Diff d2 = Diff::Create(b1, b2);

  auto sequential = b0;
  d1.Apply(sequential);
  d2.Apply(sequential);

  auto merged_target = b0;
  Diff merged = Diff::Merge(d1, d2, words);
  merged.Apply(merged_target);

  EXPECT_EQ(sequential, merged_target);
  // The merged payload never exceeds the sum of the parts.
  EXPECT_LE(merged.payload_words(), d1.payload_words() + d2.payload_words());
}

// Merge against the word-map oracle on independent random overlap
// patterns (not chained versions: arbitrary partial overlaps, adjacency,
// and containment all occur).
TEST_P(DiffPropertyTest, MergeMatchesWordMapOracle) {
  Xoshiro256 rng(GetParam() ^ 0xabcd);
  const std::size_t words = 32 + rng.UniformInt(512);
  std::vector<std::uint32_t> v0(words), v1(words), v2(words);
  for (std::size_t i = 0; i < words; ++i) {
    v0[i] = static_cast<std::uint32_t>(rng.Next());
    v1[i] = rng.UniformDouble() < 0.3 ? v0[i] + 1 : v0[i];
    v2[i] = rng.UniformDouble() < 0.3 ? v0[i] + 2 : v0[i];
  }
  auto b0 = Bytes(v0), b1 = Bytes(v1), b2 = Bytes(v2);
  Diff older = Diff::Create(b0, b1);
  Diff newer = Diff::Create(b0, b2);
  ExpectMergeMatchesOracle(older, newer, words);
}

// Runs are canonical: sorted, non-overlapping, maximal.
TEST_P(DiffPropertyTest, RunsAreCanonical) {
  Xoshiro256 rng(GetParam() ^ 0xbeef);
  const std::size_t words = 64 + rng.UniformInt(256);
  std::vector<std::uint32_t> twin_w(words), cur_w(words);
  for (std::size_t i = 0; i < words; ++i) {
    twin_w[i] = 1;
    cur_w[i] = rng.UniformDouble() < 0.5 ? 1u : 2u;
  }
  Diff d = Diff::Create(Bytes(twin_w), Bytes(cur_w));
  std::uint32_t prev_end = 0;
  bool first = true;
  for (const DiffRun& run : d.runs()) {
    EXPECT_GT(run.word_count, 0u);
    if (!first) {
      // Maximality: a gap of at least one unmodified word between runs.
      EXPECT_GT(run.word_offset, prev_end);
    }
    prev_end = run.word_offset + run.word_count;
    first = false;
  }
  EXPECT_LE(prev_end, words);
}

// Archive GC reconstructs merged-chain wire sizes from payload-free run
// lists, so MergeRuns must reproduce Merge's run structure exactly.
TEST_P(DiffPropertyTest, MergeRunsMatchesMergeRunStructure) {
  Xoshiro256 rng(GetParam() ^ 0x6c0de);
  const std::size_t words = 64 + rng.UniformInt(256);
  std::vector<std::uint32_t> v0(words), v1(words), v2(words);
  for (std::size_t i = 0; i < words; ++i) {
    v0[i] = static_cast<std::uint32_t>(rng.Next());
    v1[i] = rng.UniformDouble() < 0.4 ? v0[i] + 1 : v0[i];
    v2[i] = rng.UniformDouble() < 0.4 ? v0[i] + 2 : v0[i];
  }
  auto b0 = Bytes(v0), b1 = Bytes(v1), b2 = Bytes(v2);
  const Diff older = Diff::Create(b0, b1);
  const Diff newer = Diff::Create(b0, b2);
  const Diff merged = Diff::Merge(older, newer, words);
  const std::vector<DiffRun> runs =
      Diff::MergeRuns(older.runs(), newer.runs());
  ASSERT_EQ(runs.size(), merged.runs().size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].word_offset, merged.runs()[i].word_offset) << i;
    EXPECT_EQ(runs[i].word_count, merged.runs()[i].word_count) << i;
  }
  EXPECT_EQ(Diff::RunWords(runs), merged.payload_words());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace dsm

// Static aggregation (paper §3) and dynamic page grouping (paper §4):
// scenario tests for the worked examples in the paper, aggregator unit
// tests, and sync/lock service behaviour.
#include <gtest/gtest.h>

#include "core/aggregation.h"
#include "core/runtime.h"

namespace dsm {
namespace {

RuntimeConfig Config(int nprocs, AggregationMode mode, int ppu,
                     int max_group = 4) {
  RuntimeConfig cfg;
  cfg.num_procs = nprocs;
  cfg.heap_bytes = 1u << 20;
  cfg.aggregation = mode;
  cfg.pages_per_unit = ppu;
  cfg.max_group_pages = max_group;
  return cfg;
}

// --- DynamicAggregator unit behaviour ---------------------------------------

TEST(DynamicAggregator, GroupsFormFromAccessOrder) {
  DynamicAggregator agg(16, 4);
  agg.RecordAccess(3);
  agg.RecordAccess(9);   // non-contiguous on purpose
  agg.RecordAccess(1);
  agg.OnSynchronization();
  const auto group = agg.GroupOf(9);
  ASSERT_EQ(group.size(), 3u);
  EXPECT_EQ(group[0], 3u);
  EXPECT_EQ(group[1], 9u);
  EXPECT_EQ(group[2], 1u);
}

TEST(DynamicAggregator, SingleAccessFormsNoGroup) {
  DynamicAggregator agg(16, 4);
  agg.RecordAccess(5);
  agg.OnSynchronization();
  EXPECT_TRUE(agg.GroupOf(5).empty());
}

TEST(DynamicAggregator, GroupsCapAtMaxPages) {
  DynamicAggregator agg(16, 3);
  for (UnitId u = 0; u < 7; ++u) agg.RecordAccess(u);
  agg.OnSynchronization();
  EXPECT_EQ(agg.GroupOf(0).size(), 3u);
  EXPECT_EQ(agg.GroupOf(3).size(), 3u);
  // 7 = 3 + 3 + 1; the trailing singleton is ungrouped.
  EXPECT_TRUE(agg.GroupOf(6).empty());
}

// Regroup-while-dissolving: migrating a page out of a two-member group
// dissolves the survivor's group mid-regroup and frees its id, which the
// SAME OnSynchronization pass may immediately reuse for a new group.  The
// membership invariant (group_of_[u] == g ⟺ u ∈ groups_[g]) must hold
// throughout — the hardened RemoveFromGroup fails loudly if it breaks.
TEST(DynamicAggregator, RegroupWhileDissolvingKeepsInvariant) {
  DynamicAggregator agg(16, 2);
  // Epoch 1: two groups, {0,1} and {2,3}.
  agg.RecordAccess(0);
  agg.RecordAccess(1);
  agg.RecordAccess(2);
  agg.RecordAccess(3);
  agg.OnSynchronization();
  ASSERT_EQ(agg.GroupOf(0).size(), 2u);
  ASSERT_EQ(agg.GroupOf(2).size(), 2u);
  EXPECT_EQ(agg.num_groups(), 2u);

  // Epoch 2: {0,2} regroups — removing 0 dissolves {0,1} (1 unmapped,
  // id freed), removing 2 dissolves {2,3}; the freed ids are reused by
  // the new groups formed in the same pass.
  agg.RecordAccess(0);
  agg.RecordAccess(2);
  agg.RecordAccess(4);
  agg.RecordAccess(5);
  agg.OnSynchronization();
  EXPECT_TRUE(agg.GroupOf(1).empty());
  EXPECT_TRUE(agg.GroupOf(3).empty());
  ASSERT_EQ(agg.GroupOf(0).size(), 2u);
  EXPECT_EQ(agg.GroupOf(0)[0], 0u);
  EXPECT_EQ(agg.GroupOf(0)[1], 2u);
  ASSERT_EQ(agg.GroupOf(4).size(), 2u);
  EXPECT_EQ(agg.num_groups(), 2u);

  // Epoch 3: the dissolved singletons are re-groupable — no stale group
  // state survives.
  agg.RecordAccess(1);
  agg.RecordAccess(3);
  agg.OnSynchronization();
  ASSERT_EQ(agg.GroupOf(1).size(), 2u);
  EXPECT_EQ(agg.GroupOf(1)[1], 3u);
  EXPECT_EQ(agg.num_groups(), 3u);
}

// A prefetch-split (OnSynchronization phase a) that dissolves a group
// whose survivor is regrouped in the same pass (phase b) must leave
// consistent state: the survivor joins its new group cleanly.
TEST(DynamicAggregator, PrefetchSplitThenRegroupSamePass) {
  DynamicAggregator agg(16, 2);
  agg.RecordAccess(6);
  agg.RecordAccess(7);
  agg.OnSynchronization();
  ASSERT_EQ(agg.GroupOf(6).size(), 2u);

  // 7 was prefetched but never accessed → split out, dissolving the
  // group; 6 itself was accessed and regroups with 8.
  agg.NotifyPrefetched(7);
  agg.RecordAccess(6);
  agg.RecordAccess(8);
  agg.OnSynchronization();
  EXPECT_TRUE(agg.GroupOf(7).empty());
  ASSERT_EQ(agg.GroupOf(6).size(), 2u);
  EXPECT_EQ(agg.GroupOf(6)[1], 8u);
  EXPECT_EQ(agg.num_groups(), 1u);
}

TEST(DynamicAggregator, RepeatedAccessRecordedOncePerInterval) {
  DynamicAggregator agg(16, 4);
  agg.RecordAccess(2);
  agg.RecordAccess(2);
  agg.RecordAccess(2);
  EXPECT_EQ(agg.accesses_this_interval(), 1u);
}

TEST(DynamicAggregator, GroupsPersistAcrossQuietIntervals) {
  DynamicAggregator agg(16, 4);
  agg.RecordAccess(0);
  agg.RecordAccess(1);
  agg.OnSynchronization();
  ASSERT_EQ(agg.GroupOf(0).size(), 2u);
  // Two synchronizations with no accesses: the group must survive (this is
  // what lets ILINK's master keep its groups through the slave phases).
  agg.OnSynchronization();
  agg.OnSynchronization();
  EXPECT_EQ(agg.GroupOf(0).size(), 2u);
}

TEST(DynamicAggregator, UnconsumedPrefetchSplitsMember) {
  DynamicAggregator agg(16, 4);
  agg.RecordAccess(0);
  agg.RecordAccess(1);
  agg.RecordAccess(2);
  agg.OnSynchronization();
  ASSERT_EQ(agg.GroupOf(0).size(), 3u);
  // Next interval: 1 and 2 are prefetched with 0, but only 1 is accessed.
  agg.RecordAccess(0);
  agg.NotifyPrefetched(1);
  agg.NotifyPrefetched(2);
  agg.RecordAccess(1);  // consumes the prefetch of 1
  agg.OnSynchronization();
  // 2 left the group (pattern change); 0 and 1 were re-grouped together.
  EXPECT_TRUE(agg.GroupOf(2).empty());
  ASSERT_EQ(agg.GroupOf(0).size(), 2u);
  EXPECT_EQ(agg.GroupOf(1).size(), 2u);
}

TEST(DynamicAggregator, ShrunkGroupOfOneDissolves) {
  DynamicAggregator agg(16, 2);
  agg.RecordAccess(0);
  agg.RecordAccess(1);
  agg.OnSynchronization();
  agg.NotifyPrefetched(1);  // 1 prefetched, never accessed
  agg.OnSynchronization();
  EXPECT_TRUE(agg.GroupOf(1).empty());
  EXPECT_TRUE(agg.GroupOf(0).empty());  // a 1-page group is no group
}

// --- max_group_pages boundary behaviour -------------------------------------

TEST(DynamicAggregator, MaxGroupOfZeroRejected) {
  EXPECT_THROW(DynamicAggregator(16, 0), CheckError);
}

TEST(DynamicAggregator, MaxGroupOfOneNeverGroups) {
  DynamicAggregator agg(16, 1);
  for (UnitId u = 0; u < 6; ++u) agg.RecordAccess(u);
  agg.OnSynchronization();
  EXPECT_EQ(agg.num_groups(), 0u);
  for (UnitId u = 0; u < 6; ++u) EXPECT_TRUE(agg.GroupOf(u).empty());
}

TEST(DynamicAggregator, ExactMultipleFormsFullGroupsOnly) {
  DynamicAggregator agg(16, 4);
  for (UnitId u = 0; u < 8; ++u) agg.RecordAccess(u);
  agg.OnSynchronization();
  EXPECT_EQ(agg.num_groups(), 2u);
  ASSERT_EQ(agg.GroupOf(0).size(), 4u);
  ASSERT_EQ(agg.GroupOf(4).size(), 4u);
  // No unit straddles the two groups.
  for (UnitId u = 0; u < 4; ++u) EXPECT_EQ(agg.GroupOf(u)[0], 0u);
  for (UnitId u = 4; u < 8; ++u) EXPECT_EQ(agg.GroupOf(u)[0], 4u);
}

TEST(DynamicAggregator, TrailingPartialGroupForms) {
  DynamicAggregator agg(16, 4);
  for (UnitId u = 0; u < 6; ++u) agg.RecordAccess(u);
  agg.OnSynchronization();
  // 6 = 4 + 2: a full group plus a partial (but >= 2-page) trailing group.
  EXPECT_EQ(agg.num_groups(), 2u);
  EXPECT_EQ(agg.GroupOf(0).size(), 4u);
  ASSERT_EQ(agg.GroupOf(4).size(), 2u);
  EXPECT_EQ(agg.GroupOf(5).size(), 2u);
}

// End-to-end: a stable pattern on the LAST pages of the heap forms a
// partial group at the heap end; group fetches must stay in bounds and
// deliver correct data.
TEST(DynamicAggregation, PartialGroupAtHeapEndStaysCorrect) {
  RuntimeConfig cfg = Config(2, AggregationMode::kDynamic, 1);
  cfg.heap_bytes = 8 * kBasePageBytes;
  Runtime rt(cfg);
  const std::size_t per_page = kBasePageBytes / sizeof(int);
  auto a = rt.AllocUnitAligned<int>(8 * per_page, "whole_heap");
  const int iters = 5;
  int seen[3] = {-1, -1, -1};
  rt.Run([&](Proc& p) {
    for (int it = 0; it < iters; ++it) {
      if (p.id() == 0) {
        // Write the last three pages (5, 6, 7) — fewer than
        // max_group_pages (4), so the group that forms is partial and
        // flush against the end of the heap.
        for (int pg = 5; pg < 8; ++pg) {
          p.Write(a, static_cast<std::size_t>(pg) * per_page, 100 * it + pg);
        }
      }
      p.Barrier();
      if (p.id() == 1) {
        for (int pg = 5; pg < 8; ++pg) {
          seen[pg - 5] =
              p.Read(a, static_cast<std::size_t>(pg) * per_page);
        }
      }
      p.Barrier();
    }
  });
  for (int pg = 5; pg < 8; ++pg) {
    EXPECT_EQ(seen[pg - 5], 100 * (iters - 1) + pg);
  }
  RunStats s = rt.CollectStats();
  // The steady state fetches the partial group with one fault.
  EXPECT_GT(s.comm.group_prefetch_units, 0u);
  EXPECT_GT(s.comm.silent_validations, 0u);
}

// max_group_pages = 1 end-to-end: dynamic aggregation must degrade to
// plain 4 K pages — identical message counts, no group prefetches.
TEST(DynamicAggregation, MaxGroupOneMatchesStaticPages) {
  RunStats stats[2];
  int idx = 0;
  for (AggregationMode mode :
       {AggregationMode::kStatic, AggregationMode::kDynamic}) {
    Runtime rt(Config(2, mode, 1, /*max_group=*/1));
    const std::size_t per_page = kBasePageBytes / sizeof(int);
    auto a = rt.AllocUnitAligned<int>(4 * per_page, "pages");
    rt.Run([&](Proc& p) {
      for (int it = 0; it < 4; ++it) {
        if (p.id() == 0) {
          p.Write(a, 0, it);
          p.Write(a, 2 * per_page, it);
        }
        p.Barrier();
        if (p.id() == 1) {
          (void)p.Read(a, 0);
          (void)p.Read(a, 2 * per_page);
        }
        p.Barrier();
      }
    });
    stats[idx++] = rt.CollectStats();
  }
  EXPECT_EQ(stats[0].comm.useful_messages, stats[1].comm.useful_messages);
  EXPECT_EQ(stats[0].comm.useless_messages, stats[1].comm.useless_messages);
  EXPECT_EQ(stats[0].comm.total_data_bytes(),
            stats[1].comm.total_data_bytes());
  EXPECT_EQ(stats[1].comm.group_prefetch_units, 0u);
  EXPECT_EQ(stats[1].comm.silent_validations, 0u);
}

// --- paper §3 static aggregation scenarios ----------------------------------

// "p1 writes two contiguous pages, synchronizes, p2 reads both": two
// exchanges at 4 K become one at 8 K with the same data volume.
TEST(StaticAggregation, TwoPagesOneWriterAggregatesMessages) {
  std::uint64_t msgs[2], bytes[2];
  for (int ppu = 1; ppu <= 2; ++ppu) {
    Runtime rt(Config(2, AggregationMode::kStatic, ppu));
    const std::size_t n = 2 * kBasePageBytes / sizeof(int);  // two pages
    auto a = rt.AllocUnitAligned<int>(n, "pages");
    rt.Run([&](Proc& p) {
      if (p.id() == 0) {
        for (std::size_t i = 0; i < n; ++i) p.Write(a, i, 1 + (int)i);
      }
      p.Barrier();
      if (p.id() == 1) {
        for (std::size_t i = 0; i < n; ++i) (void)p.Read(a, i);
      }
    });
    RunStats s = rt.CollectStats();
    msgs[ppu - 1] = s.comm.useful_messages + s.comm.useless_messages;
    bytes[ppu - 1] = s.comm.total_data_bytes();
  }
  EXPECT_EQ(msgs[0], 4u);  // two exchanges
  EXPECT_EQ(msgs[1], 2u);  // one exchange
  EXPECT_EQ(bytes[0], bytes[1]);  // same data either way
}

// Variation: p2 reads only the first page → at 8 K the message count stays
// one but the data doubles (the second page travels uselessly).
TEST(StaticAggregation, PartialReadGrowsUselessData) {
  std::uint64_t piggy[2];
  for (int ppu = 1; ppu <= 2; ++ppu) {
    Runtime rt(Config(2, AggregationMode::kStatic, ppu));
    const std::size_t per_page = kBasePageBytes / sizeof(int);
    auto a = rt.AllocUnitAligned<int>(2 * per_page, "pages");
    rt.Run([&](Proc& p) {
      if (p.id() == 0) {
        for (std::size_t i = 0; i < 2 * per_page; ++i) p.Write(a, i, 7);
      }
      p.Barrier();
      if (p.id() == 1) {
        for (std::size_t i = 0; i < per_page; ++i) (void)p.Read(a, i);
      }
    });
    RunStats s = rt.CollectStats();
    piggy[ppu - 1] = s.comm.piggyback_useless_bytes;
  }
  EXPECT_EQ(piggy[0], 0u);
  EXPECT_EQ(piggy[1], kBasePageBytes);
}

// Second §3 example: p1 writes page A, p2 writes page B, p3 reads only A.
// At 4 K: one useful exchange.  At 8 K: an extra useless exchange with p2.
TEST(StaticAggregation, AggregationInducesUselessMessages) {
  for (int ppu = 1; ppu <= 2; ++ppu) {
    Runtime rt(Config(3, AggregationMode::kStatic, ppu));
    const std::size_t per_page = kBasePageBytes / sizeof(int);
    auto a = rt.AllocUnitAligned<int>(2 * per_page, "pages");
    rt.Run([&](Proc& p) {
      if (p.id() == 0) {
        for (std::size_t i = 0; i < per_page; ++i) p.Write(a, i, 1);
      } else if (p.id() == 1) {
        for (std::size_t i = per_page; i < 2 * per_page; ++i) p.Write(a, i, 2);
      }
      p.Barrier();
      if (p.id() == 2) {
        for (std::size_t i = 0; i < per_page; ++i) (void)p.Read(a, i);
      }
    });
    RunStats s = rt.CollectStats();
    if (ppu == 1) {
      EXPECT_EQ(s.comm.useless_messages, 0u);
      EXPECT_EQ(s.comm.signature.useful(1), 1u);
    } else {
      EXPECT_EQ(s.comm.useless_messages, 2u);  // exchange with p1 wasted
      EXPECT_EQ(s.comm.signature.useful(2), 1u);
      EXPECT_EQ(s.comm.signature.useless(2), 1u);
    }
  }
}

// --- dynamic aggregation end-to-end ------------------------------------------

// A stable two-page access pattern: after one observation interval, the
// dynamic scheme fetches both pages with one fault, combining the requests
// (the pages are NOT contiguous).
TEST(DynamicAggregation, RepeatedPatternFetchesGroupsTogether) {
  Runtime rt(Config(2, AggregationMode::kDynamic, 1));
  const std::size_t per_page = kBasePageBytes / sizeof(int);
  auto a = rt.AllocUnitAligned<int>(8 * per_page, "pages");
  const int iters = 6;
  rt.Run([&](Proc& p) {
    for (int it = 0; it < iters; ++it) {
      if (p.id() == 0) {
        // Write pages 0 and 4 (non-contiguous).
        p.Write(a, 0, it + 1);
        p.Write(a, 4 * per_page, it + 1);
      }
      p.Barrier();
      if (p.id() == 1) {
        (void)p.Read(a, 0);
        (void)p.Read(a, 4 * per_page);
      }
      p.Barrier();
    }
  });
  RunStats s = rt.CollectStats();
  // Iteration 1: two separate faults (no groups yet).  Iterations 2..6:
  // one grouped fault + one silent validation each.
  EXPECT_GE(s.comm.silent_validations, (std::uint64_t)(iters - 2));
  EXPECT_GE(s.comm.group_prefetch_units, (std::uint64_t)(iters - 2));
  // Messages: first iteration 2 exchanges, then 1 per iteration.
  const std::uint64_t exchanges =
      (s.comm.useful_messages + s.comm.useless_messages) / 2;
  EXPECT_LE(exchanges, (std::uint64_t)(2 + (iters - 1) + 1));
}

// MGS-like non-repeating pattern: dynamic must behave like the 4 K page.
TEST(DynamicAggregation, NonRepeatingPatternDegradesToPages) {
  RunStats stats[2];
  int idx = 0;
  for (AggregationMode mode :
       {AggregationMode::kStatic, AggregationMode::kDynamic}) {
    Runtime rt(Config(2, mode, 1));
    const std::size_t per_page = kBasePageBytes / sizeof(int);
    auto a = rt.AllocUnitAligned<int>(8 * per_page, "pages");
    rt.Run([&](Proc& p) {
      for (int it = 0; it < 8; ++it) {
        if (p.id() == 0) p.Write(a, it * per_page, it + 1);
        p.Barrier();
        if (p.id() == 1) (void)p.Read(a, it * per_page);  // new page each time
        p.Barrier();
      }
    });
    stats[idx++] = rt.CollectStats();
  }
  EXPECT_EQ(stats[0].comm.useful_messages, stats[1].comm.useful_messages);
  EXPECT_EQ(stats[0].comm.useless_messages, stats[1].comm.useless_messages);
  EXPECT_EQ(stats[1].comm.group_prefetch_units, 0u);
}

// Request combining: a group whose pages were written by ONE writer must
// fetch with a single exchange; written by TWO writers, two exchanges that
// answer in parallel.
TEST(DynamicAggregation, CombinesRequestsPerWriter) {
  Runtime rt(Config(3, AggregationMode::kDynamic, 1));
  const std::size_t per_page = kBasePageBytes / sizeof(int);
  auto a = rt.AllocUnitAligned<int>(4 * per_page, "pages");
  rt.Run([&](Proc& p) {
    for (int it = 0; it < 4; ++it) {
      if (p.id() == 0) p.Write(a, 0, it + 1);
      if (p.id() == 1) p.Write(a, 2 * per_page, it + 1);
      p.Barrier();
      if (p.id() == 2) {
        (void)p.Read(a, 0);
        (void)p.Read(a, 2 * per_page);
      }
      p.Barrier();
    }
  });
  RunStats s = rt.CollectStats();
  // Steady state: one fault contacting 2 writers (signature bucket 2).
  EXPECT_GT(s.comm.signature.useful(2), 0u);
}

}  // namespace
}  // namespace dsm

// Synchronization services and their calibrated costs: barrier rendezvous,
// queued locks with owner caching, and the paper's §5.1 latency numbers.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "core/runtime.h"

namespace dsm {
namespace {

RuntimeConfig Config(int nprocs) {
  RuntimeConfig cfg;
  cfg.num_procs = nprocs;
  cfg.heap_bytes = 1u << 20;
  return cfg;
}

TEST(Barrier, EightProcessorEmptyBarrierNear861us) {
  RuntimeConfig cfg = Config(8);
  cfg.net.wire_header_bytes = 0;  // calibration excludes framing
  Runtime rt(cfg);
  rt.Run([&](Proc& p) { p.Barrier(); });
  RunStats s = rt.CollectStats();
  // Paper §5.1: "the time for an eight processor barrier is 861 µs".
  EXPECT_NEAR(static_cast<double>(s.exec_time),
              861.0 * kNanosPerMicro, 1.0 * kNanosPerMicro);
}

TEST(Barrier, MessageCountIsTwoPerClient) {
  Runtime rt(Config(8));
  rt.Run([&](Proc& p) { p.Barrier(); });
  RunStats s = rt.CollectStats();
  EXPECT_EQ(s.net.messages(MessageKind::kBarrierArrival), 7u);
  EXPECT_EQ(s.net.messages(MessageKind::kBarrierRelease), 7u);
}

TEST(Barrier, SynchronizesVirtualClocks) {
  Runtime rt(Config(4));
  rt.Run([&](Proc& p) {
    p.Compute(static_cast<std::uint64_t>(p.id()) * 100000);  // skewed work
    p.Barrier();
  });
  RunStats s = rt.CollectStats();
  // After one barrier everyone's clock is within the per-client payload
  // skew (zero notices here → identical).
  for (VirtualNanos t : s.node_times) EXPECT_EQ(t, s.node_times[0]);
}

TEST(Barrier, RepeatedBarriersAdvanceGenerations) {
  Runtime rt(Config(3));
  std::atomic<int> order_violations{0};
  rt.Run([&](Proc& p) {
    for (int i = 0; i < 50; ++i) p.Barrier();
  });
  EXPECT_EQ(order_violations.load(), 0);
  EXPECT_EQ(rt.shared().barrier->barriers_completed(), 50u);
}

TEST(Lock, FirstAcquireInPaperBand) {
  RuntimeConfig cfg = Config(2);
  cfg.net.wire_header_bytes = 0;
  Runtime rt(cfg);
  rt.Run([&](Proc& p) {
    if (p.id() == 0) {
      p.Lock(0);
      p.Unlock(0);
    }
  });
  // Paper §5.1: "the time to acquire a lock varies from 374 to 574 µs".
  const VirtualNanos t = rt.node(0).clock().now();
  EXPECT_GE(t, 374 * kNanosPerMicro - 3 * kNanosPerMicro);
  EXPECT_LE(t, 574 * kNanosPerMicro);
}

TEST(Lock, OwnerCachedReacquireIsCheap) {
  Runtime rt(Config(2));
  rt.Run([&](Proc& p) {
    if (p.id() == 0) {
      p.Lock(0);
      p.Unlock(0);
      const VirtualNanos before = p.now();
      p.Lock(0);  // token still local
      p.Unlock(0);
      EXPECT_LT(p.now() - before, 10 * kNanosPerMicro);
    }
  });
  RunStats s = rt.CollectStats();
  EXPECT_EQ(s.net.messages(MessageKind::kLockRequest), 1u);  // only the first
}

TEST(Lock, MutualExclusionUnderContention) {
  Runtime rt(Config(8));
  auto counter = rt.Alloc<int>(4, "counter");
  std::atomic<int> in_section{0};
  std::atomic<int> max_seen{0};
  int final_value = 0;
  rt.Run([&](Proc& p) {
    for (int i = 0; i < 25; ++i) {
      p.Lock(3);
      const int now = in_section.fetch_add(1) + 1;
      int expected = max_seen.load();
      while (now > expected && !max_seen.compare_exchange_weak(expected, now)) {
      }
      p.Write(counter, 0, p.Read(counter, 0) + 1);
      in_section.fetch_sub(1);
      p.Unlock(3);
    }
    p.Barrier();
    if (p.id() == 0) final_value = p.Read(counter, 0);
  });
  EXPECT_EQ(max_seen.load(), 1);  // never two holders
  EXPECT_EQ(final_value, 8 * 25);
}

TEST(Lock, GrantCarriesWriteNoticesTransitively) {
  // p0 writes under lock, p1 acquires and writes, p2 acquires and must see
  // BOTH writes (transitive causality through the lock's vector clock).
  Runtime rt(Config(3));
  auto a = rt.AllocUnitAligned<int>(2048, "a");
  int seen0 = -1, seen1 = -1;
  rt.Run([&](Proc& p) {
    // Serialize acquisition order with barriers for determinism.
    if (p.id() == 0) {
      p.Lock(0);
      p.Write(a, 0, 10);
      p.Unlock(0);
    }
    p.Barrier();
    if (p.id() == 1) {
      p.Lock(0);
      p.Write(a, 1024, 20);  // different page from p0's write
      p.Unlock(0);
    }
    p.Barrier();
    if (p.id() == 2) {
      p.Lock(0);
      seen0 = p.Read(a, 0);
      seen1 = p.Read(a, 1024);
      p.Unlock(0);
    }
  });
  EXPECT_EQ(seen0, 10);
  EXPECT_EQ(seen1, 20);
}

TEST(Lock, TransfersCounted) {
  Runtime rt(Config(2));
  rt.Run([&](Proc& p) {
    for (int i = 0; i < 3; ++i) {
      p.Lock(7);
      p.Unlock(7);
      p.Barrier();  // alternate holders deterministically
    }
  });
  // Lock 7 changed hands at least twice (p0→p1 or p1→p0 per round).
  EXPECT_GE(rt.shared().locks->transfers(7), 2u);
}

// Per-lock condition variables: a release wakes only that lock's waiters
// instead of thundering every waiter in the service.  Drive many locks
// under real contention with an externally-forced round-robin acquire
// order, so every grant is a token transfer and the per-lock transfer
// counts are exactly determined — any lost wakeup deadlocks the test and
// any miscount breaks the equality.
TEST(Lock, PerLockWakeupsKeepTransferCountsExact) {
  constexpr int kProcs = 4;
  constexpr int kLocks = 8;
  constexpr int kRounds = 6;  // acquires per (lock, proc)
  Runtime rt(Config(kProcs));
  std::array<std::atomic<int>, kLocks> turn{};
  for (auto& t : turn) t.store(0);
  rt.Run([&](Proc& p) {
    for (int r = 0; r < kRounds; ++r) {
      for (int k = 0; k < kLocks; ++k) {
        // Round-robin gate: proc p acquires lock k in slot (r*kProcs+p).
        const int my_slot = r * kProcs + p.id();
        while (turn[k].load(std::memory_order_acquire) != my_slot) {
          std::this_thread::yield();
        }
        p.Lock(k);
        p.Unlock(k);
        turn[k].store(my_slot + 1, std::memory_order_release);
      }
    }
  });
  // Every acquire came from a different proc than the previous holder, so
  // every grant transferred the token: exactly kProcs * kRounds per lock.
  for (int k = 0; k < kLocks; ++k) {
    EXPECT_EQ(rt.shared().locks->transfers(k),
              static_cast<std::uint64_t>(kProcs * kRounds))
        << "lock " << k;
  }
}

// BarrierService must reset its per-generation VC accumulator: a second
// generation whose arrival clocks are LOWER than the first's must not
// inherit the first generation's maxima (matters for any future
// checkpoint/restore or clock-reset path; per-proc monotonicity hides it
// today).
TEST(Barrier, GenerationVectorClockDoesNotLeakForward) {
  BarrierService svc(2);
  VectorClock a(2), b(2);
  a[0] = 5;
  b[1] = 7;
  BarrierService::Result r1;
  std::thread t1([&] { r1 = svc.Arrive(0, a, 0, 0); });
  BarrierService::Result r1b = svc.Arrive(1, b, 0, 0);
  t1.join();
  EXPECT_EQ(r1b.global_vc[0], 5u);
  EXPECT_EQ(r1b.global_vc[1], 7u);

  // Fresh clocks, strictly below the first generation's.
  VectorClock c(2), d(2);
  c[0] = 1;
  d[1] = 2;
  BarrierService::Result r2;
  std::thread t2([&] { r2 = svc.Arrive(0, c, 0, 0); });
  BarrierService::Result r2b = svc.Arrive(1, d, 0, 0);
  t2.join();
  EXPECT_EQ(r2b.global_vc[0], 1u);
  EXPECT_EQ(r2b.global_vc[1], 2u);
  EXPECT_EQ(r2.global_vc[0], 1u);
  EXPECT_EQ(r2.global_vc[1], 2u);
}

TEST(Runtime, RunTwiceRejected) {
  Runtime rt(Config(2));
  rt.Run([](Proc&) {});
  EXPECT_THROW(rt.Run([](Proc&) {}), CheckError);
}

TEST(Runtime, BodyExceptionPropagates) {
  Runtime rt(Config(1));
  EXPECT_THROW(rt.Run([](Proc&) { throw std::runtime_error("app bug"); }),
               std::runtime_error);
}

}  // namespace
}  // namespace dsm

// Synchronization services and their calibrated costs: barrier rendezvous,
// queued locks with owner caching, and the paper's §5.1 latency numbers.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <thread>

#include "core/runtime.h"

namespace dsm {
namespace {

RuntimeConfig Config(int nprocs) {
  RuntimeConfig cfg;
  cfg.num_procs = nprocs;
  cfg.heap_bytes = 1u << 20;
  return cfg;
}

TEST(Barrier, EightProcessorEmptyBarrierNear861us) {
  RuntimeConfig cfg = Config(8);
  cfg.net.wire_header_bytes = 0;  // calibration excludes framing
  Runtime rt(cfg);
  rt.Run([&](Proc& p) { p.Barrier(); });
  RunStats s = rt.CollectStats();
  // Paper §5.1: "the time for an eight processor barrier is 861 µs".
  EXPECT_NEAR(static_cast<double>(s.exec_time),
              861.0 * kNanosPerMicro, 1.0 * kNanosPerMicro);
}

TEST(Barrier, MessageCountIsTwoPerClient) {
  Runtime rt(Config(8));
  rt.Run([&](Proc& p) { p.Barrier(); });
  RunStats s = rt.CollectStats();
  EXPECT_EQ(s.net.messages(MessageKind::kBarrierArrival), 7u);
  EXPECT_EQ(s.net.messages(MessageKind::kBarrierRelease), 7u);
}

TEST(Barrier, SynchronizesVirtualClocks) {
  Runtime rt(Config(4));
  rt.Run([&](Proc& p) {
    p.Compute(static_cast<std::uint64_t>(p.id()) * 100000);  // skewed work
    p.Barrier();
  });
  RunStats s = rt.CollectStats();
  // After one barrier everyone's clock is within the per-client payload
  // skew (zero notices here → identical).
  for (VirtualNanos t : s.node_times) EXPECT_EQ(t, s.node_times[0]);
}

TEST(Barrier, RepeatedBarriersAdvanceGenerations) {
  Runtime rt(Config(3));
  std::atomic<int> order_violations{0};
  rt.Run([&](Proc& p) {
    for (int i = 0; i < 50; ++i) p.Barrier();
  });
  EXPECT_EQ(order_violations.load(), 0);
  EXPECT_EQ(rt.shared().barrier->barriers_completed(), 50u);
}

TEST(Lock, FirstAcquireInPaperBand) {
  RuntimeConfig cfg = Config(2);
  cfg.net.wire_header_bytes = 0;
  Runtime rt(cfg);
  rt.Run([&](Proc& p) {
    if (p.id() == 0) {
      p.Lock(0);
      p.Unlock(0);
    }
  });
  // Paper §5.1: "the time to acquire a lock varies from 374 to 574 µs".
  const VirtualNanos t = rt.node(0).clock().now();
  EXPECT_GE(t, 374 * kNanosPerMicro - 3 * kNanosPerMicro);
  EXPECT_LE(t, 574 * kNanosPerMicro);
}

TEST(Lock, OwnerCachedReacquireIsCheap) {
  Runtime rt(Config(2));
  rt.Run([&](Proc& p) {
    if (p.id() == 0) {
      p.Lock(0);
      p.Unlock(0);
      const VirtualNanos before = p.now();
      p.Lock(0);  // token still local
      p.Unlock(0);
      EXPECT_LT(p.now() - before, 10 * kNanosPerMicro);
    }
  });
  RunStats s = rt.CollectStats();
  EXPECT_EQ(s.net.messages(MessageKind::kLockRequest), 1u);  // only the first
}

TEST(Lock, MutualExclusionUnderContention) {
  Runtime rt(Config(8));
  auto counter = rt.Alloc<int>(4, "counter");
  std::atomic<int> in_section{0};
  std::atomic<int> max_seen{0};
  int final_value = 0;
  rt.Run([&](Proc& p) {
    for (int i = 0; i < 25; ++i) {
      p.Lock(3);
      const int now = in_section.fetch_add(1) + 1;
      int expected = max_seen.load();
      while (now > expected && !max_seen.compare_exchange_weak(expected, now)) {
      }
      p.Write(counter, 0, p.Read(counter, 0) + 1);
      in_section.fetch_sub(1);
      p.Unlock(3);
    }
    p.Barrier();
    if (p.id() == 0) final_value = p.Read(counter, 0);
  });
  EXPECT_EQ(max_seen.load(), 1);  // never two holders
  EXPECT_EQ(final_value, 8 * 25);
}

TEST(Lock, GrantCarriesWriteNoticesTransitively) {
  // p0 writes under lock, p1 acquires and writes, p2 acquires and must see
  // BOTH writes (transitive causality through the lock's vector clock).
  Runtime rt(Config(3));
  auto a = rt.AllocUnitAligned<int>(2048, "a");
  int seen0 = -1, seen1 = -1;
  rt.Run([&](Proc& p) {
    // Serialize acquisition order with barriers for determinism.
    if (p.id() == 0) {
      p.Lock(0);
      p.Write(a, 0, 10);
      p.Unlock(0);
    }
    p.Barrier();
    if (p.id() == 1) {
      p.Lock(0);
      p.Write(a, 1024, 20);  // different page from p0's write
      p.Unlock(0);
    }
    p.Barrier();
    if (p.id() == 2) {
      p.Lock(0);
      seen0 = p.Read(a, 0);
      seen1 = p.Read(a, 1024);
      p.Unlock(0);
    }
  });
  EXPECT_EQ(seen0, 10);
  EXPECT_EQ(seen1, 20);
}

TEST(Lock, TransfersCounted) {
  Runtime rt(Config(2));
  rt.Run([&](Proc& p) {
    for (int i = 0; i < 3; ++i) {
      p.Lock(7);
      p.Unlock(7);
      p.Barrier();  // alternate holders deterministically
    }
  });
  // Lock 7 changed hands at least twice (p0→p1 or p1→p0 per round).
  EXPECT_GE(rt.shared().locks->transfers(7), 2u);
}

// Per-lock condition variables: a release wakes only that lock's waiters
// instead of thundering every waiter in the service.  Drive many locks
// under real contention with an externally-forced round-robin acquire
// order, so every grant is a token transfer and the per-lock transfer
// counts are exactly determined — any lost wakeup deadlocks the test and
// any miscount breaks the equality.
TEST(Lock, PerLockWakeupsKeepTransferCountsExact) {
  constexpr int kProcs = 4;
  constexpr int kLocks = 8;
  constexpr int kRounds = 6;  // acquires per (lock, proc)
  Runtime rt(Config(kProcs));
  std::array<std::atomic<int>, kLocks> turn{};
  for (auto& t : turn) t.store(0);
  rt.Run([&](Proc& p) {
    for (int r = 0; r < kRounds; ++r) {
      for (int k = 0; k < kLocks; ++k) {
        // Round-robin gate: proc p acquires lock k in slot (r*kProcs+p).
        const int my_slot = r * kProcs + p.id();
        while (turn[k].load(std::memory_order_acquire) != my_slot) {
          std::this_thread::yield();
        }
        p.Lock(k);
        p.Unlock(k);
        turn[k].store(my_slot + 1, std::memory_order_release);
      }
    }
  });
  // Every acquire came from a different proc than the previous holder, so
  // every grant transferred the token: exactly kProcs * kRounds per lock.
  for (int k = 0; k < kLocks; ++k) {
    EXPECT_EQ(rt.shared().locks->transfers(k),
              static_cast<std::uint64_t>(kProcs * kRounds))
        << "lock " << k;
  }
}

// BarrierService must reset its per-generation VC accumulator: a second
// generation whose arrival clocks are LOWER than the first's must not
// inherit the first generation's maxima (matters for any future
// checkpoint/restore or clock-reset path; per-proc monotonicity hides it
// today).
TEST(Barrier, GenerationVectorClockDoesNotLeakForward) {
  BarrierService svc(2);
  VectorClock a(2), b(2);
  a[0] = 5;
  b[1] = 7;
  BarrierService::Result r1;
  std::thread t1([&] { r1 = svc.Arrive(0, a, 0, 0); });
  BarrierService::Result r1b = svc.Arrive(1, b, 0, 0);
  t1.join();
  EXPECT_EQ(r1b.global_vc[0], 5u);
  EXPECT_EQ(r1b.global_vc[1], 7u);

  // Fresh clocks, strictly below the first generation's.
  VectorClock c(2), d(2);
  c[0] = 1;
  d[1] = 2;
  BarrierService::Result r2;
  std::thread t2([&] { r2 = svc.Arrive(0, c, 0, 0); });
  BarrierService::Result r2b = svc.Arrive(1, d, 0, 0);
  t2.join();
  EXPECT_EQ(r2b.global_vc[0], 1u);
  EXPECT_EQ(r2b.global_vc[1], 2u);
  EXPECT_EQ(r2.global_vc[0], 1u);
  EXPECT_EQ(r2.global_vc[1], 2u);
}

// --- crash sweep (DESIGN.md §9) ----------------------------------------------
//
// LockService::OnCrash must leave the service fully operational for the
// survivors AND for the transparently-recovered victim: force-released
// locks publish the recovered clock, parked survivors get woken (the old
// code's FIFO assumed every queued waiter eventually arrives — a crashed
// waiter at the front would wedge the handoff), cached tokens die with
// the node, and the victim's in-flight release becomes an orphan no-op.

TEST(LockRecovery, CrashSweepForceReleasesAndUnblocksWaiters) {
  LockService svc(2, 4);
  // Proc 1 holds lock 0 and has a cached token on lock 1.
  (void)svc.Acquire(0, 1);
  (void)svc.Acquire(1, 1);
  VectorClock held_vc(4);
  held_vc[1] = 3;
  svc.Release(1, 1, held_vc, 100);  // owner stays 1 → token cached

  // Proc 2 parks behind the held lock on a real thread.
  LockService::Grant g2;
  std::thread waiter([&] { g2 = svc.Acquire(0, 2); });
  // Give it time to park; the sweep's force-release grants it either way.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  VectorClock crash_vc(4);
  crash_vc[1] = 7;
  svc.OnCrash(1, crash_vc, 5000);
  waiter.join();

  // The waiter took the force-released lock and observed exactly the
  // clock/time the sweep published on the victim's behalf.
  EXPECT_FALSE(g2.cached);
  EXPECT_EQ(g2.release_vc[1], 7u);
  EXPECT_EQ(g2.release_time, 5000);

  // The recovered victim's thread still executes its release of lock 0
  // (transparent recovery): an orphan no-op, not a double-release abort.
  svc.Release(0, 1, crash_vc, 6000);
  // The new holder releases normally.
  svc.Release(0, 2, crash_vc, 7000);

  // The cached token on lock 1 died with the node: the victim's next
  // acquire is a real transfer, not a cached local grant.
  const std::uint64_t transfers_before = svc.transfers(1);
  const LockService::Grant g1 = svc.Acquire(1, 1);
  EXPECT_FALSE(g1.cached);
  EXPECT_EQ(svc.transfers(1), transfers_before + 1);
  svc.Release(1, 1, crash_vc, 8000);
}

TEST(LockRecovery, CrashSweepKeepsSurvivorFifoOrderAndRequeuesVictim) {
  // Queue [victim, survivor] behind a holder.  The sweep erases the
  // victim; the survivor must be served first, and the (live, recovered)
  // victim's parked Acquire detects the erasure and deterministically
  // requeues at the back instead of wedging the handoff.
  LockService svc(1, 4);
  (void)svc.Acquire(0, 3);  // holder

  std::atomic<int> grant_order{0};
  int victim_rank = -1;
  int survivor_rank = -1;
  std::thread victim([&] {
    (void)svc.Acquire(0, 1);
    victim_rank = grant_order.fetch_add(1) + 1;
    svc.Release(0, 1, VectorClock(4), 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread survivor([&] {
    (void)svc.Acquire(0, 2);
    survivor_rank = grant_order.fetch_add(1) + 1;
    svc.Release(0, 2, VectorClock(4), 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  svc.OnCrash(1, VectorClock(4), 0);
  svc.Release(0, 3, VectorClock(4), 0);  // holder hands off
  victim.join();
  survivor.join();

  EXPECT_EQ(survivor_rank, 1);
  EXPECT_EQ(victim_rank, 2);
}

TEST(Runtime, RunTwiceRejected) {
  Runtime rt(Config(2));
  rt.Run([](Proc&) {});
  EXPECT_THROW(rt.Run([](Proc&) {}), CheckError);
}

TEST(Runtime, BodyExceptionPropagates) {
  RuntimeConfig cfg = Config(1);
  cfg.allow_sequential = true;
  Runtime rt(cfg);
  EXPECT_THROW(rt.Run([](Proc&) { throw std::runtime_error("app bug"); }),
               std::runtime_error);
}

}  // namespace
}  // namespace dsm

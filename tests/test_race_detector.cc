// Happens-before race detector (DESIGN.md §10).  The gates:
//
//   * RacyFuzz's injected schedule is reported EXACTLY — every planted
//     race, nothing else — under every backend × aggregation cell, with
//     the reference backend acting as the ordering oracle,
//   * every conformance app is certified race-free across the full
//     backend × aggregation matrix (zero reports), including under an
//     armed crash schedule (recovery must not manufacture reports),
//   * the checker is purely observational: modelled state is bit-identical
//     with race_check on and off, for a barrier app and a lock app alike,
//   * detector mechanics (epoch coverage, read-vector inflation, lock and
//     barrier ordering, observation-order normalization) hold on the raw
//     RaceDetector API.
#include <gtest/gtest.h>

#include <cctype>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/race_detector.h"
#include "apps/fuzz.h"
#include "apps/registry.h"

namespace dsm::apps {
namespace {

struct AggPoint {
  const char* label;
  AggregationMode mode;
  int ppu;
};

const AggPoint kAggs[] = {
    {"4K", AggregationMode::kStatic, 1},
    {"16K", AggregationMode::kStatic, 4},
    {"Dyn", AggregationMode::kDynamic, 1},
};

const BackendKind kBackends[] = {BackendKind::kLrc, BackendKind::kHlrc,
                                 BackendKind::kReference};

RuntimeConfig CellConfig(BackendKind backend, const AggPoint& agg,
                         int num_procs) {
  RuntimeConfig cfg;
  cfg.num_procs = num_procs;
  cfg.backend = backend;
  cfg.aggregation = agg.mode;
  cfg.pages_per_unit = agg.ppu;
  cfg.race_check = true;
  return cfg;
}

std::string ReportDump(const RaceStats& races) {
  std::string out;
  for (const RaceReport& r : races.reports) out += "  " + r.ToString() + "\n";
  return out;
}

// Every modelled quantity, bit for bit (host-side telemetry — mem, races,
// recovery wall time — excluded, same discipline as tests/test_recovery.cc).
void ExpectModelledStateEqual(const RunStats& a, const RunStats& b,
                              const std::string& where) {
  EXPECT_EQ(a.exec_time, b.exec_time) << where;
  EXPECT_EQ(a.node_times, b.node_times) << where;

  const CommBreakdown& ca = a.comm;
  const CommBreakdown& cb = b.comm;
  EXPECT_EQ(ca.useful_messages, cb.useful_messages) << where;
  EXPECT_EQ(ca.useless_messages, cb.useless_messages) << where;
  EXPECT_EQ(ca.sync_messages, cb.sync_messages) << where;
  EXPECT_EQ(ca.useful_data_bytes, cb.useful_data_bytes) << where;
  EXPECT_EQ(ca.delivered_data_bytes, cb.delivered_data_bytes) << where;
  EXPECT_EQ(ca.read_faults, cb.read_faults) << where;
  EXPECT_EQ(ca.write_faults, cb.write_faults) << where;
  EXPECT_EQ(ca.twins_created, cb.twins_created) << where;
  EXPECT_EQ(ca.diffs_created, cb.diffs_created) << where;
  EXPECT_EQ(ca.diffs_applied, cb.diffs_applied) << where;
  EXPECT_EQ(ca.units_invalidated, cb.units_invalidated) << where;
  EXPECT_EQ(ca.signature.ToString(), cb.signature.ToString()) << where;

  for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
    const auto kind = static_cast<MessageKind>(k);
    EXPECT_EQ(a.net.messages(kind), b.net.messages(kind)) << where;
    EXPECT_EQ(a.net.bytes(kind), b.net.bytes(kind)) << where;
  }
}

// --- injected races: exact match across the full matrix ----------------------

TEST(RacyFuzz, InjectedScheduleReportedExactlyEverywhere) {
  double first_result = 0.0;
  bool have_first = false;
  for (BackendKind backend : kBackends) {
    for (const AggPoint& agg : kAggs) {
      const RuntimeConfig cfg = CellConfig(backend, agg, 4);
      const std::string where =
          std::string("RacyFuzz @ ") + agg.label + "/" + cfg.BackendLabel();
      RacyFuzz app(FuzzDataset("tiny"));
      const AppRun run = Execute(app, cfg);

      ASSERT_TRUE(run.stats.races.checked) << where;
      EXPECT_EQ(run.stats.races.dropped, 0u) << where;
      const std::vector<RaceReport> expected =
          app.ExpectedRaces(cfg.num_procs, cfg.unit_bytes());
      ASSERT_FALSE(expected.empty()) << where;
      EXPECT_EQ(run.stats.races.reports, expected)
          << where << "\ngot:\n"
          << ReportDump(run.stats.races);

      // The racy values never feed the checksum, so the result stays
      // bit-identical across every cell even though the program races.
      if (!have_first) {
        first_result = run.result;
        have_first = true;
        EXPECT_NE(run.result, 0.0) << where;
      } else {
        EXPECT_EQ(run.result, first_result) << where;
      }
    }
  }
}

TEST(RacyFuzz, ReportsAreRunToRunDeterministic) {
  // Same seed, same config → the identical report list, order included.
  std::vector<RaceReport> first;
  for (int round = 0; round < 3; ++round) {
    const RuntimeConfig cfg = CellConfig(BackendKind::kLrc, kAggs[0], 4);
    RacyFuzz app(FuzzDataset("tiny"));
    const AppRun run = Execute(app, cfg);
    if (round == 0) {
      first = run.stats.races.reports;
      ASSERT_FALSE(first.empty());
    } else {
      EXPECT_EQ(run.stats.races.reports, first) << "round " << round;
    }
  }
}

TEST(RacyFuzz, StillExactUnderAnArmedCrashSchedule) {
  // A crash + transparent recovery must neither lose an injected race nor
  // add one: recovery replay bypasses the access hooks, and the crash
  // sweep republishes the victim's lock clocks (no locks here, but the
  // barrier-crash path exercises the clock hand-off through recovery).
  RuntimeConfig cfg = CellConfig(BackendKind::kHlrc, kAggs[0], 4);
  cfg.fault = FaultPlan::AtBarrier(/*victim=*/1, /*barrier=*/4);
  RacyFuzz app(FuzzDataset("tiny"));
  const AppRun run = Execute(app, cfg);
  ASSERT_TRUE(run.stats.races.checked);
  EXPECT_GT(run.stats.recovery_events, 0u);
  EXPECT_EQ(run.stats.races.reports,
            app.ExpectedRaces(cfg.num_procs, cfg.unit_bytes()))
      << "got:\n"
      << ReportDump(run.stats.races);
}

// --- the conformance suite is certified race-free ----------------------------

class RaceFreeSuiteTest
    : public ::testing::TestWithParam<ConformanceScenario> {};

TEST_P(RaceFreeSuiteTest, ZeroReportsAcrossTheMatrix) {
  const ConformanceScenario& s = GetParam();
  for (BackendKind backend : kBackends) {
    for (const AggPoint& agg : kAggs) {
      const RuntimeConfig cfg = CellConfig(backend, agg, s.num_procs);
      const std::string where = s.app + " @ " + std::string(agg.label) + "/" +
                                cfg.BackendLabel();
      auto app = MakeApp(s.app, s.dataset);
      const AppRun run = Execute(*app, cfg);
      ASSERT_TRUE(run.stats.races.checked) << where;
      EXPECT_TRUE(run.stats.races.reports.empty())
          << where << " reported:\n"
          << ReportDump(run.stats.races);
      EXPECT_EQ(run.stats.races.dropped, 0u) << where;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, RaceFreeSuiteTest, ::testing::ValuesIn(ConformanceScenarios()),
    [](const ::testing::TestParamInfo<ConformanceScenario>& info) {
      std::string name = info.param.app;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(RaceFreeSuite, ZeroReportsUnderCrashSchedules) {
  // Recovery must not self-report: a barrier-point crash under LRC
  // (checkpoint replay) and a mid-interval crash of a lock-heavy app
  // under both protocol backends (force-released locks go through the
  // crash sweep) all stay clean.
  struct Case {
    const char* app;
    const char* dataset;
    BackendKind backend;
    FaultPlan plan;
  };
  const Case cases[] = {
      {"Jacobi", "tiny", BackendKind::kLrc, FaultPlan::AtBarrier(1, 2)},
      {"Fuzz", "tiny", BackendKind::kLrc, FaultPlan::AfterRelease(2, 5)},
      {"Fuzz", "tiny", BackendKind::kHlrc, FaultPlan::AfterRelease(2, 5)},
  };
  for (const Case& c : cases) {
    RuntimeConfig cfg = CellConfig(c.backend, kAggs[0], 4);
    cfg.fault = c.plan;
    if (c.backend == BackendKind::kLrc) cfg.gc_interval_barriers = 2;
    const std::string where = std::string(c.app) + " @ " +
                              cfg.BackendLabel() + " fault " +
                              cfg.fault.Label();
    auto app = MakeApp(c.app, c.dataset);
    const AppRun run = Execute(*app, cfg);
    ASSERT_TRUE(run.stats.races.checked) << where;
    EXPECT_GT(run.stats.recovery_events, 0u) << where;
    EXPECT_TRUE(run.stats.races.reports.empty())
        << where << " reported:\n"
        << ReportDump(run.stats.races);
  }
}

// --- the checker is purely observational -------------------------------------

TEST(RaceCheckObservational, BarrierAppModelledStateBitIdenticalOnAndOff) {
  // Jacobi's modelled state is run-to-run stable, so every modelled
  // number must be bit-identical with the checker on and off.
  for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
    AppRun runs[2];
    for (int on = 0; on < 2; ++on) {
      RuntimeConfig cfg = CellConfig(backend, kAggs[0], 4);
      cfg.race_check = on != 0;
      auto app = MakeApp("Jacobi", "tiny");
      runs[on] = Execute(*app, cfg);
    }
    const std::string where =
        std::string("Jacobi @ ") +
        (backend == BackendKind::kHlrc ? "HLRC" : "LRC");
    EXPECT_EQ(runs[0].result, runs[1].result) << where;
    ExpectModelledStateEqual(runs[0].stats, runs[1].stats, where);
    EXPECT_FALSE(runs[0].stats.races.checked) << where;
    ASSERT_TRUE(runs[1].stats.races.checked) << where;
    EXPECT_TRUE(runs[1].stats.races.reports.empty()) << where;
  }
}

TEST(RaceCheckObservational, LockChainModelledStateBitIdenticalOnAndOff) {
  // Fuzz's lock statistics are host-order dependent (grant order follows
  // arrival order), so its A/B below compares the checksum only.  The
  // lock-path bit-identity gate instead uses a chain with exactly one
  // contender per barrier interval — grant order, chain positions and
  // therefore every modelled number are deterministic.
  for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
    RunStats stats[2];
    int results[2] = {0, 0};
    for (int on = 0; on < 2; ++on) {
      RuntimeConfig cfg = CellConfig(backend, kAggs[0], 4);
      cfg.race_check = on != 0;
      cfg.heap_bytes = 1u << 20;
      Runtime rt(cfg);
      auto data = rt.Alloc<int>(64, "chain");
      std::mutex mu;
      rt.Run([&](Proc& p) {
        for (int round = 0; round < 12; ++round) {
          if (p.id() == round % p.nprocs()) {
            p.Lock(0);
            const int v = p.Read(data, 0);
            p.Write(data, 0, v + round + 1);
            p.Unlock(0);
          }
          p.Barrier();
        }
        if (p.id() == 0) {
          std::lock_guard<std::mutex> g(mu);
          results[on] = p.Read(data, 0);
        }
      });
      stats[on] = rt.CollectStats();
    }
    const std::string where =
        std::string("lock-chain @ ") +
        (backend == BackendKind::kHlrc ? "HLRC" : "LRC");
    EXPECT_EQ(results[0], results[1]) << where;
    EXPECT_EQ(results[0], 78) << where;  // 1 + 2 + ... + 12
    ExpectModelledStateEqual(stats[0], stats[1], where);
    EXPECT_FALSE(stats[0].races.checked) << where;
    ASSERT_TRUE(stats[1].races.checked) << where;
    EXPECT_TRUE(stats[1].races.reports.empty()) << where;
  }
}

TEST(RaceCheckObservational, LockAppChecksumIdenticalOnAndOffAndClean) {
  // Fuzz's checksum commutes across lock schedules (rel_tol 0), so the
  // result must survive the checker even though its modelled statistics
  // are host-order dependent.
  for (BackendKind backend : {BackendKind::kLrc, BackendKind::kHlrc}) {
    AppRun runs[2];
    for (int on = 0; on < 2; ++on) {
      RuntimeConfig cfg = CellConfig(backend, kAggs[0], 4);
      cfg.race_check = on != 0;
      auto app = MakeApp("Fuzz", "tiny");
      runs[on] = Execute(*app, cfg);
    }
    const std::string where =
        std::string("Fuzz @ ") +
        (backend == BackendKind::kHlrc ? "HLRC" : "LRC");
    EXPECT_EQ(runs[0].result, runs[1].result) << where;
    ASSERT_TRUE(runs[1].stats.races.checked) << where;
    EXPECT_TRUE(runs[1].stats.races.reports.empty())
        << where << " reported:\n"
        << ReportDump(runs[1].stats.races);
  }
}

TEST(RaceCheckObservational, StatsLineAppearsOnlyWhenChecked) {
  RuntimeConfig off = CellConfig(BackendKind::kLrc, kAggs[0], 4);
  off.race_check = false;
  auto app_off = MakeApp("Jacobi", "tiny");
  const AppRun run_off = Execute(*app_off, off);
  EXPECT_EQ(run_off.stats.ToString().find("races:"), std::string::npos);

  const RuntimeConfig on = CellConfig(BackendKind::kLrc, kAggs[0], 4);
  auto app_on = MakeApp("Jacobi", "tiny");
  const AppRun run_on = Execute(*app_on, on);
  EXPECT_NE(run_on.stats.ToString().find("races: 0"), std::string::npos);
}

}  // namespace
}  // namespace dsm::apps

// --- raw detector mechanics --------------------------------------------------

namespace dsm {
namespace {

constexpr UnitId kUnit = 0;
constexpr std::uint32_t kWord = 0;

// The detector holds mutexes (immovable); tests construct it in place.
struct DetectorFixture {
  explicit DetectorFixture(int procs = 2)
      : det(procs, /*num_units=*/4, /*words_per_unit=*/1024,
            /*num_locks=*/4) {}
  RaceDetector det;
};

TEST(RaceDetectorMechanics, UnorderedWriteWriteIsOneReport) {
  DetectorFixture f;
  RaceDetector& det = f.det;
  det.OnAccess(0, kUnit, kWord, 1, /*is_write=*/true);
  det.OnAccess(1, kUnit, kWord, 1, /*is_write=*/true);
  ASSERT_EQ(det.report_count(), 1u);
  const RaceStats stats = det.Collect();
  const RaceReport& r = stats.reports[0];
  EXPECT_EQ(r.first, (RaceSite{0, true, 0, 0}));
  EXPECT_EQ(r.second, (RaceSite{1, true, 0, 0}));
}

TEST(RaceDetectorMechanics, NormalizationIsObservationOrderIndependent) {
  DetectorFixture ff, fr;
  RaceDetector& forward = ff.det;
  forward.OnAccess(0, kUnit, kWord, 1, true);
  forward.OnAccess(1, kUnit, kWord, 1, true);
  RaceDetector& reversed = fr.det;
  reversed.OnAccess(1, kUnit, kWord, 1, true);
  reversed.OnAccess(0, kUnit, kWord, 1, true);
  EXPECT_EQ(forward.Collect().reports, reversed.Collect().reports);
}

TEST(RaceDetectorMechanics, BarrierOrdersAccesses) {
  DetectorFixture f;
  RaceDetector& det = f.det;
  det.OnAccess(0, kUnit, kWord, 1, true);
  det.OnBarrierArrive(0);
  det.OnBarrierArrive(1);
  det.OnBarrierDepart(0);
  det.OnBarrierDepart(1);
  det.OnAccess(1, kUnit, kWord, 1, true);
  EXPECT_EQ(det.report_count(), 0u);
}

TEST(RaceDetectorMechanics, LockChainOrdersAccesses) {
  DetectorFixture f;
  RaceDetector& det = f.det;
  det.OnLockAcquire(0, /*lock_id=*/0, /*cached=*/false, /*chain_pos=*/0);
  det.OnAccess(0, kUnit, kWord, 1, true);
  det.OnLockRelease(0, 0);
  det.OnLockAcquire(1, 0, /*cached=*/false, /*chain_pos=*/1);
  det.OnAccess(1, kUnit, kWord, 1, true);
  det.OnLockRelease(1, 0);
  EXPECT_EQ(det.report_count(), 0u);

  // A DIFFERENT lock orders nothing: the same pattern on word 1 under
  // disjoint locks must report, stamped with the acquires' chain
  // positions as sub-phases.
  det.OnLockAcquire(0, 1, false, /*chain_pos=*/0);
  det.OnAccess(0, kUnit, kWord + 1, 1, true);
  det.OnLockRelease(0, 1);
  det.OnLockAcquire(1, 2, false, /*chain_pos=*/0);
  det.OnAccess(1, kUnit, kWord + 1, 1, true);
  det.OnLockRelease(1, 2);
  ASSERT_EQ(det.report_count(), 1u);
}

TEST(RaceDetectorMechanics, ConcurrentReadersInflateAndWriterReportsBoth) {
  DetectorFixture f(3);
  RaceDetector& det = f.det;
  det.OnAccess(0, kUnit, kWord, 1, /*is_write=*/false);
  det.OnAccess(1, kUnit, kWord, 1, /*is_write=*/false);  // inflates
  EXPECT_EQ(det.report_count(), 0u);  // reads never race with reads
  det.OnAccess(2, kUnit, kWord, 1, /*is_write=*/true);
  const RaceStats stats = det.Collect();
  ASSERT_EQ(stats.reports.size(), 2u);
  EXPECT_EQ(stats.reports[0].first.proc, 0);
  EXPECT_EQ(stats.reports[1].first.proc, 1);
  for (const RaceReport& r : stats.reports) {
    EXPECT_FALSE(r.first.is_write);
    EXPECT_EQ(r.second, (RaceSite{2, true, 0, 0}));
  }
}

TEST(RaceDetectorMechanics, SameEpochAccessesAndRangesDeduplicate) {
  DetectorFixture f;
  RaceDetector& det = f.det;
  // A multi-word racy range is one report per word, deduped across
  // repeats within the same epoch.
  det.OnAccess(0, kUnit, kWord, 4, true);
  det.OnAccess(0, kUnit, kWord, 4, true);  // same epoch: no-op
  det.OnAccess(1, kUnit, kWord, 4, true);
  det.OnAccess(1, kUnit, kWord, 4, true);
  EXPECT_EQ(det.report_count(), 4u);
}

TEST(RaceDetectorMechanics, CrashSweepPublishesHeldLockClocks) {
  // P0 acquires a lock, writes, then crashes while holding it.  The
  // sweep must publish P0's clock on the lock so P1's post-crash grant
  // is ordered after P0's write — exactly what P0's own release would
  // have published.
  DetectorFixture f;
  RaceDetector& det = f.det;
  det.OnLockAcquire(0, 0, false, 0);
  det.OnAccess(0, kUnit, kWord, 1, true);
  det.OnCrashSweep(0);
  det.OnLockAcquire(1, 0, false, 1);
  det.OnAccess(1, kUnit, kWord, 1, true);
  EXPECT_EQ(det.report_count(), 0u);
}

}  // namespace
}  // namespace dsm

// Small integer-bucket histogram used for the paper's "false sharing
// signature" (Figure 3): the distribution of the number of concurrent
// writers contacted at page faults, with each bucket split into useful and
// useless message exchanges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dsm {

// Histogram over small non-negative integer keys.  Each bucket carries two
// counts (useful/useless) because Figure 3 stacks them in one bar.
class SplitHistogram {
 public:
  SplitHistogram() = default;
  explicit SplitHistogram(std::size_t num_buckets) : buckets_(num_buckets) {}

  void AddUseful(std::size_t bucket, std::uint64_t n = 1);
  void AddUseless(std::size_t bucket, std::uint64_t n = 1);

  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t useful(std::size_t bucket) const;
  std::uint64_t useless(std::size_t bucket) const;
  std::uint64_t total(std::size_t bucket) const {
    return useful(bucket) + useless(bucket);
  }
  std::uint64_t grand_total() const;

  // Bucket counts normalized so the largest bucket is 1.0 (the paper's
  // Figure 3 normalizes each signature to its own maximum).
  std::vector<double> NormalizedTotals() const;

  // Merge another histogram into this one (buckets grow as needed).
  void Merge(const SplitHistogram& other);

  // Multi-line ASCII rendering, one row per non-empty bucket.
  std::string ToString() const;

 private:
  struct Bucket {
    std::uint64_t useful = 0;
    std::uint64_t useless = 0;
  };
  void EnsureBucket(std::size_t bucket);
  std::vector<Bucket> buckets_;
};

}  // namespace dsm

#include "common/histogram.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace dsm {

void SplitHistogram::EnsureBucket(std::size_t bucket) {
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1);
}

void SplitHistogram::AddUseful(std::size_t bucket, std::uint64_t n) {
  EnsureBucket(bucket);
  buckets_[bucket].useful += n;
}

void SplitHistogram::AddUseless(std::size_t bucket, std::uint64_t n) {
  EnsureBucket(bucket);
  buckets_[bucket].useless += n;
}

std::uint64_t SplitHistogram::useful(std::size_t bucket) const {
  return bucket < buckets_.size() ? buckets_[bucket].useful : 0;
}

std::uint64_t SplitHistogram::useless(std::size_t bucket) const {
  return bucket < buckets_.size() ? buckets_[bucket].useless : 0;
}

std::uint64_t SplitHistogram::grand_total() const {
  std::uint64_t sum = 0;
  for (const auto& b : buckets_) sum += b.useful + b.useless;
  return sum;
}

std::vector<double> SplitHistogram::NormalizedTotals() const {
  std::uint64_t max = 0;
  for (const auto& b : buckets_) max = std::max(max, b.useful + b.useless);
  std::vector<double> out(buckets_.size(), 0.0);
  if (max == 0) return out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = static_cast<double>(total(i)) / static_cast<double>(max);
  }
  return out;
}

void SplitHistogram::Merge(const SplitHistogram& other) {
  EnsureBucket(other.buckets_.empty() ? 0 : other.buckets_.size() - 1);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i].useful += other.buckets_[i].useful;
    buckets_[i].useless += other.buckets_[i].useless;
  }
}

std::string SplitHistogram::ToString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (total(i) == 0) continue;
    out << "  [" << i << "] useful=" << useful(i) << " useless=" << useless(i)
        << "\n";
  }
  return out.str();
}

}  // namespace dsm

// Lightweight runtime checking for the pagedsm library.
//
// DSM_CHECK is always on (protocol invariants must hold in release builds:
// a silently corrupted page table produces wrong *science*, not just a
// crash).  DSM_DCHECK compiles out in NDEBUG builds and is meant for
// hot-path assertions (per shared-memory access).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dsm {

// Thrown by DSM_CHECK failures.  Tests rely on this being an exception (so
// death tests are not needed) and on the message carrying the expression.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

// Stream-collector so call sites can write
//   DSM_CHECK(a == b) << "a=" << a;
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() noexcept(false) {
    CheckFailed(file_, line_, expr_, stream_.str());
  }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

struct Voidify {
  // Lowest-precedence operator so the macro's ternary works with <<.
  void operator&&(const CheckMessage&) {}
};
}  // namespace internal

#define DSM_CHECK(cond)                                        \
  (cond) ? (void)0                                             \
         : ::dsm::internal::Voidify{} &&                       \
               ::dsm::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define DSM_CHECK_EQ(a, b) DSM_CHECK((a) == (b))
#define DSM_CHECK_NE(a, b) DSM_CHECK((a) != (b))
#define DSM_CHECK_LT(a, b) DSM_CHECK((a) < (b))
#define DSM_CHECK_LE(a, b) DSM_CHECK((a) <= (b))
#define DSM_CHECK_GT(a, b) DSM_CHECK((a) > (b))
#define DSM_CHECK_GE(a, b) DSM_CHECK((a) >= (b))

#ifdef NDEBUG
#define DSM_DCHECK(cond) (void)0
#else
#define DSM_DCHECK(cond) DSM_CHECK(cond)
#endif

}  // namespace dsm

#include "common/check.h"

namespace dsm::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::ostringstream out;
  out << "DSM_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!msg.empty()) out << " — " << msg;
  throw CheckError(out.str());
}

}  // namespace dsm::internal

#include "common/rng.h"

#include "common/check.h"

namespace dsm {

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::Next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

std::uint64_t Xoshiro256::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::UniformInt(std::uint64_t bound) {
  DSM_CHECK_GT(bound, 0u);
  // Lemire's method: multiply-high maps a 64-bit draw to [0, bound).
  const unsigned __int128 product =
      static_cast<unsigned __int128>(Next()) * bound;
  return static_cast<std::uint64_t>(product >> 64);
}

std::int64_t Xoshiro256::UniformRange(std::int64_t lo, std::int64_t hi) {
  DSM_CHECK_LE(lo, hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(UniformInt(span));
}

double Xoshiro256::UniformDouble() {
  // 53 high bits → [0,1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

}  // namespace dsm

// Deterministic pseudo-random number generation.
//
// Everything in pagedsm that needs randomness (workload generators, TSP city
// layouts, property tests) uses this xoshiro256** generator seeded
// explicitly, never std::random_device, so every figure bench is
// reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace dsm {

// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
// Reference: Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next();

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
// Satisfies the UniformRandomBitGenerator concept so it can drive
// std::uniform_int_distribution etc., though pagedsm mostly uses the
// convenience members below to avoid libstdc++ distribution variance.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }
  std::uint64_t Next();

  // Uniform in [0, bound) via Lemire's multiply-shift (no modulo bias for
  // our purposes; bound must be > 0).
  std::uint64_t UniformInt(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t UniformRange(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

 private:
  std::uint64_t s_[4];
};

}  // namespace dsm

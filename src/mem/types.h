// Shared primitive types for the paged-memory substrate.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dsm {

// Byte offset into the global shared address space.
using GlobalAddr = std::uint64_t;

// Index of a consistency unit (page, or aggregate of pages).
using UnitId = std::uint32_t;

// Index of a 4-byte word in the global address space.
using WordIndex = std::uint64_t;

// Logical processor id, 0-based.
using ProcId = int;

// Per-processor interval sequence number (1-based; 0 = "nothing seen").
using Seq = std::uint32_t;

// The paper's word granularity: diffs and usefulness classification operate
// on 32-bit words, matching TreadMarks on 32-bit Pentiums.
constexpr std::size_t kWordBytes = 4;

// Hardware VM page size of the paper's platform.
constexpr std::size_t kBasePageBytes = 4096;

constexpr WordIndex ToWordIndex(GlobalAddr addr) { return addr / kWordBytes; }

}  // namespace dsm

#include "mem/global_heap.h"

#include <bit>

#include "common/check.h"

namespace dsm {

GlobalHeap::GlobalHeap(std::size_t heap_bytes, std::size_t unit_bytes)
    : heap_bytes_(heap_bytes), unit_bytes_(unit_bytes) {
  DSM_CHECK(std::has_single_bit(unit_bytes))
      << "unit size must be a power of two, got " << unit_bytes;
  DSM_CHECK_GE(unit_bytes, kBasePageBytes);
  DSM_CHECK_EQ(heap_bytes % unit_bytes, 0u)
      << "heap " << heap_bytes << " not a multiple of unit " << unit_bytes;
  unit_shift_ = std::countr_zero(unit_bytes);
}

GlobalAddr GlobalHeap::Alloc(std::size_t bytes, std::size_t align,
                             const char* name) {
  DSM_CHECK(std::has_single_bit(align)) << "alignment must be a power of two";
  DSM_CHECK_GE(align, kWordBytes)
      << "allocations must be at least word-aligned";
  DSM_CHECK_GT(bytes, 0u);
  const std::size_t start = (next_ + align - 1) & ~(align - 1);
  DSM_CHECK_LE(start + bytes, heap_bytes_)
      << "global heap exhausted allocating "
      << (name != nullptr ? name : "<anon>") << " (" << bytes << " bytes, "
      << next_ << " already used of " << heap_bytes_ << ")";
  next_ = start + bytes;
  allocations_.push_back(
      {name != nullptr ? name : "<anon>", static_cast<GlobalAddr>(start),
       bytes});
  return static_cast<GlobalAddr>(start);
}

GlobalAddr GlobalHeap::AllocUnitAligned(std::size_t bytes, const char* name) {
  return Alloc(bytes, unit_bytes_, name);
}

}  // namespace dsm

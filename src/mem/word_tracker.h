// Word-level usefulness instrumentation (paper §5.3) and per-node read
// interest.
//
// The authors instrumented all loads/stores and diff applications:
//   "After applying a diff to a region of a page, if a word from that
//    region is read before being overwritten, that word is counted as
//    useful data.  If a word is never read or overwritten before being
//    read, it is counted as useless data.  A useless message is a message
//    that carries no useful data."
//
// WordTracker implements exactly that, per node.  Every word delivered by a
// diff is marked *fresh* and tagged with the delivering message's id.  The
// first subsequent local read credits the message with one useful word and
// clears the mark; a local write clears the mark without credit; a newer
// delivery overwrites the tag (the older message never gets the credit).
// At finalization, a message's useless words = delivered − credited.
//
// Storage is one uint32 per word, allocated lazily per consistency unit, so
// only units that ever receive diffs pay for tracking.  Value 0 = not
// fresh; value v>0 = fresh from message id v-1.  A per-unit count of live
// fresh tags makes the hot path O(1) once a unit's deliveries have all
// been read or overwritten: OnRead/OnWrite on an exhausted unit is a
// single counter load, and the word loop stops as soon as the last live
// tag in range dies.
//
// Read interest (archive GC's read-aware flattening, DESIGN.md §6): the
// tracker additionally accumulates a monotone per-unit bitmap of every
// word whose *delivery this node ever consumed* — set at the credit site,
// which already runs only on the slow path (live fresh tags), so the read
// fast path pays nothing.  For foreign-written data this converges on
// "words this node reads" after one delivery cycle: any read of a
// repeatedly-delivered word credits it on the next delivery.  The GC
// consults the bitmap to elide flattened chains none of whose words the
// pending node ever consumed (Water's aux/force slots); a mispredicted
// later read is data-safe — the words are silently refreshed from the
// canonical base at fault time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/diff.h"
#include "mem/types.h"

namespace dsm {

class WordTracker {
 public:
  // `words_per_unit` = unit_bytes / kWordBytes.
  WordTracker(std::size_t num_units, std::size_t words_per_unit);

  // A diff from message `msg_id` wrote the word at (unit, word_in_unit).
  void Deliver(UnitId unit, std::uint32_t word_in_unit, std::uint32_t msg_id);

  // Local read of `count` consecutive words.  Calls `credit(msg_id)` once
  // per fresh word consumed.  Hot path: units with no live fresh tag take
  // a single counter check (fresh_[unit] > 0 implies tag storage exists).
  template <typename Fn>
  void OnRead(UnitId unit, std::uint32_t word_in_unit, std::uint32_t count,
              Fn&& credit) {
    std::uint32_t live = fresh_[unit];
    if (live == 0) return;
    if (interest_enabled_) [[unlikely]] {
      // Lock programs only: same loop plus interest marking, kept out of
      // line so the common credit loop below stays tight.
      OnReadWithInterest(unit, word_in_unit, count,
                         static_cast<Fn&&>(credit));
      return;
    }
    std::uint32_t* tags = units_[unit].get();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t& tag = tags[word_in_unit + i];
      if (tag != 0) {
        credit(tag - 1);
        tag = 0;
        if (--live == 0) break;  // rest of the unit holds no fresh word
      }
    }
    fresh_[unit] = live;
  }

  // Local write of `count` consecutive words: fresh marks die uncredited.
  void OnWrite(UnitId unit, std::uint32_t word_in_unit, std::uint32_t count) {
    std::uint32_t live = fresh_[unit];
    if (live == 0) return;
    std::uint32_t* tags = units_[unit].get();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t& tag = tags[word_in_unit + i];
      if (tag != 0) {
        tag = 0;
        if (--live == 0) break;
      }
    }
    fresh_[unit] = live;
  }

  // --- read interest (monotone; consulted only by the archive GC) ----------

  // Start accumulating read interest (idempotent).  Called by the
  // protocol when this node first touches a lock or learns of a
  // lock-release interval; earlier reads go unrecorded, which is safe —
  // an under-full interest set only means a mispredicted elision, and
  // those refresh from the canonical base.
  void EnableInterest() { interest_enabled_ = true; }

  // True iff this node ever consumed a delivery of any word covered by
  // `runs` in `unit`.
  bool ReadsAnyOf(UnitId unit, const std::vector<DiffRun>& runs) const;

  bool HasTracking(UnitId unit) const { return units_[unit] != nullptr; }

  // Live fresh tags in `unit` (0 = the hot paths early-out).
  std::uint32_t fresh_count(UnitId unit) const { return fresh_[unit]; }

  // Testing hook: raw tag for one word (0 = not fresh).
  std::uint32_t Tag(UnitId unit, std::uint32_t word_in_unit) const;

 private:
  void EnsureUnit(UnitId unit);
  std::uint64_t* EnsureInterest(UnitId unit);

  // Credit loop for lock programs: consumes fresh tags AND records each
  // consumed word in the interest bitmap.  Out of the inline hot path.
  template <typename Fn>
  [[gnu::noinline]] void OnReadWithInterest(UnitId unit,
                                            std::uint32_t word_in_unit,
                                            std::uint32_t count,
                                            Fn&& credit) {
    std::uint32_t live = fresh_[unit];
    std::uint32_t* tags = units_[unit].get();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t& tag = tags[word_in_unit + i];
      if (tag != 0) {
        credit(tag - 1);
        tag = 0;
        NoteCredit(unit, word_in_unit + i);
        if (--live == 0) break;
      }
    }
    fresh_[unit] = live;
  }

  // Mark one consumed-delivery word.  Reached only through
  // OnReadWithInterest, i.e. only once the node has seen lock traffic
  // (EnableInterest): read interest is consulted exclusively for
  // lock-release records, so barrier-only programs never execute this.
  void NoteCredit(UnitId unit, std::uint32_t word_in_unit) {
    std::uint64_t* bits = interest_[unit].get();
    if (bits == nullptr) bits = EnsureInterest(unit);
    bits[word_in_unit >> 6] |= std::uint64_t{1} << (word_in_unit & 63);
  }

  std::size_t words_per_unit_;
  bool interest_enabled_ = false;
  std::vector<std::unique_ptr<std::uint32_t[]>> units_;
  std::vector<std::uint32_t> fresh_;  // live (non-zero) tags per unit
  // One bit per word ever read, lazily allocated per unit (read-interest).
  std::vector<std::unique_ptr<std::uint64_t[]>> interest_;
};

}  // namespace dsm

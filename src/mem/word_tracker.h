// Word-level usefulness instrumentation (paper §5.3).
//
// The authors instrumented all loads/stores and diff applications:
//   "After applying a diff to a region of a page, if a word from that
//    region is read before being overwritten, that word is counted as
//    useful data.  If a word is never read or overwritten before being
//    read, it is counted as useless data.  A useless message is a message
//    that carries no useful data."
//
// WordTracker implements exactly that, per node.  Every word delivered by a
// diff is marked *fresh* and tagged with the delivering message's id.  The
// first subsequent local read credits the message with one useful word and
// clears the mark; a local write clears the mark without credit; a newer
// delivery overwrites the tag (the older message never gets the credit).
// At finalization, a message's useless words = delivered − credited.
//
// Storage is one uint32 per word, allocated lazily per consistency unit, so
// only units that ever receive diffs pay for tracking.  Value 0 = not
// fresh; value v>0 = fresh from message id v-1.  A per-unit count of live
// fresh tags makes the hot path O(1) once a unit's deliveries have all
// been read or overwritten: OnRead/OnWrite on an exhausted unit is a
// single counter load, and the word loop stops as soon as the last live
// tag in range dies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/types.h"

namespace dsm {

class WordTracker {
 public:
  // `words_per_unit` = unit_bytes / kWordBytes.
  WordTracker(std::size_t num_units, std::size_t words_per_unit);

  // A diff from message `msg_id` wrote the word at (unit, word_in_unit).
  void Deliver(UnitId unit, std::uint32_t word_in_unit, std::uint32_t msg_id);

  // Local read of `count` consecutive words.  Calls `credit(msg_id)` once
  // per fresh word consumed.  Hot path: units with no live fresh tag take
  // a single counter check (fresh_[unit] > 0 implies tag storage exists).
  template <typename Fn>
  void OnRead(UnitId unit, std::uint32_t word_in_unit, std::uint32_t count,
              Fn&& credit) {
    std::uint32_t live = fresh_[unit];
    if (live == 0) return;
    std::uint32_t* tags = units_[unit].get();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t& tag = tags[word_in_unit + i];
      if (tag != 0) {
        credit(tag - 1);
        tag = 0;
        if (--live == 0) break;  // rest of the unit holds no fresh word
      }
    }
    fresh_[unit] = live;
  }

  // Local write of `count` consecutive words: fresh marks die uncredited.
  void OnWrite(UnitId unit, std::uint32_t word_in_unit, std::uint32_t count) {
    std::uint32_t live = fresh_[unit];
    if (live == 0) return;
    std::uint32_t* tags = units_[unit].get();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t& tag = tags[word_in_unit + i];
      if (tag != 0) {
        tag = 0;
        if (--live == 0) break;
      }
    }
    fresh_[unit] = live;
  }

  bool HasTracking(UnitId unit) const { return units_[unit] != nullptr; }

  // Live fresh tags in `unit` (0 = the hot paths early-out).
  std::uint32_t fresh_count(UnitId unit) const { return fresh_[unit]; }

  // Testing hook: raw tag for one word (0 = not fresh).
  std::uint32_t Tag(UnitId unit, std::uint32_t word_in_unit) const;

 private:
  void EnsureUnit(UnitId unit);

  std::size_t words_per_unit_;
  std::vector<std::unique_ptr<std::uint32_t[]>> units_;
  std::vector<std::uint32_t> fresh_;  // live (non-zero) tags per unit
};

}  // namespace dsm

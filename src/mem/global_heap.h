// Global shared address-space layout.
//
// GlobalHeap is pure metadata: a bump allocator handing out offsets into the
// shared address space.  The actual bytes live in one private image per
// logical processor (see core/protocol.h) — exactly like a real software
// DSM, where every node holds its own copy of each page and the protocol
// keeps the copies consistent.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mem/types.h"

namespace dsm {

class GlobalHeap {
 public:
  // `heap_bytes` must be a multiple of `unit_bytes`; `unit_bytes` must be a
  // power-of-two multiple of the base VM page.
  GlobalHeap(std::size_t heap_bytes, std::size_t unit_bytes);

  // Allocate `bytes` with the given alignment (power of two, >= 4).
  // `name` is kept for diagnostics. Throws CheckError when out of space.
  GlobalAddr Alloc(std::size_t bytes, std::size_t align,
                   const char* name = nullptr);

  // Allocate starting on a fresh consistency-unit boundary.  Used by
  // workloads that want page-aligned arrays (and by tests that need to
  // place data on known units).
  GlobalAddr AllocUnitAligned(std::size_t bytes, const char* name = nullptr);

  std::size_t heap_bytes() const { return heap_bytes_; }
  std::size_t unit_bytes() const { return unit_bytes_; }
  std::size_t num_units() const { return heap_bytes_ / unit_bytes_; }
  std::size_t bytes_used() const { return next_; }

  UnitId UnitOf(GlobalAddr addr) const {
    return static_cast<UnitId>(addr >> unit_shift_);
  }
  GlobalAddr UnitBase(UnitId unit) const {
    return static_cast<GlobalAddr>(unit) << unit_shift_;
  }
  int unit_shift() const { return unit_shift_; }

  struct Allocation {
    std::string name;
    GlobalAddr addr;
    std::size_t bytes;
  };
  const std::vector<Allocation>& allocations() const { return allocations_; }

 private:
  std::size_t heap_bytes_;
  std::size_t unit_bytes_;
  int unit_shift_;
  std::size_t next_ = 0;
  std::vector<Allocation> allocations_;
};

}  // namespace dsm

#include "mem/word_tracker.h"

#include <cstring>

#include "common/check.h"

namespace dsm {

WordTracker::WordTracker(std::size_t num_units, std::size_t words_per_unit)
    : words_per_unit_(words_per_unit),
      units_(num_units),
      fresh_(num_units, 0),
      interest_(num_units) {}

std::uint64_t* WordTracker::EnsureInterest(UnitId unit) {
  const std::size_t slots = (words_per_unit_ + 63) / 64;
  interest_[unit] = std::make_unique<std::uint64_t[]>(slots);
  std::memset(interest_[unit].get(), 0, slots * sizeof(std::uint64_t));
  return interest_[unit].get();
}

bool WordTracker::ReadsAnyOf(UnitId unit,
                             const std::vector<DiffRun>& runs) const {
  const std::uint64_t* bits = interest_[unit].get();
  if (bits == nullptr) return false;
  for (const DiffRun& run : runs) {
    std::uint32_t w = run.word_offset;
    std::uint32_t left = run.word_count;
    while (left > 0) {
      const std::uint32_t slot = w >> 6;
      const std::uint32_t bit = w & 63;
      const std::uint32_t span = left < 64 - bit ? left : 64 - bit;
      const std::uint64_t mask =
          (span == 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << span) - 1))
          << bit;
      if ((bits[slot] & mask) != 0) return true;
      w += span;
      left -= span;
    }
  }
  return false;
}

void WordTracker::EnsureUnit(UnitId unit) {
  if (units_[unit] == nullptr) {
    units_[unit] = std::make_unique<std::uint32_t[]>(words_per_unit_);
    std::memset(units_[unit].get(), 0,
                words_per_unit_ * sizeof(std::uint32_t));
  }
}

void WordTracker::Deliver(UnitId unit, std::uint32_t word_in_unit,
                          std::uint32_t msg_id) {
  DSM_DCHECK(word_in_unit < words_per_unit_);
  EnsureUnit(unit);
  std::uint32_t& tag = units_[unit][word_in_unit];
  // Redelivery to an already-fresh word re-tags without recounting.
  fresh_[unit] += (tag == 0);
  tag = msg_id + 1;
}

std::uint32_t WordTracker::Tag(UnitId unit, std::uint32_t word_in_unit) const {
  if (units_[unit] == nullptr) return 0;
  return units_[unit][word_in_unit];
}

}  // namespace dsm

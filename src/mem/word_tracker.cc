#include "mem/word_tracker.h"

#include <cstring>

#include "common/check.h"

namespace dsm {

WordTracker::WordTracker(std::size_t num_units, std::size_t words_per_unit)
    : words_per_unit_(words_per_unit),
      units_(num_units),
      fresh_(num_units, 0) {}

void WordTracker::EnsureUnit(UnitId unit) {
  if (units_[unit] == nullptr) {
    units_[unit] = std::make_unique<std::uint32_t[]>(words_per_unit_);
    std::memset(units_[unit].get(), 0,
                words_per_unit_ * sizeof(std::uint32_t));
  }
}

void WordTracker::Deliver(UnitId unit, std::uint32_t word_in_unit,
                          std::uint32_t msg_id) {
  DSM_DCHECK(word_in_unit < words_per_unit_);
  EnsureUnit(unit);
  std::uint32_t& tag = units_[unit][word_in_unit];
  // Redelivery to an already-fresh word re-tags without recounting.
  fresh_[unit] += (tag == 0);
  tag = msg_id + 1;
}

std::uint32_t WordTracker::Tag(UnitId unit, std::uint32_t word_in_unit) const {
  if (units_[unit] == nullptr) return 0;
  return units_[unit][word_in_unit];
}

}  // namespace dsm

#include "mem/sharer_directory.h"

#include <bit>

#include "common/check.h"

namespace dsm {

SharerDirectory::SharerDirectory(std::size_t num_units, int num_procs)
    : num_procs_(num_procs),
      words_per_unit_((static_cast<std::size_t>(num_procs) + 63) / 64),
      bits_(num_units * ((static_cast<std::size_t>(num_procs) + 63) / 64)) {
  DSM_CHECK_GT(num_procs, 0);
}

int SharerDirectory::SharerCount(UnitId unit) const {
  int count = 0;
  const std::size_t base = unit * words_per_unit_;
  for (std::size_t w = 0; w < words_per_unit_; ++w) {
    count += std::popcount(bits_[base + w].load(std::memory_order_relaxed));
  }
  return count;
}

}  // namespace dsm

// Twin/diff machinery of the multiple-writer protocol (paper §2).
//
// On the first write to a clean unit the protocol copies it (the *twin*).
// When the writer's interval closes, the twin is word-compared against the
// working copy to produce a *diff*: a run-length-encoded record of modified
// words.  A reader merges concurrent diffs by applying them in turn; for
// race-free programs concurrent diffs touch disjoint words, so application
// order between concurrent writers does not matter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mem/types.h"

namespace dsm {

// One maximal run of consecutive modified words.
struct DiffRun {
  std::uint32_t word_offset;  // first modified word, relative to unit base
  std::uint32_t word_count;   // number of consecutive modified words
};

class Diff {
 public:
  Diff() = default;

  // Word-compare `twin` against `current` (both unit-sized, same length,
  // length a multiple of kWordBytes) and record the words that differ.
  static Diff Create(std::span<const std::byte> twin,
                     std::span<const std::byte> current);

  // Scatter the recorded words into `dst` (a unit-sized buffer).
  void Apply(std::span<std::byte> dst) const;

  // Coalesce two diffs of the same unit from the same writer, `newer`
  // taking precedence on overlapping words.  Used to combat diff
  // accumulation: when a reader fetches several consecutive intervals of
  // one writer and no foreign interval is ordered between them, the
  // intermediate versions of overlapping words can never be observed, so
  // the server ships one combined diff (`words_per_unit` bounds offsets).
  static Diff Merge(const Diff& older, const Diff& newer,
                    std::size_t words_per_unit);

  // Payload-free counterpart of Merge: the canonical (sorted, maximal,
  // disjoint) run decomposition of the union of two canonical run lists.
  // Guaranteed to equal Merge(a, b).runs() for any diffs with those runs —
  // archive GC relies on this to keep wire-size accounting bit-identical
  // after diff payloads have been reclaimed (see DESIGN.md §6).
  static std::vector<DiffRun> MergeRuns(const std::vector<DiffRun>& a,
                                        const std::vector<DiffRun>& b);

  // Total words covered by a canonical run list.
  static std::size_t RunWords(const std::vector<DiffRun>& runs);

  bool empty() const { return runs_.empty(); }
  std::size_t num_runs() const { return runs_.size(); }
  std::size_t payload_words() const { return payload_.size() / kWordBytes; }
  std::size_t payload_bytes() const { return payload_.size(); }

  // Wire size: header + per-run descriptors + payload.  Used for message
  // byte accounting and bandwidth timing.
  std::size_t EncodedBytes() const {
    return kHeaderBytes + runs_.size() * kRunDescriptorBytes +
           payload_bytes();
  }

  const std::vector<DiffRun>& runs() const { return runs_; }
  const std::vector<std::byte>& payload() const { return payload_; }
  // Payload word `i` in run-major order (testing/inspection).
  std::uint32_t payload_word(std::size_t i) const;

  // Enumerate the unit-relative word offsets this diff writes, in order.
  // `fn` is called once per word.
  template <typename Fn>
  void ForEachWord(Fn&& fn) const {
    for (const DiffRun& run : runs_) {
      for (std::uint32_t i = 0; i < run.word_count; ++i) {
        fn(run.word_offset + i);
      }
    }
  }

  static constexpr std::size_t kHeaderBytes = 16;
  static constexpr std::size_t kRunDescriptorBytes = 8;

 private:
  std::vector<DiffRun> runs_;
  // Bytes of the modified words, run by run.  Byte storage keeps payload
  // construction a pure bulk copy (no zero-initializing resize, no
  // aliasing-unsafe word pointers into the unit images).
  std::vector<std::byte> payload_;
};

}  // namespace dsm

#include "mem/page_table.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace dsm {

const char* UnitStateName(UnitState s) {
  switch (s) {
    case UnitState::kReadValid:
      return "read_valid";
    case UnitState::kDirty:
      return "dirty";
    case UnitState::kInvalid:
      return "invalid";
    case UnitState::kUpdatedInvalid:
      return "updated_invalid";
  }
  return "unknown";
}

CanonicalStore::CanonicalStore(std::size_t num_units, std::size_t unit_bytes)
    : unit_bytes_(unit_bytes), bases_(num_units) {}

std::span<std::byte> CanonicalStore::Ensure(UnitId unit) {
  if (bases_[unit] == nullptr) {
    std::lock_guard lock(pool_mutex_);
    if (!free_bases_.empty()) {
      bases_[unit] = std::move(free_bases_.back());
      free_bases_.pop_back();
      std::memset(bases_[unit].get(), 0, unit_bytes_);
      ++recycles_;
    } else {
      bases_[unit].reset(new std::byte[unit_bytes_]());
    }
    ++live_count_;
    peak_count_ = std::max(peak_count_, live_count_);
  }
  return {bases_[unit].get(), unit_bytes_};
}

std::span<const std::byte> CanonicalStore::base(UnitId unit) const {
  DSM_CHECK(bases_[unit] != nullptr)
      << "unit " << unit << " has no canonical base";
  return {bases_[unit].get(), unit_bytes_};
}

void CanonicalStore::CopyRuns(UnitId unit, std::span<std::byte> dst,
                              const std::vector<DiffRun>& runs) const {
  const std::span<const std::byte> src = base(unit);
  for (const DiffRun& run : runs) {
    const std::size_t off = std::size_t{run.word_offset} * kWordBytes;
    const std::size_t len = std::size_t{run.word_count} * kWordBytes;
    DSM_DCHECK(off + len <= unit_bytes_);
    std::memcpy(dst.data() + off, src.data() + off, len);
  }
}

bool CanonicalStore::ReadCheckpoint(UnitId unit,
                                    std::span<std::byte> dst) const {
  DSM_CHECK_EQ(dst.size(), unit_bytes_);
  if (bases_[unit] == nullptr) return false;
  std::memcpy(dst.data(), bases_[unit].get(), unit_bytes_);
  return true;
}

void CanonicalStore::Release(UnitId unit) {
  if (bases_[unit] == nullptr) return;
  std::lock_guard lock(pool_mutex_);
  free_bases_.push_back(std::move(bases_[unit]));
  --live_count_;
}

PageTable::PageTable(std::size_t num_units, std::size_t unit_bytes)
    : unit_bytes_(unit_bytes),
      states_(num_units, UnitState::kReadValid),
      twins_(num_units) {}

void PageTable::MakeTwin(UnitId unit, std::span<const std::byte> current) {
  DSM_CHECK_EQ(current.size(), unit_bytes_);
  DSM_CHECK(twins_[unit] == nullptr)
      << "unit " << unit << " already twinned";
  if (!free_twins_.empty()) {
    twins_[unit] = std::move(free_twins_.back());
    free_twins_.pop_back();
    ++twin_recycles_;
  } else {
    // No value-init: the memcpy below overwrites the full buffer.
    twins_[unit].reset(new std::byte[unit_bytes_]);
  }
  std::memcpy(twins_[unit].get(), current.data(), unit_bytes_);
}

std::span<std::byte> PageTable::twin(UnitId unit) {
  DSM_CHECK(twins_[unit] != nullptr) << "unit " << unit << " has no twin";
  return {twins_[unit].get(), unit_bytes_};
}

std::span<const std::byte> PageTable::twin(UnitId unit) const {
  DSM_CHECK(twins_[unit] != nullptr) << "unit " << unit << " has no twin";
  return {twins_[unit].get(), unit_bytes_};
}

void PageTable::DropTwin(UnitId unit) {
  if (twins_[unit] != nullptr) {
    free_twins_.push_back(std::move(twins_[unit]));
  }
}

void PageTable::ResetForRecovery() {
  for (UnitId u = 0; u < states_.size(); ++u) {
    DropTwin(u);
    states_[u] = UnitState::kReadValid;
  }
  dirty_units_.clear();
}

}  // namespace dsm

#include "mem/page_table.h"

#include <cstring>

#include "common/check.h"

namespace dsm {

const char* UnitStateName(UnitState s) {
  switch (s) {
    case UnitState::kReadValid:
      return "read_valid";
    case UnitState::kDirty:
      return "dirty";
    case UnitState::kInvalid:
      return "invalid";
    case UnitState::kUpdatedInvalid:
      return "updated_invalid";
  }
  return "unknown";
}

PageTable::PageTable(std::size_t num_units, std::size_t unit_bytes)
    : unit_bytes_(unit_bytes),
      states_(num_units, UnitState::kReadValid),
      twins_(num_units) {}

void PageTable::MakeTwin(UnitId unit, std::span<const std::byte> current) {
  DSM_CHECK_EQ(current.size(), unit_bytes_);
  DSM_CHECK(twins_[unit] == nullptr)
      << "unit " << unit << " already twinned";
  if (!free_twins_.empty()) {
    twins_[unit] = std::move(free_twins_.back());
    free_twins_.pop_back();
    ++twin_recycles_;
  } else {
    // No value-init: the memcpy below overwrites the full buffer.
    twins_[unit].reset(new std::byte[unit_bytes_]);
  }
  std::memcpy(twins_[unit].get(), current.data(), unit_bytes_);
}

std::span<std::byte> PageTable::twin(UnitId unit) {
  DSM_CHECK(twins_[unit] != nullptr) << "unit " << unit << " has no twin";
  return {twins_[unit].get(), unit_bytes_};
}

std::span<const std::byte> PageTable::twin(UnitId unit) const {
  DSM_CHECK(twins_[unit] != nullptr) << "unit " << unit << " has no twin";
  return {twins_[unit].get(), unit_bytes_};
}

void PageTable::DropTwin(UnitId unit) {
  if (twins_[unit] != nullptr) {
    free_twins_.push_back(std::move(twins_[unit]));
  }
}

}  // namespace dsm

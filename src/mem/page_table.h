// Per-node consistency-unit state, standing in for VM page protections.
//
// A real TreadMarks node drives the protocol from mprotect/SIGSEGV; here
// every shared access consults this table instead (same protocol-visible
// events, plus determinism and portability — see DESIGN.md §2).
//
// Unit states:
//   kInvalid         — foreign write notices pending; access faults and
//                      fetches diffs.
//   kUpdatedInvalid  — dynamic aggregation only: updates were already
//                      applied as part of a page-group fetch, but the unit
//                      is kept invalid so its first access is still
//                      observable (paper §4).  Access "faults" without any
//                      communication.
//   kReadValid       — clean: reads proceed; the first write twins the unit
//                      and moves it to kDirty.
//   kDirty           — twinned and writable; reads and writes proceed.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "mem/diff.h"
#include "mem/types.h"

namespace dsm {

enum class UnitState : std::uint8_t {
  kReadValid = 0,
  kDirty,
  kInvalid,
  kUpdatedInvalid,
};

const char* UnitStateName(UnitState s);

// Canonical base images for archive GC (DESIGN.md §6): one full-unit
// snapshot per consistency unit that holds the contents implied by every
// reclaimed interval, applied in happens-before order on top of the
// zero-initialized heap.  FlattenedChains carry only run lists; at fault
// time their data is copied from here.  Shared across nodes: mutation
// (Ensure/Release) happens only inside the idle barrier window, where the
// striped GC workers allocate and release concurrently — the buffer pool
// and its counters are mutex-guarded.  Each unit's slot is touched by
// exactly one worker (unit stripe), and fault-time reads happen only
// outside the window against an immutable-between-barriers image, so reads
// need no locking.
//
// Buffers are allocated lazily (only units that ever had a pending chain
// flattened pay) and recycled through a free pool, like twins: when a GC
// pass observes that no node holds a flattened chain for a unit any more,
// the unit's base is dropped to the pool and a later flatten re-ensures a
// zeroed buffer (safe: a fresh stub's runs are always covered by the
// records applied after re-ensuring).
class CanonicalStore {
 public:
  CanonicalStore(std::size_t num_units, std::size_t unit_bytes);

  bool Has(UnitId unit) const { return bases_[unit] != nullptr; }

  // Base image of `unit`, allocating a zero-filled buffer on first use.
  std::span<std::byte> Ensure(UnitId unit);

  // Read-only view; unit must have a base.
  std::span<const std::byte> base(UnitId unit) const;

  // Copy the words named by `runs` from the unit's base image into `dst`
  // (a unit-sized buffer).  The one primitive behind both flattened-chain
  // application and the read-aware-flattening silent refresh (DESIGN.md
  // §6): the base holds the newest dominated value of every flattened
  // word, so any copy of a run from it yields the bytes the reclaimed
  // history would have produced.
  void CopyRuns(UnitId unit, std::span<std::byte> dst,
                const std::vector<DiffRun>& runs) const;

  // Checkpoint-read API (crash recovery, DESIGN.md §9): copy the unit's
  // base image — the barrier-epoch checkpoint of every flattened interval
  // — into `dst` (a unit-sized buffer) and return true, or return false
  // untouched when the unit has no base (no dominated interval ever wrote
  // it; its checkpoint content is the zero-initialized heap).  The one
  // sanctioned way to read checkpoint data from outside the GC: recovery
  // must not see (or depend on) the store's pooling internals.
  bool ReadCheckpoint(UnitId unit, std::span<std::byte> dst) const;

  // Return the unit's buffer to the free pool (no-op without a base).
  void Release(UnitId unit);

  std::size_t unit_bytes() const { return unit_bytes_; }
  // Bytes currently held by live bases / the high-water mark over the run
  // (pooled free buffers are not counted: they are capacity, not content).
  std::size_t live_bytes() const { return live_count_ * unit_bytes_; }
  std::size_t peak_bytes() const { return peak_count_ * unit_bytes_; }
  std::uint64_t base_recycles() const { return recycles_; }

 private:
  std::size_t unit_bytes_;
  // Guards the pool and counters against concurrent GC workers; per-unit
  // slots themselves are stripe-exclusive.
  mutable std::mutex pool_mutex_;
  std::vector<std::unique_ptr<std::byte[]>> bases_;
  std::vector<std::unique_ptr<std::byte[]>> free_bases_;
  std::size_t live_count_ = 0;
  std::size_t peak_count_ = 0;
  std::uint64_t recycles_ = 0;
};

class PageTable {
 public:
  PageTable(std::size_t num_units, std::size_t unit_bytes);

  UnitState state(UnitId unit) const { return states_[unit]; }
  void set_state(UnitId unit, UnitState s) { states_[unit] = s; }

  // Fast-path pointer for the inline access check.
  const UnitState* state_array() const { return states_.data(); }

  bool NeedsFaultOnRead(UnitId unit) const {
    const UnitState s = states_[unit];
    return s == UnitState::kInvalid || s == UnitState::kUpdatedInvalid;
  }
  bool NeedsFaultOnWrite(UnitId unit) const {
    return states_[unit] != UnitState::kDirty;
  }

  // --- twins ---------------------------------------------------------------
  bool HasTwin(UnitId unit) const { return twins_[unit] != nullptr; }
  // Copy `current` (the unit's working copy) into a twin.  Buffers of
  // dropped twins are pooled and reused, so steady-state twin/re-twin
  // churn (every interval re-dirties roughly the same working set) never
  // goes back to the allocator.
  void MakeTwin(UnitId unit, std::span<const std::byte> current);
  std::span<std::byte> twin(UnitId unit);
  std::span<const std::byte> twin(UnitId unit) const;
  void DropTwin(UnitId unit);

  // How many MakeTwin calls were served from the free list (observability
  // for the pooling; see tests).
  std::uint64_t twin_recycles() const { return twin_recycles_; }

  // Units currently twinned (i.e., dirty in the open interval), in the
  // order they were first written.  Cleared by the caller after the
  // interval closes.
  const std::vector<UnitId>& dirty_units() const { return dirty_units_; }
  void RecordDirty(UnitId unit) { dirty_units_.push_back(unit); }
  void ClearDirtyList() { dirty_units_.clear(); }

  // Crash-recovery wipe (DESIGN.md §9): drop every twin (buffers go back
  // to the pool), mark every unit kReadValid (the rebuilt image is
  // readable but not dirty), and clear the dirty list — the page-table
  // share of a crashed node's volatile-state reset.  Only the
  // RecoveryCoordinator calls this, on the victim's own thread.
  void ResetForRecovery();

  std::size_t num_units() const { return states_.size(); }
  std::size_t unit_bytes() const { return unit_bytes_; }

 private:
  std::size_t unit_bytes_;
  std::vector<UnitState> states_;
  std::vector<std::unique_ptr<std::byte[]>> twins_;
  std::vector<std::unique_ptr<std::byte[]>> free_twins_;  // dropped buffers
  std::vector<UnitId> dirty_units_;
  std::uint64_t twin_recycles_ = 0;
};

}  // namespace dsm

// Per-node consistency-unit state, standing in for VM page protections.
//
// A real TreadMarks node drives the protocol from mprotect/SIGSEGV; here
// every shared access consults this table instead (same protocol-visible
// events, plus determinism and portability — see DESIGN.md §2).
//
// Unit states:
//   kInvalid         — foreign write notices pending; access faults and
//                      fetches diffs.
//   kUpdatedInvalid  — dynamic aggregation only: updates were already
//                      applied as part of a page-group fetch, but the unit
//                      is kept invalid so its first access is still
//                      observable (paper §4).  Access "faults" without any
//                      communication.
//   kReadValid       — clean: reads proceed; the first write twins the unit
//                      and moves it to kDirty.
//   kDirty           — twinned and writable; reads and writes proceed.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "mem/types.h"

namespace dsm {

enum class UnitState : std::uint8_t {
  kReadValid = 0,
  kDirty,
  kInvalid,
  kUpdatedInvalid,
};

const char* UnitStateName(UnitState s);

class PageTable {
 public:
  PageTable(std::size_t num_units, std::size_t unit_bytes);

  UnitState state(UnitId unit) const { return states_[unit]; }
  void set_state(UnitId unit, UnitState s) { states_[unit] = s; }

  // Fast-path pointer for the inline access check.
  const UnitState* state_array() const { return states_.data(); }

  bool NeedsFaultOnRead(UnitId unit) const {
    const UnitState s = states_[unit];
    return s == UnitState::kInvalid || s == UnitState::kUpdatedInvalid;
  }
  bool NeedsFaultOnWrite(UnitId unit) const {
    return states_[unit] != UnitState::kDirty;
  }

  // --- twins ---------------------------------------------------------------
  bool HasTwin(UnitId unit) const { return twins_[unit] != nullptr; }
  // Copy `current` (the unit's working copy) into a twin.  Buffers of
  // dropped twins are pooled and reused, so steady-state twin/re-twin
  // churn (every interval re-dirties roughly the same working set) never
  // goes back to the allocator.
  void MakeTwin(UnitId unit, std::span<const std::byte> current);
  std::span<std::byte> twin(UnitId unit);
  std::span<const std::byte> twin(UnitId unit) const;
  void DropTwin(UnitId unit);

  // How many MakeTwin calls were served from the free list (observability
  // for the pooling; see tests).
  std::uint64_t twin_recycles() const { return twin_recycles_; }

  // Units currently twinned (i.e., dirty in the open interval), in the
  // order they were first written.  Cleared by the caller after the
  // interval closes.
  const std::vector<UnitId>& dirty_units() const { return dirty_units_; }
  void RecordDirty(UnitId unit) { dirty_units_.push_back(unit); }
  void ClearDirtyList() { dirty_units_.clear(); }

  std::size_t num_units() const { return states_.size(); }
  std::size_t unit_bytes() const { return unit_bytes_; }

 private:
  std::size_t unit_bytes_;
  std::vector<UnitState> states_;
  std::vector<std::unique_ptr<std::byte[]>> twins_;
  std::vector<std::unique_ptr<std::byte[]>> free_twins_;  // dropped buffers
  std::vector<UnitId> dirty_units_;
  std::uint64_t twin_recycles_ = 0;
};

}  // namespace dsm

#include "mem/diff.h"

#include <algorithm>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/check.h"

namespace dsm {
namespace {

// All loads go through std::memcpy: the underlying storage is std::byte
// buffers (unit images, twins), and dereferencing them through a
// reinterpret_cast'd std::uint32_t* would be undefined behavior (strict
// aliasing; alignment is only guaranteed by the owning allocations).
// Compilers turn these into single mov instructions.
inline std::uint32_t Load32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t Load64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Nonzero if either 32-bit lane of `x` is zero (may rarely report a false
// positive in the high lane when the low lane is zero — callers treat a hit
// as "re-check word by word", so only speed, not correctness, depends on
// exactness).
inline std::uint64_t ZeroLaneMask(std::uint64_t x) {
  return (x - 0x0000000100000001ull) & ~x & 0x8000000080000000ull;
}

// True if all 16 words of the 64-byte block at `t` differ from the block at
// `c` — the run-extension probe.  SSE2 (x86-64 baseline) compares four
// words per instruction; the scalar fallback folds zero-lane masks of
// 64-bit XORs.
inline bool AllWordsDiffer64(const std::byte* t, const std::byte* c) {
#if defined(__SSE2__)
  const auto* tv = reinterpret_cast<const __m128i*>(t);
  const auto* cv = reinterpret_cast<const __m128i*>(c);
  const __m128i eq01 =
      _mm_or_si128(_mm_cmpeq_epi32(_mm_loadu_si128(tv),
                                   _mm_loadu_si128(cv)),
                   _mm_cmpeq_epi32(_mm_loadu_si128(tv + 1),
                                   _mm_loadu_si128(cv + 1)));
  const __m128i eq23 =
      _mm_or_si128(_mm_cmpeq_epi32(_mm_loadu_si128(tv + 2),
                                   _mm_loadu_si128(cv + 2)),
                   _mm_cmpeq_epi32(_mm_loadu_si128(tv + 3),
                                   _mm_loadu_si128(cv + 3)));
  return _mm_movemask_epi8(_mm_or_si128(eq01, eq23)) == 0;
#else
  std::uint64_t any_equal = 0;
  for (int k = 0; k < 64; k += 8) {
    any_equal |= ZeroLaneMask(Load64(t + k) ^ Load64(c + k));
  }
  return any_equal == 0;
#endif
}

}  // namespace

Diff Diff::Create(std::span<const std::byte> twin,
                  std::span<const std::byte> current) {
  DSM_CHECK_EQ(twin.size(), current.size());
  DSM_CHECK_EQ(twin.size() % kWordBytes, 0u);
  const std::size_t num_words = twin.size() / kWordBytes;
  const std::byte* tp = twin.data();
  const std::byte* cp = current.data();

  Diff diff;
  diff.runs_.reserve(8);

  // Pass 1: find the maximal runs of differing words, 64 bits at a time.
  // Equal stretches skip a word pair per compare and escalate to whole
  // cache lines (memcmp vectorizes) once 64 equal bytes are seen in a row,
  // so dense regions never pay for failing wide probes; runs extend four
  // words per iteration off two 64-bit XORs.
  std::size_t i = 0;
  std::size_t total_words = 0;
  while (i < num_words) {
    const std::size_t streak_base = i;
    while (i + 2 <= num_words &&
           Load64(tp + i * kWordBytes) == Load64(cp + i * kWordBytes)) {
      i += 2;
      if (i - streak_base == 16) {  // long equal stretch: leap cache lines
        while (i + 16 <= num_words &&
               std::memcmp(tp + i * kWordBytes, cp + i * kWordBytes, 64) ==
                   0) {
          i += 16;
        }
        while (i + 2 <= num_words &&
               Load64(tp + i * kWordBytes) == Load64(cp + i * kWordBytes)) {
          i += 2;
        }
        break;
      }
    }
    if (i >= num_words) break;
    if (Load32(tp + i * kWordBytes) == Load32(cp + i * kWordBytes)) {
      ++i;  // second word of an unequal pair starts the run
      continue;
    }
    const std::size_t run_start = i;
    ++i;
    // Extend a cache line at a time while every word in the block differs,
    // then pin the exact boundary word by word.
    while (i + 16 <= num_words &&
           AllWordsDiffer64(tp + i * kWordBytes, cp + i * kWordBytes)) {
      i += 16;
    }
    while (i + 2 <= num_words) {
      const std::uint64_t x =
          Load64(tp + i * kWordBytes) ^ Load64(cp + i * kWordBytes);
      if (ZeroLaneMask(x) != 0) break;  // conservative: word loop decides
      i += 2;
    }
    while (i < num_words &&
           Load32(tp + i * kWordBytes) != Load32(cp + i * kWordBytes)) {
      ++i;
    }
    diff.runs_.push_back({static_cast<std::uint32_t>(run_start),
                          static_cast<std::uint32_t>(i - run_start)});
    total_words += i - run_start;
  }

  // Pass 2: one exact payload allocation, bulk-copied run by run.
  diff.payload_.reserve(total_words * kWordBytes);
  for (const DiffRun& run : diff.runs_) {
    const std::byte* src = cp + std::size_t{run.word_offset} * kWordBytes;
    diff.payload_.insert(diff.payload_.end(), src,
                         src + std::size_t{run.word_count} * kWordBytes);
  }
  return diff;
}

std::uint32_t Diff::payload_word(std::size_t i) const {
  DSM_CHECK_LT(i, payload_words());
  return Load32(payload_.data() + i * kWordBytes);
}

Diff Diff::Merge(const Diff& older, const Diff& newer,
                 std::size_t words_per_unit) {
  const std::vector<DiffRun>& ra = older.runs_;
  const std::vector<DiffRun>& rb = newer.runs_;
  for (const DiffRun& r : ra) {
    DSM_CHECK_LE(static_cast<std::size_t>(r.word_offset) + r.word_count,
                 words_per_unit);
  }
  for (const DiffRun& r : rb) {
    DSM_CHECK_LE(static_cast<std::size_t>(r.word_offset) + r.word_count,
                 words_per_unit);
  }

  Diff merged;
  merged.runs_.reserve(ra.size() + rb.size());
  merged.payload_.reserve(older.payload_.size() + newer.payload_.size());

  // Emit a segment, coalescing with the previous one when adjacent (both
  // inputs have canonical runs, so output runs stay maximal and disjoint).
  auto append = [&merged](std::uint32_t offset, const std::byte* bytes,
                          std::uint32_t count) {
    if (count == 0) return;
    if (!merged.runs_.empty() &&
        merged.runs_.back().word_offset + merged.runs_.back().word_count ==
            offset) {
      merged.runs_.back().word_count += count;
    } else {
      merged.runs_.push_back({offset, count});
    }
    merged.payload_.insert(merged.payload_.end(), bytes,
                           bytes + std::size_t{count} * kWordBytes);
  };

  // Two-pointer walk over both sorted run lists: O(runs + payload), no
  // per-word scratch.  `newer` wins on overlapping words.
  std::size_t ai = 0, bi = 0;
  std::size_t apay = 0, bpay = 0;  // payload word index of run ai / bi
  std::uint32_t a_done = 0;        // words of run ai already emitted/dropped
  auto a_bytes = [&](std::size_t words_in) {
    return older.payload_.data() + (apay + words_in) * kWordBytes;
  };
  auto b_bytes = [&] { return newer.payload_.data() + bpay * kWordBytes; };
  while (ai < ra.size() && bi < rb.size()) {
    const DiffRun& a = ra[ai];
    const DiffRun& b = rb[bi];
    const std::uint32_t a_start = a.word_offset + a_done;
    const std::uint32_t a_end = a.word_offset + a.word_count;
    const std::uint32_t b_end = b.word_offset + b.word_count;
    if (a_end <= b.word_offset) {
      // Older run entirely before the next newer run.
      append(a_start, a_bytes(a_done), a_end - a_start);
      apay += a.word_count;
      ++ai;
      a_done = 0;
    } else if (b_end <= a_start) {
      // Newer run entirely before the rest of the older run.
      append(b.word_offset, b_bytes(), b.word_count);
      bpay += b.word_count;
      ++bi;
    } else {
      // Overlap: the older prefix survives, then the whole newer run; every
      // older word the newer run covers is dropped.
      if (a_start < b.word_offset) {
        append(a_start, a_bytes(a_done), b.word_offset - a_start);
      }
      append(b.word_offset, b_bytes(), b.word_count);
      bpay += b.word_count;
      ++bi;
      while (ai < ra.size()) {
        const DiffRun& drop = ra[ai];
        if (drop.word_offset + drop.word_count <= b_end) {
          apay += drop.word_count;
          ++ai;
          a_done = 0;
          continue;
        }
        if (drop.word_offset < b_end) {
          a_done = std::max(a_done, b_end - drop.word_offset);
        }
        break;
      }
    }
  }
  while (ai < ra.size()) {
    const DiffRun& a = ra[ai];
    append(a.word_offset + a_done, a_bytes(a_done), a.word_count - a_done);
    apay += a.word_count;
    ++ai;
    a_done = 0;
  }
  while (bi < rb.size()) {
    append(rb[bi].word_offset, b_bytes(), rb[bi].word_count);
    bpay += rb[bi].word_count;
    ++bi;
  }
  return merged;
}

std::vector<DiffRun> Diff::MergeRuns(const std::vector<DiffRun>& a,
                                     const std::vector<DiffRun>& b) {
  std::vector<DiffRun> out;
  out.reserve(a.size() + b.size());
  auto append = [&out](std::uint32_t offset, std::uint32_t count) {
    if (count == 0) return;
    if (!out.empty() &&
        out.back().word_offset + out.back().word_count >= offset) {
      const std::uint32_t end =
          std::max(out.back().word_offset + out.back().word_count,
                   offset + count);
      out.back().word_count = end - out.back().word_offset;
    } else {
      out.push_back({offset, count});
    }
  };
  std::size_t ai = 0, bi = 0;
  while (ai < a.size() && bi < b.size()) {
    if (a[ai].word_offset <= b[bi].word_offset) {
      append(a[ai].word_offset, a[ai].word_count);
      ++ai;
    } else {
      append(b[bi].word_offset, b[bi].word_count);
      ++bi;
    }
  }
  for (; ai < a.size(); ++ai) append(a[ai].word_offset, a[ai].word_count);
  for (; bi < b.size(); ++bi) append(b[bi].word_offset, b[bi].word_count);
  return out;
}

std::size_t Diff::RunWords(const std::vector<DiffRun>& runs) {
  std::size_t total = 0;
  for (const DiffRun& r : runs) total += r.word_count;
  return total;
}

void Diff::Apply(std::span<std::byte> dst) const {
  const std::size_t num_words = dst.size() / kWordBytes;
  std::size_t payload_pos = 0;  // bytes
  for (const DiffRun& run : runs_) {
    DSM_CHECK_LE(static_cast<std::size_t>(run.word_offset) + run.word_count,
                 num_words)
        << "diff run exceeds destination unit";
    const std::size_t run_bytes = std::size_t{run.word_count} * kWordBytes;
    std::memcpy(dst.data() + std::size_t{run.word_offset} * kWordBytes,
                payload_.data() + payload_pos, run_bytes);
    payload_pos += run_bytes;
  }
  DSM_CHECK_EQ(payload_pos, payload_.size());
}

}  // namespace dsm

#include "mem/diff.h"

#include <cstring>

#include "common/check.h"

namespace dsm {

Diff Diff::Create(std::span<const std::byte> twin,
                  std::span<const std::byte> current) {
  DSM_CHECK_EQ(twin.size(), current.size());
  DSM_CHECK_EQ(twin.size() % kWordBytes, 0u);
  const std::size_t num_words = twin.size() / kWordBytes;

  Diff diff;
  const auto* tw = reinterpret_cast<const std::uint32_t*>(twin.data());
  const auto* cur = reinterpret_cast<const std::uint32_t*>(current.data());

  std::size_t i = 0;
  while (i < num_words) {
    if (tw[i] == cur[i]) {
      ++i;
      continue;
    }
    const std::size_t run_start = i;
    while (i < num_words && tw[i] != cur[i]) ++i;
    diff.runs_.push_back({static_cast<std::uint32_t>(run_start),
                          static_cast<std::uint32_t>(i - run_start)});
    diff.payload_.insert(diff.payload_.end(), cur + run_start, cur + i);
  }
  return diff;
}

Diff Diff::Merge(const Diff& older, const Diff& newer,
                 std::size_t words_per_unit) {
  std::vector<std::uint32_t> value(words_per_unit, 0);
  std::vector<bool> written(words_per_unit, false);
  auto absorb = [&](const Diff& d) {
    std::size_t payload_pos = 0;
    for (const DiffRun& run : d.runs_) {
      DSM_CHECK_LE(static_cast<std::size_t>(run.word_offset) + run.word_count,
                   words_per_unit);
      for (std::uint32_t i = 0; i < run.word_count; ++i) {
        value[run.word_offset + i] = d.payload_[payload_pos + i];
        written[run.word_offset + i] = true;
      }
      payload_pos += run.word_count;
    }
  };
  absorb(older);
  absorb(newer);

  Diff merged;
  std::size_t i = 0;
  while (i < words_per_unit) {
    if (!written[i]) {
      ++i;
      continue;
    }
    const std::size_t run_start = i;
    while (i < words_per_unit && written[i]) ++i;
    merged.runs_.push_back({static_cast<std::uint32_t>(run_start),
                            static_cast<std::uint32_t>(i - run_start)});
    merged.payload_.insert(merged.payload_.end(), value.begin() + run_start,
                           value.begin() + i);
  }
  return merged;
}

void Diff::Apply(std::span<std::byte> dst) const {
  auto* out = reinterpret_cast<std::uint32_t*>(dst.data());
  const std::size_t num_words = dst.size() / kWordBytes;
  std::size_t payload_pos = 0;
  for (const DiffRun& run : runs_) {
    DSM_CHECK_LE(static_cast<std::size_t>(run.word_offset) + run.word_count,
                 num_words)
        << "diff run exceeds destination unit";
    std::memcpy(out + run.word_offset, payload_.data() + payload_pos,
                run.word_count * kWordBytes);
    payload_pos += run.word_count;
  }
  DSM_CHECK_EQ(payload_pos, payload_.size());
}

}  // namespace dsm

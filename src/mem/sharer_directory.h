// Per-unit sharer directory (DESIGN.md §8).
//
// One bit per (consistency unit, processor): set the first time the
// processor faults on the unit — i.e. the first time it materializes any
// per-unit protocol state beyond the write notices every node queues.
// The protocol consults it to keep per-node metadata proportional to the
// nodes that actually touch a unit instead of the cluster size: the
// archive GC builds one shared flattened-chain image for all never-
// faulting ("virgin") nodes of a unit and allocates per-node chain
// headers lazily at the first fault, the directory-backed invariant
// being that a node holds chain headers for a unit only if its bit is
// set.  Classic directory-based DSM keeps the same structure for
// coherence; here coherence is clock-driven and the directory is purely
// a metadata-scaling device, so a bit is monotone (never cleared — a
// node that faulted once owns its divergent per-unit state forever).
//
// Threading: a processor sets only its own bit, from its own thread
// (fetch_or; concurrent with other processors' faults on the same
// unit).  Readers are either the owning thread (fault path) or the GC
// workers inside the barrier's idle window, which every registration
// happens-before via the barrier arrival — relaxed ordering suffices.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "mem/types.h"

namespace dsm {

class SharerDirectory {
 public:
  SharerDirectory(std::size_t num_units, int num_procs);

  // Set the proc's bit; returns true iff it was already set.
  bool Register(UnitId unit, ProcId proc) {
    const std::uint64_t bit = std::uint64_t{1} << (proc & 63);
    return (WordFor(unit, proc).fetch_or(bit, std::memory_order_relaxed) &
            bit) != 0;
  }

  bool IsSharer(UnitId unit, ProcId proc) const {
    const std::uint64_t bit = std::uint64_t{1} << (proc & 63);
    return (WordFor(unit, proc).load(std::memory_order_relaxed) & bit) != 0;
  }

  // Registered procs for `unit` (popcount over the unit's mask words).
  int SharerCount(UnitId unit) const;

  // NOTE for crash recovery (DESIGN.md §9): a recovering HLRC home must
  // NOT consult this directory to pick reconstruction sources — running
  // peers append bits concurrently, so any read here makes recovery cost
  // depend on host timing.  Recovery probes every survivor instead.

  int num_procs() const { return num_procs_; }

 private:
  std::atomic<std::uint64_t>& WordFor(UnitId unit, ProcId proc) {
    return bits_[unit * words_per_unit_ +
                 static_cast<std::size_t>(proc >> 6)];
  }
  const std::atomic<std::uint64_t>& WordFor(UnitId unit, ProcId proc) const {
    return bits_[unit * words_per_unit_ +
                 static_cast<std::size_t>(proc >> 6)];
  }

  int num_procs_;
  std::size_t words_per_unit_;
  std::vector<std::atomic<std::uint64_t>> bits_;
};

}  // namespace dsm

// Dynamic page aggregation (paper §4).
//
// Per node, the aggregator watches which pages the node faults on between
// synchronizations.  At each synchronization it (a) splits out of their
// groups any pages that were prefetched as group members but never
// accessed — evidence the access pattern changed — and (b) forms new
// groups from the pages accessed in the interval that just ended, in
// first-access order, up to `max_group_pages` per group.  Pages of a group
// need NOT be contiguous.  Groups persist until the monitored faulting
// behaviour contradicts them ("the algorithm monitors the page faulting
// behavior of the individual pages, and decides whether to aggregate pages
// into page groups or whether to split page groups into pages").
//
// During an interval, the first fault on any group member fetches diffs
// for all members with pending updates (requests per writer combined); the
// other members are left updated-but-invalid so their own first access is
// still observed — that observation is what keeps groups alive, and its
// absence is what splits them (the paper's hysteresis).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mem/types.h"

namespace dsm {

class DynamicAggregator {
 public:
  DynamicAggregator(std::size_t num_units, int max_group_pages);

  // Observe a fault (real fetch or silent validation) on `unit`.
  // Repeated faults within one interval are recorded once.
  void RecordAccess(UnitId unit);

  // `unit` was updated as part of a group fetch but is still invalid; if
  // it is not accessed before the next synchronization, it leaves its
  // group.
  void NotifyPrefetched(UnitId unit);

  // Synchronization: split stale members, group the interval's accesses.
  void OnSynchronization();

  // Members of the group containing `unit` (including `unit`), or empty.
  std::span<const UnitId> GroupOf(UnitId unit) const;

  int max_group_pages() const { return max_group_pages_; }
  std::size_t num_groups() const { return num_live_groups_; }
  std::size_t accesses_this_interval() const { return access_seq_.size(); }

 private:
  void RemoveFromGroup(UnitId unit);

  int max_group_pages_;
  std::uint32_t epoch_ = 1;

  // Per unit: epoch of last recorded access (== epoch_ → already recorded).
  std::vector<std::uint32_t> accessed_epoch_;
  // Units accessed in the current interval, in first-access order.
  std::vector<UnitId> access_seq_;
  // Units prefetched in the current interval and not yet accessed.
  std::vector<UnitId> prefetched_;
  std::vector<std::uint8_t> prefetch_pending_;

  std::vector<std::vector<UnitId>> groups_;
  std::vector<std::uint32_t> free_group_ids_;
  std::size_t num_live_groups_ = 0;
  // Per unit: index into groups_, or -1.
  std::vector<std::int32_t> group_of_;
};

}  // namespace dsm

// Deterministic fault injection and crash recovery (DESIGN.md §9).
//
// A seeded FaultSchedule (core/config.h) is an ordered list of crash
// events; each names one victim processor — ANY processor, proc 0
// included — and one modelled crash point: the victim's n-th global
// barrier, or immediately after its m-th interval close.  Trigger points
// are absolute victim-local counts, so every event fires at a
// deterministic point on its victim's own thread regardless of host
// scheduling; a repeat victim fires again only after its earlier
// recovery, which is automatic because its trigger points are served in
// program order.  The RecoveryCoordinator rebuilds each crashed node's
// lost volatile state — private image, page-table protections and twins,
// vector clock, pending write-notice view — from the run's stable
// substrate:
//
//   * LRC:  canonical base images (the archive GC's barrier-epoch
//           checkpoints, CanonicalStore::ReadCheckpoint) plus the archived
//           interval records not yet flattened into them.  Archives model
//           write-ahead logs on stable storage: a record is durable the
//           moment the interval closes, so the victim's own log survives
//           the crash.  With an armed schedule the GC runs in
//           *checkpoint-complete* mode (every dominated record reaches the
//           base, bases are never released), making base + surviving log
//           a complete history — the honest single-source-of-truth shape
//           the failure-free protocol does not need.
//   * HLRC: whole-unit copies from the home images.  A victim that was
//           itself a home reconstructs each of its units from the
//           surviving sharers' cached copies (full unit from the
//           designated freshest sharer, header-sized live-twin probes to
//           the rest) and re-homes the unit via the per-unit override
//           table (SharedState::EffectiveHome); surviving nodes learn the
//           new map lazily — their first home contact after the re-home
//           batch pays a modelled timeout + retransmit
//           (CommBreakdown::recovery_retransmits).
//
// When proc 0 is the victim of an at-barrier event, the coordinator roles
// it normally holds — serial-GC execution, checkpoint watermark publish,
// the HLRC watermark prune, and the barrier-manager cost asymmetry —
// migrate to the lowest surviving rank for exactly that barrier
// (SharedState::CoordinatorFor) and migrate back once the victim has
// rebuilt.
//
// Recovery is *transparent*: the victim's thread continues from the crash
// point with rebuilt state, so the sync services never lose a live
// participant mid-run (LockService::OnCrash handles the lock-side sweep —
// force-releasing anything the victim held and invalidating its cached
// tokens).  Recovery traffic is modelled — messages and bytes in the
// CommBreakdown recovery counters, latency on the victim's virtual clock —
// but deliberately outside the paper's reader-side useful/useless taxonomy
// and the per-kind NetStats, which keeps every no-fault fingerprint
// bit-identical by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/config.h"
#include "core/vector_clock.h"
#include "sim/virtual_clock.h"

namespace dsm {

class Node;
struct SharedState;

// Resolves one seeded event: a negative victim is derived from plan.seed,
// uniform over ALL processors (proc 0 included — its coordinator roles
// fail over).  Identity for plans with an explicit victim.
FaultPlan ResolveFaultPlan(FaultPlan plan, int num_procs);

// Resolves a whole schedule: per-event seeded victims first, then
// deterministic fix-ups that keep the schedule well-formed — two events
// with the same victim, kind and trigger point get strictly increasing
// points (a victim can only die once per point), and a barrier phase that
// would kill every processor at once bumps its later events forward until
// a survivor exists to run the coordinator roles.
FaultSchedule ResolveFaultSchedule(FaultSchedule schedule, int num_procs);

// Owns one run's resolved FaultSchedule and fires each event exactly
// once, in victim-local program order.  Trigger predicates are pure
// functions of (schedule, caller, protocol point) plus the per-event
// fired flags; an event's flag is only ever written by its own victim's
// thread, and all cross-thread reads (a later event on another victim,
// CollectStats after join) go through acquire/release atomics, so
// re-arming after a recovery is race-free under TSan semantics.
class FaultInjector {
 public:
  // `resolved` must have every victim >= 0 (SharedState resolves seeded
  // schedules before constructing the injector).
  explicit FaultInjector(const FaultSchedule& resolved);

  const FaultSchedule& schedule() const { return schedule_; }

  // Trigger predicates, called on `proc`'s own thread: the index of the
  // unfired event that fires at this point, or -1.  MatchAtBarrier is
  // called by every node inside the barrier of phase `sync_phase` (after
  // the idle-window GC, before notices are collected); MatchAfterClose by
  // the closing node right after its interval record with sequence number
  // `seq` was appended to its archive.
  int MatchAtBarrier(ProcId proc, std::uint32_t sync_phase) const;
  int MatchAfterClose(ProcId proc, Seq seq) const;

  // Static schedule query (independent of fired state): does an
  // at-barrier event kill `proc` at `sync_phase`?  Drives
  // SharedState::CoordinatorFor — every node computes the same answer for
  // the same phase, with no communication.
  bool CrashesAtBarrier(ProcId proc, std::uint32_t sync_phase) const;

  // Recovery telemetry, recorded by the RecoveryCoordinator once per
  // fired event.  Totals accumulate across the schedule.
  void OnRecovered(int event_index, VirtualNanos modelled_ns,
                   std::uint64_t wall_ns);

  bool any_fired() const { return fired_count() > 0; }
  int fired_count() const {
    return fired_count_.load(std::memory_order_acquire);
  }
  VirtualNanos recovery_modelled_ns() const {
    return recovery_modelled_ns_.load(std::memory_order_acquire);
  }
  std::uint64_t recovery_wall_ns() const {
    return recovery_wall_ns_.load(std::memory_order_acquire);
  }

 private:
  const FaultSchedule schedule_;
  // One flag per event.  Written (release) only by the event's victim
  // thread in OnRecovered; predicates load acquire so a second event on a
  // re-armed victim observes the completed earlier recovery.
  std::unique_ptr<std::atomic<std::uint8_t>[]> fired_;
  std::atomic<int> fired_count_{0};
  std::atomic<VirtualNanos> recovery_modelled_ns_{0};
  std::atomic<std::uint64_t> recovery_wall_ns_{0};
};

// Rebuilds a crashed node.  Stateless — a friend of Node that performs the
// wipe-and-rebuild described above; all bookkeeping lands in the victim's
// CommBreakdown/clock and the injector's telemetry.
class RecoveryCoordinator {
 public:
  // Rebuild `victim` to the consistent cut `to` (dense or frozen): the
  // merged global clock of the crash barrier for at-barrier events, the
  // frozen close-time clock of the victim's last durable interval for
  // after-release events.  `event_index` is the schedule slot returned by
  // the matching trigger predicate.  Must run on the victim's own thread.
  static void Recover(Node& victim, const VectorClock& to, int event_index);
};

}  // namespace dsm

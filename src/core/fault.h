// Deterministic fault injection and crash recovery (DESIGN.md §9).
//
// A seeded FaultPlan (core/config.h) names one victim processor and one
// modelled crash point: its n-th global barrier, or immediately after its
// m-th interval close.  The FaultInjector fires the plan exactly once, at
// that deterministic point, on the victim's own thread; the
// RecoveryCoordinator then rebuilds the victim's lost volatile state —
// private image, page-table protections and twins, vector clock, pending
// write-notice view — from the run's stable substrate:
//
//   * LRC:  canonical base images (the archive GC's barrier-epoch
//           checkpoints, CanonicalStore::ReadCheckpoint) plus the archived
//           interval records not yet flattened into them.  Archives model
//           write-ahead logs on stable storage: a record is durable the
//           moment the interval closes, so the victim's own log survives
//           the crash.  With an armed plan the GC runs in
//           *checkpoint-complete* mode (every dominated record reaches the
//           base, bases are never released), making base + surviving log
//           a complete history — the honest single-source-of-truth shape
//           the failure-free protocol does not need.
//   * HLRC: whole-unit copies from the home images.  With an armed plan
//           homes are assigned round-robin over the survivors from the
//           start (HomeOf skips the victim), modelling pre-crash home
//           migration away from the failing node, so the home image
//           survives in full.
//
// Recovery is *transparent*: the victim's thread continues from the crash
// point with rebuilt state, so the sync services never lose a live
// participant mid-run (LockService::OnCrash handles the lock-side sweep —
// force-releasing anything the victim held and invalidating its cached
// tokens).  Recovery traffic is modelled — messages and bytes in the
// CommBreakdown recovery counters, latency on the victim's virtual clock —
// but deliberately outside the paper's reader-side useful/useless taxonomy
// and the per-kind NetStats, which keeps every no-fault fingerprint
// bit-identical by construction.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/config.h"
#include "core/vector_clock.h"
#include "sim/virtual_clock.h"

namespace dsm {

class Node;
struct SharedState;

// Resolves a seeded plan: a negative victim is derived from plan.seed,
// uniform over 1..num_procs-1 (never proc 0, the barrier manager and
// serial-GC host).  Identity for plans with an explicit victim.
FaultPlan ResolveFaultPlan(FaultPlan plan, int num_procs);

// Owns one run's resolved FaultPlan and fires it exactly once.  All
// trigger predicates are pure functions of (plan, caller, protocol point);
// the fired flag is only ever read or written by the victim's thread
// (every predicate checks the caller id first).
class FaultInjector {
 public:
  // `resolved` must have victim >= 0 (SharedState resolves seeded plans).
  explicit FaultInjector(const FaultPlan& resolved);

  const FaultPlan& plan() const { return plan_; }

  // Called by every node inside the barrier of phase `sync_phase` (after
  // the idle-window GC, before notices are collected): true exactly once,
  // for the victim of a kAtBarrier plan at its planned barrier.
  bool ShouldCrashAtBarrier(ProcId proc, std::uint32_t sync_phase);

  // Called by the closing node right after its interval record with
  // sequence number `seq` was appended to its archive: true exactly once,
  // for the victim of a kAfterRelease plan at its planned close.
  bool ShouldCrashAfterClose(ProcId proc, Seq seq);

  bool fired() const { return fired_.load(std::memory_order_relaxed); }

  // Recovery telemetry, recorded by the RecoveryCoordinator.
  void OnRecovered(VirtualNanos modelled_ns, std::uint64_t wall_ns) {
    recovery_modelled_ns_ = modelled_ns;
    recovery_wall_ns_ = wall_ns;
    fired_.store(true, std::memory_order_relaxed);
  }
  VirtualNanos recovery_modelled_ns() const { return recovery_modelled_ns_; }
  std::uint64_t recovery_wall_ns() const { return recovery_wall_ns_; }

 private:
  const FaultPlan plan_;
  // Victim-thread-only during the run; atomic so CollectStats may read it
  // after the worker threads joined without formal UB.
  std::atomic<bool> fired_{false};
  VirtualNanos recovery_modelled_ns_ = 0;
  std::uint64_t recovery_wall_ns_ = 0;
};

// Rebuilds a crashed node.  Stateless — a friend of Node that performs the
// wipe-and-rebuild described above; all bookkeeping lands in the victim's
// CommBreakdown/clock and the injector's telemetry.
class RecoveryCoordinator {
 public:
  // Rebuild `victim` to the consistent cut `to` (dense or frozen): the
  // merged global clock of the crash barrier for kAtBarrier plans, the
  // frozen close-time clock of the victim's last durable interval for
  // kAfterRelease plans.  Must run on the victim's own thread.
  static void Recover(Node& victim, const VectorClock& to);
};

}  // namespace dsm

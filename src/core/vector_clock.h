// Vector timestamps for lazy release consistency (paper §2; Keleher et al.).
//
// Each processor p maintains VC_p; entry VC_p[q] is the latest interval of
// processor q whose modifications p is guaranteed to see.  An acquire
// merges the releaser's clock into the acquirer's; the write notices of all
// newly-covered intervals invalidate the corresponding consistency units.
//
// Representation: a clock is either *dense* (one Seq per processor — the
// mutable working form every node keeps for vc_ / notices_seen_) or
// *frozen* (run-length encoded — the immutable form interval records take
// once archived).  Barrier programs advance most components in lockstep,
// so a frozen close-time clock is a handful of runs regardless of
// num_procs; that is what makes per-notice clock metadata scale with the
// number of distinct writer frontiers instead of the cluster size
// (DESIGN.md §8).  Freezing is a representation change only: every
// observer (operator[], Covers, DominatedBy, Merge-from, operator==)
// answers identically on either form.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "mem/types.h"

namespace dsm {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(int num_procs) : entries_(num_procs, 0) {}

  Seq operator[](ProcId p) const {
    return runs_.empty() ? entries_[p] : AtFrozen(p);
  }
  // Mutation requires the dense form (frozen clocks are immutable).
  Seq& operator[](ProcId p) {
    DSM_DCHECK(runs_.empty());
    return entries_[p];
  }

  int size() const {
    return runs_.empty() ? static_cast<int>(entries_.size()) : size_;
  }

  bool frozen() const { return !runs_.empty(); }

  // Clocks with at most this many components stay dense even when frozen:
  // at the paper's native 8-processor scale the run vector costs as much
  // as it saves, and the dense fast path keeps the fault-time absorption
  // checks cheap.  Scaled runs (num_procs > 8) compact.
  static constexpr std::size_t kKeepDenseProcs = 8;

  // Compact to the run-length form (idempotent; keeps small clocks dense
  // — see kKeepDenseProcs).  Only legal once no caller will take a
  // mutable reference again — the archive freezes records at Append,
  // after which they are shared immutably.
  void Freeze();

  // Elementwise maximum (the acquire operation on clocks).  *this must be
  // dense; `other` may be either form.
  void Merge(const VectorClock& other);

  // True iff every entry of *this is <= the corresponding entry of other.
  bool DominatedBy(const VectorClock& other) const;

  // True iff the interval (proc, seq) is covered by this clock.
  bool Covers(ProcId proc, Seq seq) const { return (*this)[proc] >= seq; }

  // Sum of all components (the GC's happens-before sort key).  O(runs)
  // when frozen.
  std::uint64_t Sum() const;

  // Wire size of this clock under the sparse encoding: a 4-byte run count
  // followed by 8-byte (start, value) run descriptors, never worse than
  // the dense 4-byte-per-entry form it falls back to (DESIGN.md §8).
  // Telemetry only — the modelled 16-byte notice header abstracts the
  // clock, so these bytes never enter the modelled message totals.
  std::size_t EncodedBytes() const;
  static std::size_t DenseEncodedBytes(int num_procs) {
    return 4 + 4 * static_cast<std::size_t>(num_procs);
  }

  // Logical equality, independent of representation.
  bool operator==(const VectorClock& other) const;

  std::string ToString() const;

 private:
  // Frozen form: entries [start, next.start) all hold `value`; runs are
  // sorted by start and the first run starts at 0.
  struct Run {
    std::uint32_t start;
    Seq value;
  };

  // Last run whose start is <= p.  A forward linear scan (frozen clocks
  // in barrier programs hold one or two runs); kept out of line so the
  // dense fast path of operator[] stays a branch and a load on the fault
  // path's O(k²) absorption checks.
  Seq AtFrozen(ProcId p) const;

  std::vector<Seq> entries_;  // dense form (empty when frozen)
  std::vector<Run> runs_;     // frozen form (empty when dense)
  int size_ = 0;              // component count of the frozen form
};

}  // namespace dsm

// Vector timestamps for lazy release consistency (paper §2; Keleher et al.).
//
// Each processor p maintains VC_p; entry VC_p[q] is the latest interval of
// processor q whose modifications p is guaranteed to see.  An acquire
// merges the releaser's clock into the acquirer's; the write notices of all
// newly-covered intervals invalidate the corresponding consistency units.
#pragma once

#include <string>
#include <vector>

#include "mem/types.h"

namespace dsm {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(int num_procs) : entries_(num_procs, 0) {}

  Seq operator[](ProcId p) const { return entries_[p]; }
  Seq& operator[](ProcId p) { return entries_[p]; }

  int size() const { return static_cast<int>(entries_.size()); }

  // Elementwise maximum (the acquire operation on clocks).
  void Merge(const VectorClock& other);

  // True iff every entry of *this is <= the corresponding entry of other.
  bool DominatedBy(const VectorClock& other) const;

  // True iff the interval (proc, seq) is covered by this clock.
  bool Covers(ProcId proc, Seq seq) const { return entries_[proc] >= seq; }

  bool operator==(const VectorClock& other) const = default;

  std::string ToString() const;

 private:
  std::vector<Seq> entries_;
};

}  // namespace dsm

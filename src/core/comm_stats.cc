#include "core/comm_stats.h"

#include <sstream>

#include "common/check.h"

namespace dsm {

void CommBreakdown::Merge(const CommBreakdown& other) {
  useful_messages += other.useful_messages;
  useless_messages += other.useless_messages;
  sync_messages += other.sync_messages;
  useful_data_bytes += other.useful_data_bytes;
  piggyback_useless_bytes += other.piggyback_useless_bytes;
  useless_msg_data_bytes += other.useless_msg_data_bytes;
  delivered_data_bytes += other.delivered_data_bytes;
  home_flush_messages += other.home_flush_messages;
  home_flushes += other.home_flushes;
  home_flush_bytes += other.home_flush_bytes;
  home_fetches += other.home_fetches;
  home_fetch_bytes += other.home_fetch_bytes;
  recoveries += other.recoveries;
  recovery_messages += other.recovery_messages;
  recovery_data_bytes += other.recovery_data_bytes;
  recovery_units += other.recovery_units;
  recovery_records += other.recovery_records;
  recovery_retransmits += other.recovery_retransmits;
  recovery_retransmit_bytes += other.recovery_retransmit_bytes;
  signature.Merge(other.signature);
  read_faults += other.read_faults;
  write_faults += other.write_faults;
  silent_validations += other.silent_validations;
  twins_created += other.twins_created;
  diffs_created += other.diffs_created;
  diffs_applied += other.diffs_applied;
  units_invalidated += other.units_invalidated;
  group_prefetch_units += other.group_prefetch_units;
  notice_clock_bytes += other.notice_clock_bytes;
  notice_clock_bytes_dense += other.notice_clock_bytes_dense;
}

std::string CommBreakdown::ToString() const {
  std::ostringstream out;
  out << "messages: useful=" << useful_messages
      << " useless=" << useless_messages << " sync=" << sync_messages
      << "\n";
  out << "data bytes: useful=" << useful_data_bytes
      << " piggyback_useless=" << piggyback_useless_bytes
      << " useless_msg=" << useless_msg_data_bytes << "\n";
  out << "events: rfault=" << read_faults << " wfault=" << write_faults
      << " silent=" << silent_validations << " twin=" << twins_created
      << " diff+=" << diffs_created << " diff->=" << diffs_applied
      << " inval=" << units_invalidated << "\n";
  if (home_flushes + home_fetches > 0) {
    out << "home: flushes=" << home_flushes << " (" << home_flush_bytes
        << " B) fetches=" << home_fetches << " (" << home_fetch_bytes
        << " B)\n";
  }
  if (recoveries > 0) {
    out << "recovery: episodes=" << recoveries
        << " messages=" << recovery_messages << " ("
        << recovery_data_bytes << " B) units=" << recovery_units
        << " records=" << recovery_records << " retransmits="
        << recovery_retransmits << " (" << recovery_retransmit_bytes
        << " B)\n";
  }
  if (notice_clock_bytes_dense > 0) {
    out << "notice clocks: sparse=" << notice_clock_bytes
        << " B dense-equivalent=" << notice_clock_bytes_dense << " B\n";
  }
  out << "signature:\n" << signature.ToString();
  return out.str();
}

std::uint32_t CommStats::NewExchange(ProcId writer) {
  exchanges_.push_back({writer, 0, 0, 0});
  return static_cast<std::uint32_t>(exchanges_.size() - 1);
}

void CommStats::AddDelivered(std::uint32_t exchange_id, std::uint32_t words,
                             std::uint32_t payload_bytes) {
  auto& e = exchanges_[exchange_id];
  e.delivered_words += words;
  e.payload_bytes += payload_bytes;
}

void CommStats::RecordFault(int num_writers, std::uint32_t first_exchange) {
  DSM_CHECK_GT(num_writers, 0);
  faults_.push_back(
      {first_exchange, static_cast<std::uint16_t>(num_writers)});
}

CommBreakdown CommStats::Finalize() const {
  CommBreakdown out = counters_;

  for (const auto& e : exchanges_) {
    const bool useful = e.useful_words > 0;
    const std::uint64_t useful_bytes =
        static_cast<std::uint64_t>(e.useful_words) * kWordBytes;
    const std::uint64_t useless_bytes =
        static_cast<std::uint64_t>(e.delivered_words - e.useful_words) *
        kWordBytes;
    if (useful) {
      out.useful_messages += 2;  // request + response
      out.useful_data_bytes += useful_bytes;
      out.piggyback_useless_bytes += useless_bytes;
    } else {
      out.useless_messages += 2;
      out.useless_msg_data_bytes += useless_bytes;
    }
  }

  for (const auto& f : faults_) {
    for (std::uint16_t i = 0; i < f.num_writers; ++i) {
      const auto& e = exchanges_[f.first_exchange + i];
      if (e.useful_words > 0) {
        out.signature.AddUseful(f.num_writers);
      } else {
        out.signature.AddUseless(f.num_writers);
      }
    }
  }
  return out;
}

}  // namespace dsm

// Public API of the pagedsm library.
//
// Typical use (see examples/quickstart.cc):
//
//   dsm::RuntimeConfig cfg;
//   cfg.num_procs = 8;
//   cfg.pages_per_unit = 2;                  // 8 KB consistency units
//   dsm::Runtime rt(cfg);
//   auto grid = rt.Alloc<float>(n, "grid");
//   rt.Run([&](dsm::Proc& p) {
//     for (std::size_t i = p.id(); i < n; i += p.nprocs())
//       p.Write(grid, i, Work(p.Read(grid, i)));
//     p.Barrier();
//   });
//   dsm::RunStats stats = rt.CollectStats();
//
// One Runtime = one DSM session: allocate shared memory, run one parallel
// region (one function executed by every logical processor), then collect
// the communication statistics and modelled execution time.
#pragma once

#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "analysis/race_detector.h"
#include "core/protocol.h"

namespace dsm {

// Typed handle to a shared allocation.  Cheap value type; the data lives in
// the DSM address space and is reached through a Proc.
template <typename T>
class SharedArray {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "shared data must be trivially copyable");
  static_assert(sizeof(T) % kWordBytes == 0,
                "shared element size must be a multiple of the 4-byte word");

  SharedArray() = default;
  SharedArray(GlobalAddr base, std::size_t count)
      : base_(base), count_(count) {}

  GlobalAddr base() const { return base_; }
  std::size_t size() const { return count_; }
  GlobalAddr addr_of(std::size_t i) const {
    DSM_DCHECK(i < count_);
    return base_ + i * sizeof(T);
  }

 private:
  GlobalAddr base_ = 0;
  std::size_t count_ = 0;
};

// The per-processor handle passed to the parallel body.
class Proc {
 public:
  explicit Proc(Node& node) : node_(node) {}

  ProcId id() const { return node_.id(); }
  int nprocs() const { return node_.num_procs(); }

  template <typename T>
  T Read(const SharedArray<T>& a, std::size_t i) {
    T out;
    node_.ReadBytes(a.addr_of(i), &out, sizeof(T));
    return out;
  }

  template <typename T>
  void Write(const SharedArray<T>& a, std::size_t i, const T& v) {
    node_.WriteBytes(a.addr_of(i), &v, sizeof(T));
  }

  // Raw-address access, for per-field access into shared structs:
  //   p.ReadAt<float>(bodies.addr_of(i) + offsetof(Body, x))
  template <typename T>
  T ReadAt(GlobalAddr addr) {
    static_assert(sizeof(T) % kWordBytes == 0);
    T out;
    node_.ReadBytes(addr, &out, sizeof(T));
    return out;
  }

  template <typename T>
  void WriteAt(GlobalAddr addr, const T& v) {
    static_assert(sizeof(T) % kWordBytes == 0);
    node_.WriteBytes(addr, &v, sizeof(T));
  }

  void Barrier() { node_.Barrier(); }
  void Lock(int lock_id) { node_.AcquireLock(lock_id); }
  void Unlock(int lock_id) { node_.ReleaseLock(lock_id); }

  // Charge `flops` of private computation to the virtual clock.
  void Compute(std::uint64_t flops) { node_.Compute(flops); }

  VirtualNanos now() const { return node_.clock().now(); }

  Node& node() { return node_; }

 private:
  Node& node_;
};

// Host-side memory footprint of one Run (archive GC telemetry).  NOT part
// of the modelled state: these numbers change with
// RuntimeConfig::gc_interval_barriers while every modelled quantity stays
// bit-identical, so fingerprints and equivalence checks must exclude them.
struct MemoryFootprint {
  std::uint64_t peak_live_intervals = 0;  // across all archives
  std::uint64_t peak_archive_bytes = 0;   // notice metadata + diff wire size
  std::uint64_t reclaimed_intervals = 0;
  std::uint64_t canonical_base_peak_bytes = 0;
  std::uint64_t gc_passes = 0;
  // Archive-GC chain economics (DESIGN.md §6): chain bodies built, chain
  // headers adopted from the GC's intern cache (shared flattened chains),
  // and dominated record references skipped by read-aware flattening.
  std::uint64_t chains_built = 0;
  std::uint64_t chains_shared = 0;
  std::uint64_t records_elided = 0;
};

// Aggregated results of one Run.
struct RunStats {
  VirtualNanos exec_time = 0;  // max over nodes (the run's critical path)
  std::vector<VirtualNanos> node_times;
  CommBreakdown comm;
  NetStats net;
  MemoryFootprint mem;
  // Crash recovery (DESIGN.md §9): how many schedule events fired, the
  // modelled latency the rebuilds charged to the victims' clocks, and the
  // host wall-clock they took.  Zero — and absent from ToString — unless
  // at least one event of the fault schedule fired.
  int recovery_events = 0;
  VirtualNanos recovery_modelled_ns = 0;
  std::uint64_t recovery_wall_ns = 0;
  // Happens-before race detection (DESIGN.md §10): deduplicated reports
  // in deterministic order.  Default (races.checked == false — and absent
  // from ToString) unless RuntimeConfig::race_check was on.  Host-side
  // observability like `mem`: excluded from fingerprints and modelled
  // equivalence checks.
  RaceStats races;

  double exec_seconds() const {
    return static_cast<double>(exec_time) /
           static_cast<double>(kNanosPerSecond);
  }
  std::string ToString() const;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Shared-memory allocation; call before Run.
  template <typename T>
  SharedArray<T> Alloc(std::size_t count, const char* name = nullptr) {
    const std::size_t align =
        alignof(T) > kWordBytes ? alignof(T) : kWordBytes;
    return SharedArray<T>(
        shared_.heap.Alloc(count * sizeof(T), align, name), count);
  }

  // Allocation starting on a consistency-unit boundary.
  template <typename T>
  SharedArray<T> AllocUnitAligned(std::size_t count,
                                  const char* name = nullptr) {
    return SharedArray<T>(
        shared_.heap.AllocUnitAligned(count * sizeof(T), name), count);
  }

  // Execute `body` once per logical processor (proc 0 runs on the calling
  // thread).  May be called once per Runtime.
  void Run(const std::function<void(Proc&)>& body);

  // Finalize and merge per-node statistics.  Call after Run.
  RunStats CollectStats() const;

  const RuntimeConfig& config() const { return shared_.config; }
  GlobalHeap& heap() { return shared_.heap; }
  SharedState& shared() { return shared_; }
  Node& node(ProcId p) { return *nodes_[p]; }

 private:
  SharedState shared_;
  std::vector<std::unique_ptr<Node>> nodes_;
  bool ran_ = false;
};

}  // namespace dsm

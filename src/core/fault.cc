#include "core/fault.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/protocol.h"

namespace dsm {
namespace {

// Deterministic mixer for seed-derived plan choices (SplitMix64).
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

[[noreturn]] void Invalid(const std::string& msg) {
  throw std::invalid_argument("RuntimeConfig: " + msg);
}

}  // namespace

// ---------------------------------------------------------------------------
// RuntimeConfig validation (lives here with the rest of the robustness
// machinery; config.h stays header-only otherwise).
// ---------------------------------------------------------------------------

void RuntimeConfig::Validate() const {
  if (num_procs < 1) {
    Invalid("num_procs must be >= 1 (got " + std::to_string(num_procs) + ")");
  }
  if (num_procs == 1 && !allow_sequential) {
    Invalid(
        "num_procs == 1 is a degenerate DSM (no sharing, protocol "
        "disabled); set allow_sequential = true for an intentional "
        "sequential-oracle run");
  }
  if (num_procs > 4096) {
    Invalid("num_procs = " + std::to_string(num_procs) +
            " is absurd (limit 4096)");
  }
  if (heap_bytes == 0) Invalid("heap_bytes must be > 0");
  if (heap_bytes > (std::size_t{1} << 40)) {
    Invalid("heap_bytes = " + std::to_string(heap_bytes) +
            " is absurd (limit 1 TiB)");
  }
  if (pages_per_unit < 1 || pages_per_unit > 1024) {
    Invalid("pages_per_unit must be in [1, 1024] (got " +
            std::to_string(pages_per_unit) + ")");
  }
  if ((pages_per_unit & (pages_per_unit - 1)) != 0) {
    Invalid("pages_per_unit must be a power of two (got " +
            std::to_string(pages_per_unit) +
            "); the unit-index fast path shifts and masks");
  }
  if (max_group_pages < 1) {
    Invalid("max_group_pages must be >= 1 (got " +
            std::to_string(max_group_pages) + ")");
  }
  if (gc_interval_barriers < 0) {
    Invalid("gc_interval_barriers must be >= 0 (0 disables GC; got " +
            std::to_string(gc_interval_barriers) + ")");
  }
  if (gc_lag_barriers < 1) {
    Invalid("gc_lag_barriers must be >= 1 (the flatten target must lag at "
            "least one completed barrier; got " +
            std::to_string(gc_lag_barriers) + ")");
  }
  if (gc_lag_barriers > 1024) {
    Invalid("gc_lag_barriers = " + std::to_string(gc_lag_barriers) +
            " is absurd (limit 1024)");
  }
  if (hlrc_home_block_units < 1) {
    Invalid("hlrc_home_block_units must be >= 1 (got " +
            std::to_string(hlrc_home_block_units) + ")");
  }
  if (num_locks < 1) {
    Invalid("num_locks must be >= 1 (got " + std::to_string(num_locks) + ")");
  }
  if (fault.armed()) {
    if (backend == BackendKind::kReference) {
      Invalid("fault injection requires a protocol backend; the reference "
              "oracle has no archives or homes to recover from");
    }
    if (num_procs < 2) {
      Invalid("fault injection requires num_procs >= 2 (someone must "
              "survive the crash)");
    }
    if (fault.victim == 0) {
      Invalid("fault.victim must not be processor 0 (the barrier manager "
              "and serial-GC host)");
    }
    if (fault.victim >= num_procs) {
      Invalid("fault.victim = " + std::to_string(fault.victim) +
              " out of range for num_procs = " + std::to_string(num_procs));
    }
    if (fault.kind == FaultKind::kAtBarrier && fault.barrier < 0) {
      Invalid("fault.barrier must be >= 0 (got " +
              std::to_string(fault.barrier) + ")");
    }
    if (fault.kind == FaultKind::kAfterRelease && fault.release < 1) {
      Invalid("fault.release must be >= 1 (got " +
              std::to_string(fault.release) + ")");
    }
    if (backend == BackendKind::kLrc && gc_interval_barriers == 0) {
      Invalid("no checkpoint available: LRC crash recovery rebuilds from "
              "the archive GC's canonical bases, but gc_interval_barriers "
              "== 0 disables the GC; enable it or use the HLRC backend");
    }
  }
}

// ---------------------------------------------------------------------------
// Plan resolution
// ---------------------------------------------------------------------------

FaultPlan FaultPlan::FromSeed(std::uint64_t seed) {
  FaultPlan p;
  const std::uint64_t r = Mix64(seed);
  p.kind = (r & 1) != 0 ? FaultKind::kAtBarrier : FaultKind::kAfterRelease;
  p.victim = -1;  // derived from the seed once num_procs is known
  p.barrier = 1 + static_cast<int>((r >> 16) % 4);
  p.release = 1 + static_cast<int>((r >> 24) % 8);
  p.seed = seed;
  return p;
}

FaultPlan ResolveFaultPlan(FaultPlan plan, int num_procs) {
  if (!plan.armed() || plan.victim >= 0) return plan;
  DSM_CHECK_GE(num_procs, 2);
  const std::uint64_t r = Mix64(plan.seed ^ 0xdeadbeefcafef00dull);
  plan.victim =
      1 + static_cast<int>(r % static_cast<std::uint64_t>(num_procs - 1));
  return plan;
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultInjector::FaultInjector(const FaultPlan& resolved) : plan_(resolved) {
  DSM_CHECK(plan_.armed());
  DSM_CHECK_GE(plan_.victim, 0);
}

bool FaultInjector::ShouldCrashAtBarrier(ProcId proc,
                                         std::uint32_t sync_phase) {
  if (proc != plan_.victim || plan_.kind != FaultKind::kAtBarrier) {
    return false;
  }
  if (fired_.load(std::memory_order_relaxed)) return false;
  return sync_phase == static_cast<std::uint32_t>(plan_.barrier);
}

bool FaultInjector::ShouldCrashAfterClose(ProcId proc, Seq seq) {
  if (proc != plan_.victim || plan_.kind != FaultKind::kAfterRelease) {
    return false;
  }
  if (fired_.load(std::memory_order_relaxed)) return false;
  return seq == static_cast<Seq>(plan_.release);
}

// ---------------------------------------------------------------------------
// RecoveryCoordinator
// ---------------------------------------------------------------------------

void RecoveryCoordinator::Recover(Node& node, const VectorClock& to) {
  const auto wall_start = std::chrono::steady_clock::now();
  SharedState& shared = node.shared_;
  const CostModel& cost = shared.config.cost;
  const int nprocs = shared.config.num_procs;
  const std::size_t num_units = shared.heap.num_units();
  const std::size_t unit_bytes = node.unit_bytes_;
  CommBreakdown& c = node.comm_stats_.counters();
  c.recoveries += 1;

  // Dense copy of the consistent cut the victim rebuilds to.
  VectorClock cut(nprocs);
  cut.Merge(to);

  // --- wipe: everything below models node-local volatile state -------------
  // The crash points guarantee no twin exists and no interval is half
  // closed (both fire right after an interval reached the archive, or
  // inside a barrier with every interval closed).
  std::memset(node.data_, 0, shared.heap.heap_bytes());
  for (UnitId u = 0; u < num_units; ++u) {
    node.table_.DropTwin(u);
    node.table_.set_state(u, UnitState::kReadValid);
    node.pending_[u].clear();
    node.flattened_[u].clear();
    node.elided_[u].clear();
    node.retwin_cheap_[u] = 0;
    node.diff_request_seen_[u] = 0;
    // Register the victim as a sharer of EVERY unit: its rebuilt image is
    // now newer than the shared virgin history, so a later first-fault
    // adoption of those dominated chains would clobber replayed content.
    // Safe — the virgin-store release check requires every proc
    // registered, which only drops history no one can need.
    shared.sharers->Register(u, node.id_);
  }
  node.table_.ClearDirtyList();
  if (!node.twin_dirty_.empty()) {
    std::fill(node.twin_dirty_.begin(), node.twin_dirty_.end(), 0);
  }

  // --- rebuild the image from the stable substrate --------------------------
  VirtualNanos slowest = 0;  // parallel sources: clock takes the max
  VirtualNanos install = 0;  // local per-unit / per-diff apply work
  if (!node.hlrc_) {
    // LRC (DESIGN.md §9): canonical bases hold every interval at or below
    // the checkpoint watermark (checkpoint-complete GC mode); the archives
    // — stable write-ahead logs, the victim's own included — hold the
    // rest.  Replay above the watermark in happens-before order.
    const VectorClock& cvc = shared.checkpoint_vc;
    std::size_t base_units = 0;
    for (UnitId u = 0; u < num_units; ++u) {
      if (shared.canonical->ReadCheckpoint(u, node.UnitSpan(u))) {
        ++base_units;
      }
    }
    if (base_units > 0) {
      // One bulk exchange with the checkpoint store: request header, one
      // (unit id + payload) per base image.
      const std::size_t resp = base_units * (16 + unit_bytes);
      c.recovery_messages += 2;
      c.recovery_data_bytes += base_units * unit_bytes;
      slowest = std::max(
          slowest, shared.net.RoundTripTime(16, resp) +
                       cost.request_service_overhead +
                       static_cast<VirtualNanos>(base_units) *
                           cost.TwinCost(unit_bytes));
      install += static_cast<VirtualNanos>(base_units) *
                 cost.TwinCost(unit_bytes);
    }

    struct Replay {
      UnitId unit;
      const IntervalRecord* rec;
      int di;
      std::uint64_t vc_sum;
    };
    std::vector<Replay> replay;
    for (ProcId p = 0; p < nprocs; ++p) {
      const auto range = shared.archives[p]->Range(cvc[p], cut[p]);
      if (range.empty()) continue;
      // One exchange per contributing log: request header, per-record
      // notice header plus the encoded diffs.
      std::size_t resp = 0;
      for (const IntervalRecord* rec : range) {
        const std::uint64_t sum = rec->vc.Sum();
        resp += 16;
        for (std::size_t k = 0; k < rec->units.size(); ++k) {
          const Diff& d = rec->diffs[k];
          resp += d.EncodedBytes();
          c.recovery_data_bytes += d.payload_bytes();
          replay.push_back(
              {rec->units[k], rec, static_cast<int>(k), sum});
        }
      }
      c.recovery_messages += 2;
      c.recovery_records += range.size();
      slowest = std::max(slowest, shared.net.RoundTripTime(16, resp) +
                                      cost.request_service_overhead);
    }
    // Happens-before order per unit (same linear extension as the GC
    // apply pass: clock sums, (proc, seq) tie-break for concurrent
    // records — race-free programs write disjoint words there).
    std::sort(replay.begin(), replay.end(),
              [](const Replay& a, const Replay& b) {
                if (a.unit != b.unit) return a.unit < b.unit;
                if (a.vc_sum != b.vc_sum) return a.vc_sum < b.vc_sum;
                return a.rec->proc != b.rec->proc
                           ? a.rec->proc < b.rec->proc
                           : a.rec->seq < b.rec->seq;
              });
    for (const Replay& r : replay) {
      const Diff& d = r.rec->diffs[static_cast<std::size_t>(r.di)];
      d.Apply(node.UnitSpan(r.unit));
      install += cost.DiffApplyCost(d.payload_bytes());
    }
  } else {
    // HLRC (DESIGN.md §9): every unit's master copy lives at a surviving
    // home (HomeOf skips the victim under an armed plan) — recovery is
    // one whole-unit fetch sweep, one combined exchange per home.
    std::vector<std::size_t> units_per_home(
        static_cast<std::size_t>(nprocs), 0);
    for (UnitId u = 0; u < num_units; ++u) {
      ++units_per_home[static_cast<std::size_t>(shared.HomeOf(u))];
    }
    for (ProcId h = 0; h < nprocs; ++h) {
      const std::size_t n = units_per_home[static_cast<std::size_t>(h)];
      if (n == 0) continue;
      const std::size_t req = 16 + 8 * n;
      const std::size_t resp = n * (16 + unit_bytes);
      c.recovery_messages += 2;
      c.recovery_data_bytes += n * unit_bytes;
      slowest = std::max(
          slowest,
          shared.net.RoundTripTime(req, resp) +
              cost.request_service_overhead +
              static_cast<VirtualNanos>(n) * cost.TwinCost(unit_bytes));
    }
    for (UnitId u = 0; u < num_units; ++u) {
      const std::span<std::byte> dst = node.UnitSpan(u);
      std::lock_guard lock(shared.home_mutexes[u]);
      std::memcpy(dst.data(),
                  shared.home_image.get() + shared.heap.UnitBase(u),
                  unit_bytes);
      install += cost.TwinCost(unit_bytes);
    }
  }
  c.recovery_units += num_units;

  // --- rebuild the clocks and the notice view -------------------------------
  // Everything the cut covers is now IN the image, so it counts as
  // consumed: records above the cut redeliver through the normal
  // CollectNotices path at the victim's next synchronization (they
  // survive — nothing above the cut can be flattened while the victim,
  // a barrier participant, is mid-recovery).
  node.vc_ = cut;
  node.notices_seen_ = cut;

  const VirtualNanos modelled = slowest + install;
  node.clock_.Advance(modelled);

  // Lock-side sweep: drop the victim from every grant queue, force-release
  // anything it held (publishing the recovered clock/time, exactly what
  // its own release at the crash point would have), invalidate its cached
  // tokens.  Its in-flight transparent release becomes an orphan no-op.
  shared.locks->OnCrash(node.id_, node.vc_, node.clock_.now());

  const auto wall_end = std::chrono::steady_clock::now();
  shared.fault->OnRecovered(
      modelled,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end -
                                                               wall_start)
              .count()));
}

}  // namespace dsm

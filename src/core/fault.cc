#include "core/fault.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/race_detector.h"
#include "common/check.h"
#include "core/protocol.h"

namespace dsm {
namespace {

// Deterministic mixer for seed-derived plan choices (SplitMix64).
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

[[noreturn]] void Invalid(const std::string& msg) {
  throw std::invalid_argument("RuntimeConfig: " + msg);
}

}  // namespace

// ---------------------------------------------------------------------------
// RuntimeConfig validation (lives here with the rest of the robustness
// machinery; config.h stays header-only otherwise).
// ---------------------------------------------------------------------------

void RuntimeConfig::Validate() const {
  if (num_procs < 1) {
    Invalid("num_procs must be >= 1 (got " + std::to_string(num_procs) + ")");
  }
  if (num_procs == 1 && !allow_sequential) {
    Invalid(
        "num_procs == 1 is a degenerate DSM (no sharing, protocol "
        "disabled); set allow_sequential = true for an intentional "
        "sequential-oracle run");
  }
  if (num_procs > 4096) {
    Invalid("num_procs = " + std::to_string(num_procs) +
            " is absurd (limit 4096)");
  }
  if (heap_bytes == 0) Invalid("heap_bytes must be > 0");
  if (heap_bytes > (std::size_t{1} << 40)) {
    Invalid("heap_bytes = " + std::to_string(heap_bytes) +
            " is absurd (limit 1 TiB)");
  }
  if (pages_per_unit < 1 || pages_per_unit > 1024) {
    Invalid("pages_per_unit must be in [1, 1024] (got " +
            std::to_string(pages_per_unit) + ")");
  }
  if ((pages_per_unit & (pages_per_unit - 1)) != 0) {
    Invalid("pages_per_unit must be a power of two (got " +
            std::to_string(pages_per_unit) +
            "); the unit-index fast path shifts and masks");
  }
  if (max_group_pages < 1) {
    Invalid("max_group_pages must be >= 1 (got " +
            std::to_string(max_group_pages) + ")");
  }
  if (gc_interval_barriers < 0) {
    Invalid("gc_interval_barriers must be >= 0 (0 disables GC; got " +
            std::to_string(gc_interval_barriers) + ")");
  }
  if (gc_lag_barriers < 1) {
    Invalid("gc_lag_barriers must be >= 1 (the flatten target must lag at "
            "least one completed barrier; got " +
            std::to_string(gc_lag_barriers) + ")");
  }
  if (gc_lag_barriers > 1024) {
    Invalid("gc_lag_barriers = " + std::to_string(gc_lag_barriers) +
            " is absurd (limit 1024)");
  }
  if (hlrc_home_block_units < 1) {
    Invalid("hlrc_home_block_units must be >= 1 (got " +
            std::to_string(hlrc_home_block_units) + ")");
  }
  if (num_locks < 1) {
    Invalid("num_locks must be >= 1 (got " + std::to_string(num_locks) + ")");
  }
  if (fault.armed()) {
    if (backend == BackendKind::kReference) {
      Invalid("fault injection requires a protocol backend; the reference "
              "oracle has no archives or homes to recover from");
    }
    if (num_procs < 2) {
      Invalid("fault injection requires num_procs >= 2 (someone must "
              "survive the crash)");
    }
    if (fault.events.size() > 64) {
      Invalid("fault schedule has " + std::to_string(fault.events.size()) +
              " events; limit 64");
    }
    for (std::size_t i = 0; i < fault.events.size(); ++i) {
      const FaultPlan& e = fault.events[i];
      const std::string slot = "fault.events[" + std::to_string(i) + "]";
      if (!e.armed()) {
        Invalid(slot + " is unarmed (kind == kNone); schedules hold only "
                "armed events");
      }
      // Any victim is legal, processor 0 included: the coordinator roles
      // fail over for the crash barrier (DESIGN.md §9).
      if (e.victim >= num_procs) {
        Invalid(slot + ".victim = " + std::to_string(e.victim) +
                " out of range for num_procs = " + std::to_string(num_procs));
      }
      if (e.kind == FaultKind::kAtBarrier && e.barrier < 0) {
        Invalid(slot + ".barrier must be >= 0 (got " +
                std::to_string(e.barrier) + ")");
      }
      if (e.kind == FaultKind::kAfterRelease && e.release < 1) {
        Invalid(slot + ".release must be >= 1 (got " +
                std::to_string(e.release) + ")");
      }
      for (std::size_t j = 0; j < i; ++j) {
        const FaultPlan& f = fault.events[j];
        if (e.victim < 0 || f.victim != e.victim || f.kind != e.kind) {
          continue;  // seeded victims are de-duplicated at resolve time
        }
        const bool same_point = e.kind == FaultKind::kAtBarrier
                                    ? f.barrier == e.barrier
                                    : f.release == e.release;
        if (same_point) {
          Invalid(slot + " duplicates event " + std::to_string(j) + " (" +
                  e.Label() + "): a victim dies at most once per trigger "
                  "point");
        }
      }
    }
    // Every barrier phase needs a survivor to run the coordinator roles.
    for (const FaultPlan& e : fault.events) {
      if (e.kind != FaultKind::kAtBarrier || e.victim < 0) continue;
      int dead = 0;
      for (int v = 0; v < num_procs; ++v) {
        for (const FaultPlan& f : fault.events) {
          if (f.kind == FaultKind::kAtBarrier && f.victim == v &&
              f.barrier == e.barrier) {
            ++dead;
            break;
          }
        }
      }
      if (dead == num_procs) {
        Invalid("fault schedule kills every processor at barrier " +
                std::to_string(e.barrier) +
                "; at least one must survive to coordinate");
      }
    }
    if (backend == BackendKind::kLrc && gc_interval_barriers == 0) {
      Invalid("no checkpoint available: LRC crash recovery rebuilds from "
              "the archive GC's canonical bases, but gc_interval_barriers "
              "== 0 disables the GC; enable it or use the HLRC backend");
    }
  }
}

// ---------------------------------------------------------------------------
// Plan resolution
// ---------------------------------------------------------------------------

FaultPlan FaultPlan::FromSeed(std::uint64_t seed) {
  FaultPlan p;
  const std::uint64_t r = Mix64(seed);
  p.kind = (r & 1) != 0 ? FaultKind::kAtBarrier : FaultKind::kAfterRelease;
  p.victim = -1;  // derived from the seed once num_procs is known
  p.barrier = 1 + static_cast<int>((r >> 16) % 4);
  p.release = 1 + static_cast<int>((r >> 24) % 8);
  p.seed = seed;
  return p;
}

std::string FaultPlan::Label() const {
  if (!armed()) return "none";
  const std::string v = victim < 0 ? "?" : std::to_string(victim);
  return kind == FaultKind::kAtBarrier
             ? "barrier:" + v + "@" + std::to_string(barrier)
             : "release:" + v + "@" + std::to_string(release);
}

FaultSchedule FaultSchedule::FromSeed(std::uint64_t seed) {
  FaultSchedule s;
  s.seed = seed;
  const int count = 1 + static_cast<int>(Mix64(seed) % 3);
  for (int i = 0; i < count; ++i) {
    // Distinct sub-seed per event so kinds and points decorrelate.
    s.events.push_back(FaultPlan::FromSeed(
        Mix64(seed + 0x9e3779b97f4a7c15ull *
                         static_cast<std::uint64_t>(i + 1))));
  }
  return s;
}

std::string FaultSchedule::Label() const {
  if (events.empty()) return "none";
  std::string out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += '+';
    out += events[i].Label();
  }
  return out;
}

FaultPlan ResolveFaultPlan(FaultPlan plan, int num_procs) {
  if (!plan.armed() || plan.victim >= 0) return plan;
  DSM_CHECK_GE(num_procs, 2);
  const std::uint64_t r = Mix64(plan.seed ^ 0xdeadbeefcafef00dull);
  // Uniform over ALL processors — proc 0's coordinator roles fail over.
  plan.victim = static_cast<int>(r % static_cast<std::uint64_t>(num_procs));
  return plan;
}

FaultSchedule ResolveFaultSchedule(FaultSchedule schedule, int num_procs) {
  if (!schedule.armed()) return schedule;
  DSM_CHECK_GE(num_procs, 2);
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    FaultPlan& e = schedule.events[i];
    if (e.victim >= 0) continue;
    // Event 0 reproduces the single-plan derivation exactly; later events
    // add an index salt so one seed yields independent victims.
    const std::uint64_t r = Mix64(
        e.seed ^ (0xdeadbeefcafef00dull +
                  0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i)));
    e.victim = static_cast<int>(r % static_cast<std::uint64_t>(num_procs));
  }
  // Deterministic well-formedness fix-ups, so every seeded schedule is
  // runnable: (1) no two events share (victim, kind, point) — bump the
  // later event's point; (2) no barrier phase kills every processor —
  // bump the offending event's barrier.  Each bump only increases trigger
  // points, so the loop reaches a fixed point quickly.
  for (int pass = 0;; ++pass) {
    DSM_CHECK_LT(pass, 1024) << "re-home fix-ups failed to stabilize";
    bool changed = false;
    for (std::size_t i = 0; i < schedule.events.size(); ++i) {
      FaultPlan& e = schedule.events[i];
      for (std::size_t j = 0; j < i; ++j) {
        const FaultPlan& f = schedule.events[j];
        if (f.victim != e.victim || f.kind != e.kind) continue;
        if (e.kind == FaultKind::kAtBarrier && f.barrier == e.barrier) {
          ++e.barrier;
          changed = true;
        } else if (e.kind == FaultKind::kAfterRelease &&
                   f.release == e.release) {
          ++e.release;
          changed = true;
        }
      }
    }
    for (std::size_t i = 0; i < schedule.events.size(); ++i) {
      FaultPlan& e = schedule.events[i];
      if (e.kind != FaultKind::kAtBarrier) continue;
      int dead = 0;
      for (int v = 0; v < num_procs; ++v) {
        for (const FaultPlan& f : schedule.events) {
          if (f.kind == FaultKind::kAtBarrier && f.victim == v &&
              f.barrier == e.barrier) {
            ++dead;
            break;
          }
        }
      }
      if (dead == num_procs) {
        ++e.barrier;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return schedule;
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultInjector::FaultInjector(const FaultSchedule& resolved)
    : schedule_(resolved),
      fired_(new std::atomic<std::uint8_t>[resolved.events.size()]) {
  DSM_CHECK(schedule_.armed());
  for (std::size_t i = 0; i < schedule_.events.size(); ++i) {
    DSM_CHECK_GE(schedule_.events[i].victim, 0);
    fired_[i].store(0, std::memory_order_relaxed);
  }
}

int FaultInjector::MatchAtBarrier(ProcId proc,
                                  std::uint32_t sync_phase) const {
  for (std::size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultPlan& e = schedule_.events[i];
    if (e.kind != FaultKind::kAtBarrier || e.victim != proc) continue;
    if (sync_phase != static_cast<std::uint32_t>(e.barrier)) continue;
    if (fired_[i].load(std::memory_order_acquire) != 0) continue;
    return static_cast<int>(i);
  }
  return -1;
}

int FaultInjector::MatchAfterClose(ProcId proc, Seq seq) const {
  for (std::size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultPlan& e = schedule_.events[i];
    if (e.kind != FaultKind::kAfterRelease || e.victim != proc) continue;
    if (seq != static_cast<Seq>(e.release)) continue;
    if (fired_[i].load(std::memory_order_acquire) != 0) continue;
    return static_cast<int>(i);
  }
  return -1;
}

bool FaultInjector::CrashesAtBarrier(ProcId proc,
                                     std::uint32_t sync_phase) const {
  for (const FaultPlan& e : schedule_.events) {
    if (e.kind == FaultKind::kAtBarrier && e.victim == proc &&
        static_cast<std::uint32_t>(e.barrier) == sync_phase) {
      return true;
    }
  }
  return false;
}

void FaultInjector::OnRecovered(int event_index, VirtualNanos modelled_ns,
                                std::uint64_t wall_ns) {
  DSM_CHECK_GE(event_index, 0);
  DSM_CHECK_LT(static_cast<std::size_t>(event_index),
               schedule_.events.size());
  recovery_modelled_ns_.fetch_add(modelled_ns, std::memory_order_acq_rel);
  recovery_wall_ns_.fetch_add(wall_ns, std::memory_order_acq_rel);
  fired_[static_cast<std::size_t>(event_index)].store(
      1, std::memory_order_release);
  fired_count_.fetch_add(1, std::memory_order_acq_rel);
}

// ---------------------------------------------------------------------------
// RecoveryCoordinator
// ---------------------------------------------------------------------------

void RecoveryCoordinator::Recover(Node& node, const VectorClock& to,
                                  int event_index) {
  const auto wall_start = std::chrono::steady_clock::now();
  SharedState& shared = node.shared_;
  const CostModel& cost = shared.config.cost;
  const int nprocs = shared.config.num_procs;
  const std::size_t num_units = shared.heap.num_units();
  const std::size_t unit_bytes = node.unit_bytes_;
  CommBreakdown& c = node.comm_stats_.counters();
  c.recoveries += 1;

  // Dense copy of the consistent cut the victim rebuilds to.
  VectorClock cut(nprocs);
  cut.Merge(to);

  // --- wipe: everything below models node-local volatile state -------------
  // The crash points guarantee no twin exists and no interval is half
  // closed (both fire right after an interval reached the archive, or
  // inside a barrier with every interval closed).
  std::memset(node.data_, 0, shared.heap.heap_bytes());
  node.table_.ResetForRecovery();
  for (UnitId u = 0; u < num_units; ++u) {
    node.pending_[u].clear();
    node.flattened_[u].clear();
    node.elided_[u].clear();
    node.retwin_cheap_[u] = 0;
    node.diff_request_seen_[u] = 0;
    // Register the victim as a sharer of EVERY unit: its rebuilt image is
    // now newer than the shared virgin history, so a later first-fault
    // adoption of those dominated chains would clobber replayed content.
    // Safe — the virgin-store release check requires every proc
    // registered, which only drops history no one can need.
    shared.sharers->Register(u, node.id_);
  }
  if (!node.twin_dirty_.empty()) {
    std::fill(node.twin_dirty_.begin(), node.twin_dirty_.end(), 0);
  }

  // --- rebuild the image from the stable substrate --------------------------
  VirtualNanos slowest = 0;  // parallel sources: clock takes the max
  VirtualNanos install = 0;  // local per-unit / per-diff apply work
  if (!node.hlrc_) {
    // LRC (DESIGN.md §9): canonical bases hold every interval at or below
    // the checkpoint watermark (checkpoint-complete GC mode); the archives
    // — stable write-ahead logs, the victim's own included — hold the
    // rest.  Replay above the watermark in happens-before order.
    const VectorClock& cvc = shared.checkpoint_vc;
    std::size_t base_units = 0;
    for (UnitId u = 0; u < num_units; ++u) {
      if (shared.canonical->ReadCheckpoint(u, node.UnitSpan(u))) {
        ++base_units;
      }
    }
    if (base_units > 0) {
      // One bulk exchange with the checkpoint store: request header, one
      // (unit id + payload) per base image.
      const std::size_t resp = base_units * (16 + unit_bytes);
      c.recovery_messages += 2;
      c.recovery_data_bytes += base_units * unit_bytes;
      slowest = std::max(
          slowest, shared.net.RoundTripTime(16, resp) +
                       cost.request_service_overhead +
                       static_cast<VirtualNanos>(base_units) *
                           cost.TwinCost(unit_bytes));
      install += static_cast<VirtualNanos>(base_units) *
                 cost.TwinCost(unit_bytes);
    }

    struct Replay {
      UnitId unit;
      const IntervalRecord* rec;
      int di;
      std::uint64_t vc_sum;
    };
    std::vector<Replay> replay;
    for (ProcId p = 0; p < nprocs; ++p) {
      const auto range = shared.archives[p]->Range(cvc[p], cut[p]);
      if (range.empty()) continue;
      // One exchange per contributing log: request header, per-record
      // notice header plus the encoded diffs.
      std::size_t resp = 0;
      for (const IntervalRecord* rec : range) {
        const std::uint64_t sum = rec->vc.Sum();
        resp += 16;
        for (std::size_t k = 0; k < rec->units.size(); ++k) {
          const Diff& d = rec->diffs[k];
          resp += d.EncodedBytes();
          c.recovery_data_bytes += d.payload_bytes();
          replay.push_back(
              {rec->units[k], rec, static_cast<int>(k), sum});
        }
      }
      c.recovery_messages += 2;
      c.recovery_records += range.size();
      slowest = std::max(slowest, shared.net.RoundTripTime(16, resp) +
                                      cost.request_service_overhead);
    }
    // Happens-before order per unit (same linear extension as the GC
    // apply pass: clock sums, (proc, seq) tie-break for concurrent
    // records — race-free programs write disjoint words there).
    std::sort(replay.begin(), replay.end(),
              [](const Replay& a, const Replay& b) {
                if (a.unit != b.unit) return a.unit < b.unit;
                if (a.vc_sum != b.vc_sum) return a.vc_sum < b.vc_sum;
                return a.rec->proc != b.rec->proc
                           ? a.rec->proc < b.rec->proc
                           : a.rec->seq < b.rec->seq;
              });
    for (const Replay& r : replay) {
      const Diff& d = r.rec->diffs[static_cast<std::size_t>(r.di)];
      d.Apply(node.UnitSpan(r.unit));
      install += cost.DiffApplyCost(d.payload_bytes());
    }
  } else {
    // HLRC (DESIGN.md §9): surviving homes serve whole-unit copies — one
    // combined exchange per home.  Units homed at the victim itself have
    // no surviving master: each is reconstructed from survivors' cached
    // copies and re-homed via the per-unit override table.  The
    // rebuilding home cannot know which survivors still cache a unit
    // without asking — the sharer directory is appended concurrently by
    // running peers, so consulting it here would make recovery cost
    // depend on host timing — so it probes EVERY survivor (one combined
    // header-sized probe exchange each) and pulls the full image from the
    // lowest surviving rank: deterministic, and honestly pessimistic.
    // The re-home batch is registered here and applied by the barrier
    // coordinator inside the next barrier's idle window, so every node
    // flips to the new map at the same deterministic point; lagging nodes
    // then pay the timeout + retransmit for learning it
    // (recovery_retransmits).
    std::vector<std::size_t> units_per_home(
        static_cast<std::size_t>(nprocs), 0);
    std::size_t self_homed = 0;
    std::vector<std::pair<UnitId, ProcId>> rehomes;
    for (UnitId u = 0; u < num_units; ++u) {
      const ProcId h = shared.EffectiveHome(u);
      if (h != node.id_) {
        ++units_per_home[static_cast<std::size_t>(h)];
        continue;
      }
      ++self_homed;
      rehomes.emplace_back(u, shared.RehomeTarget(u, node.id_));
    }
    for (ProcId h = 0; h < nprocs; ++h) {
      const std::size_t n = units_per_home[static_cast<std::size_t>(h)];
      if (n == 0) continue;
      const std::size_t req = 16 + 8 * n;
      const std::size_t resp = n * (16 + unit_bytes);
      c.recovery_messages += 2;
      c.recovery_data_bytes += n * unit_bytes;
      slowest = std::max(
          slowest,
          shared.net.RoundTripTime(req, resp) +
              cost.request_service_overhead +
              static_cast<VirtualNanos>(n) * cost.TwinCost(unit_bytes));
    }
    if (self_homed > 0) {
      const ProcId source = node.id_ == 0 ? 1 : 0;
      for (ProcId p = 0; p < nprocs; ++p) {
        if (p == node.id_) continue;
        // One combined reconstruction exchange per survivor: the lowest
        // surviving rank ships the full units, the rest ship 16-byte
        // probe replies.
        const std::size_t full = p == source ? self_homed : 0;
        const std::size_t probed = self_homed - full;
        const std::size_t req = 16 + 8 * self_homed;
        const std::size_t resp = full * (16 + unit_bytes) + 16 * probed;
        c.recovery_messages += 2;
        c.recovery_data_bytes += full * unit_bytes;
        slowest = std::max(
            slowest,
            shared.net.RoundTripTime(req, resp) +
                cost.request_service_overhead +
                static_cast<VirtualNanos>(full) * cost.TwinCost(unit_bytes));
      }
    }
    for (UnitId u = 0; u < num_units; ++u) {
      const std::span<std::byte> dst = node.UnitSpan(u);
      std::lock_guard lock(shared.home_mutexes[u]);
      std::memcpy(dst.data(),
                  shared.home_image.get() + shared.heap.UnitBase(u),
                  unit_bytes);
      install += cost.TwinCost(unit_bytes);
    }
    if (!rehomes.empty()) {
      std::lock_guard lock(shared.rehome_mutex);
      for (const auto& r : rehomes) shared.pending_rehomes.push_back(r);
    }
  }
  c.recovery_units += num_units;

  // --- rebuild the clocks and the notice view -------------------------------
  // Everything the cut covers is now IN the image, so it counts as
  // consumed: records above the cut redeliver through the normal
  // CollectNotices path at the victim's next synchronization (they
  // survive — nothing above the cut can be flattened while the victim,
  // a barrier participant, is mid-recovery).
  node.vc_ = cut;
  node.notices_seen_ = cut;

  const VirtualNanos modelled = slowest + install;
  node.clock_.Advance(modelled);

  // Lock-side sweep: drop the victim from every grant queue, force-release
  // anything it held (publishing the recovered clock/time, exactly what
  // its own release at the crash point would have), invalidate its cached
  // tokens.  Its in-flight transparent release becomes an orphan no-op.
  // The race detector sweeps first, for the same reason the detector's
  // release hook precedes LockService::Release: a peer granted a
  // force-released lock must find the victim's detector clock already on
  // it — recovery replay must not manufacture reports (DESIGN.md §10).
  if (shared.race != nullptr) shared.race->OnCrashSweep(node.id_);
  shared.locks->OnCrash(node.id_, node.vc_, node.clock_.now());

  const auto wall_end = std::chrono::steady_clock::now();
  shared.fault->OnRecovered(
      event_index, modelled,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end -
                                                               wall_start)
              .count()));
}

}  // namespace dsm

#include "core/runtime.h"

#include <algorithm>
#include <exception>
#include <sstream>
#include <thread>

#include "core/fault.h"

namespace dsm {

std::string RunStats::ToString() const {
  std::ostringstream out;
  out << "exec_time: " << exec_seconds() << " s\n";
  if (comm.recoveries > 0) {
    out << "recovery: events " << recovery_events << ", modelled "
        << recovery_modelled_ns << " ns, host " << recovery_wall_ns
        << " ns\n";
  }
  if (races.checked) out << races.ToString();
  out << comm.ToString();
  out << "network:\n" << net.ToString();
  return out.str();
}

Runtime::Runtime(RuntimeConfig cfg) : shared_(cfg) {
  nodes_.reserve(cfg.num_procs);
  for (int p = 0; p < cfg.num_procs; ++p) {
    nodes_.push_back(std::make_unique<Node>(p, shared_));
    shared_.nodes.push_back(nodes_.back().get());
  }
}

Runtime::~Runtime() = default;

void Runtime::Run(const std::function<void(Proc&)>& body) {
  DSM_CHECK(!ran_) << "Runtime::Run may only be called once";
  ran_ = true;

  const int nprocs = shared_.config.num_procs;
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto run_one = [&](ProcId p) {
    Proc proc(*nodes_[p]);
    try {
      body(proc);
    } catch (...) {
      std::lock_guard lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  threads.reserve(nprocs - 1);
  for (int p = 1; p < nprocs; ++p) {
    threads.emplace_back(run_one, p);
  }
  run_one(0);
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

RunStats Runtime::CollectStats() const {
  RunStats stats;
  for (const auto& node : nodes_) {
    stats.node_times.push_back(node->clock().now());
    stats.exec_time = std::max(stats.exec_time, node->clock().now());
    stats.comm.Merge(node->comm_stats().Finalize());
    stats.net.Merge(node->net_stats());
  }
  const ArchiveTelemetry& t = shared_.archive_telemetry;
  stats.mem.peak_live_intervals =
      t.peak_live_intervals.load(std::memory_order_relaxed);
  stats.mem.peak_archive_bytes =
      t.peak_live_bytes.load(std::memory_order_relaxed);
  stats.mem.reclaimed_intervals =
      t.reclaimed_intervals.load(std::memory_order_relaxed);
  stats.mem.canonical_base_peak_bytes = shared_.canonical->peak_bytes();
  stats.mem.gc_passes = shared_.gc_passes;
  stats.mem.chains_built = t.chains_built.load(std::memory_order_relaxed);
  stats.mem.chains_shared = t.chains_shared.load(std::memory_order_relaxed);
  stats.mem.records_elided =
      t.records_elided.load(std::memory_order_relaxed);
  if (shared_.fault != nullptr && shared_.fault->any_fired()) {
    stats.recovery_events = shared_.fault->fired_count();
    stats.recovery_modelled_ns = shared_.fault->recovery_modelled_ns();
    stats.recovery_wall_ns = shared_.fault->recovery_wall_ns();
  }
  if (shared_.race != nullptr) stats.races = shared_.race->Collect();
  return stats;
}

}  // namespace dsm

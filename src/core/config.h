// Runtime configuration: consistency-unit size, aggregation mode, cost and
// network models.  One RuntimeConfig fully determines a run; every figure
// bench is a sweep over these fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/types.h"
#include "net/network_model.h"
#include "sim/cost_model.h"

namespace dsm {

enum class AggregationMode {
  kStatic,   // consistency unit = pages_per_unit × 4 KB (paper §3)
  kDynamic,  // unit = 4 KB page + runtime page grouping (paper §4)
};

enum class BackendKind {
  // Full lazy release consistency + multiple-writer protocol (the paper).
  kLrc,
  // Conformance oracle: every processor reads and writes one shared image
  // directly (plain sequential consistency — no twins, no diffs, no write
  // notices).  Barriers and locks still rendezvous, so any program that is
  // data-race-free under LRC computes the same answer here; divergence
  // between the two backends indicates a protocol bug.
  kReference,
  // Home-based LRC (DESIGN.md §7): every consistency unit has a home node
  // that eagerly absorbs diffs at release time and serves whole-unit
  // copies on fault.  Write notices and invalidate-on-acquire are shared
  // with kLrc, but no diff archive accumulates — released payloads live
  // at the home, so the interval-archive GC is bypassed entirely.  The
  // classic counterpart design to the paper's distributed LRC: one extra
  // hop per release, whole-unit data motion per fault.
  kHlrc,
};

// Archive-GC pass sizing policy: dominated-record count at or below which
// a pass runs serially on proc 0 instead of striping across the idle
// nodes (see Node::Barrier).  Striping conserves work — it only buys
// wall-clock when the stripe workers run on real cores — so the threshold
// scales inversely with host parallelism: on a single core striping is
// pure rendezvous overhead (forced serial), with unknown concurrency (0)
// the historical fixed threshold is kept, and on wide hosts even light
// passes are worth spreading.  Pure function of the argument so tests pin
// the policy; modelled state is bit-identical either way (DESIGN.md §6),
// which is what makes a host-dependent switch legal at all.
std::size_t GcSerialPassLimit(unsigned hardware_threads);

// Archive-GC pass execution mode.  kAuto applies GcSerialPassLimit to
// the host's hardware concurrency; the force modes exist so the
// serial/striped bit-equivalence can be exercised on ANY host (a test
// that only runs whichever mode the local core count selects would let
// a divergence ship undetected).
enum class GcPassMode {
  kAuto,
  kForceSerial,
  kForceStriped,
};

// ---------------------------------------------------------------------------
// Deterministic fault injection (DESIGN.md §9).
// ---------------------------------------------------------------------------

enum class FaultKind : std::uint8_t {
  kNone = 0,
  // Kill the victim at its `barrier`-th global barrier (0-based), inside the
  // barrier idle window — after its interval closed and its notices are
  // published, before the release.  Recovery rebuilds the victim to the
  // merged global clock of that barrier.
  kAtBarrier,
  // Kill the victim mid-interval, immediately after its `release`-th
  // interval close (1-based count over ALL CloseInterval calls — barrier
  // and lock-release alike).  Recovery rebuilds the victim to the frozen
  // vector clock of that archived interval.
  kAfterRelease,
};

// One seeded, fully deterministic crash event.  An armed event
// (kind != kNone) is one entry of a FaultSchedule; a default-constructed
// event is inert and leaves every modelled number and fingerprint
// bit-identical to a build without the subsystem.
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  // Victim processor id.  Negative → derived deterministically from `seed`
  // at Runtime construction, uniform over ALL processors — proc 0
  // included; a proc-0 crash migrates the coordinator roles (serial GC,
  // HLRC watermark prune, barrier-manager cost asymmetry) to the lowest
  // surviving rank for the crash barrier and back on rebuild.
  int victim = -1;
  // kAtBarrier: 0-based global barrier index at which the victim dies.
  int barrier = 0;
  // kAfterRelease: 1-based count of interval closes after which it dies.
  int release = 1;
  // Seed for derived choices (victim when victim < 0).  Two runs with the
  // same plan — seed included — inject at the identical modelled point.
  std::uint64_t seed = 0;

  bool armed() const { return kind != FaultKind::kNone; }

  static FaultPlan AtBarrier(int victim, int barrier,
                             std::uint64_t seed = 0) {
    FaultPlan p;
    p.kind = FaultKind::kAtBarrier;
    p.victim = victim;
    p.barrier = barrier;
    p.seed = seed;
    return p;
  }
  static FaultPlan AfterRelease(int victim, int release,
                                std::uint64_t seed = 0) {
    FaultPlan p;
    p.kind = FaultKind::kAfterRelease;
    p.victim = victim;
    p.release = release;
    p.seed = seed;
    return p;
  }
  // Fully seeded plan: kind, victim and trigger point all derived from
  // `seed` (used by the fuzz-style determinism tests).
  static FaultPlan FromSeed(std::uint64_t seed);

  // "barrier:V@N" / "release:V@M" (bench_wallclock's --fault syntax;
  // "V" is "?" while a seeded victim is still unresolved).
  std::string Label() const;
};

// An ordered list of seeded crash events (DESIGN.md §9).  Events may name
// different victims or the same victim more than once — a repeat victim
// fires again only after its earlier recovery, which is automatic because
// every trigger point is served on the victim's own thread in program
// order.  No processor is excluded: the schedule may kill proc 0 (the
// coordinator roles migrate for the crash barrier) or an HLRC home node
// (the home's units are re-homed and surviving flushes retransmit).  Each
// event's trigger point is an absolute victim-local count from the start
// of the run, which is what keeps multi-fault runs bit-reproducible: no
// event's firing depends on cross-thread timing, only on its own victim's
// deterministic progress.  A default-constructed schedule is inert.
struct FaultSchedule {
  std::vector<FaultPlan> events;
  // Seed for derived choices (per-event victims when victim < 0).
  std::uint64_t seed = 0;

  FaultSchedule() = default;
  // Single-event schedule; keeps FaultPlan call sites source-compatible.
  FaultSchedule(const FaultPlan& plan) {  // NOLINT(runtime/explicit)
    if (plan.armed()) events.push_back(plan);
    seed = plan.seed;
  }

  bool armed() const { return !events.empty(); }

  // Fully seeded schedule: 1–3 events whose kinds, trigger points and
  // victims (any processor, proc 0 included) all derive from `seed`.
  static FaultSchedule FromSeed(std::uint64_t seed);

  // "+"-joined event labels: "barrier:1@2+release:0@4".
  std::string Label() const;
};

struct RuntimeConfig {
  int num_procs = 8;
  std::size_t heap_bytes = 8u << 20;

  BackendKind backend = BackendKind::kLrc;

  AggregationMode aggregation = AggregationMode::kStatic;
  // Static aggregation factor: 1 → 4 KB units, 2 → 8 KB, 4 → 16 KB.
  int pages_per_unit = 1;
  // Dynamic aggregation: maximum pages per page group.  Default 4 mirrors
  // the largest static unit the paper studies (16 KB).
  int max_group_pages = 4;

  // Word-level useful/useless classification (paper §5.3).  Costs nothing
  // in modelled time; can be disabled for raw-speed host runs.
  bool track_usage = true;

  // Archive garbage collection (DESIGN.md §6): every N-th global barrier,
  // flatten all intervals dominated by the flatten target (below) into
  // canonical base images and reclaim the records.  A host-side
  // optimization — modelled times, statistics, and results are
  // bit-identical for any setting on barrier programs.  0 disables GC
  // (the archive-everything behavior, kept reachable for A/B testing).
  int gc_interval_barriers = 1;

  // Read-aware flattening (DESIGN.md §6): the collector skips building
  // flattened chains out of LOCK-RELEASE intervals none of whose words
  // the pending node has ever read (Water's aux/force slots), recording
  // only a per-unit elided-run list whose words are silently refreshed
  // from the canonical base at the next fault.  Data-safe always; only
  // lock-release intervals are eligible, so barrier programs — the
  // bit-reproducible ones — are provably unaffected.  Kept toggleable for
  // A/B runs.
  bool gc_read_aware = true;

  // Lock-chain-aware lazy-diffing phases (DESIGN.md §4): lock-ordered
  // diff requesters between two barriers advance a per-lock-chain
  // sub-phase derived from the LockService transfer order, so a requester
  // ordered after the acquire that materialized a diff is served from the
  // writer's cache instead of each paying the twin-scan cost.  Sharper
  // modelled times for migratory data (Water/TSP); host-order dependent
  // only for lock programs, which are not bit-reproducible anyway.
  // Barrier programs never advance the sub-phase and replay bit-for-bit
  // under either setting.
  bool lock_chain_phases = true;

  // Archive-GC pass sizing: auto (hardware-concurrency-scaled serial
  // threshold) or forced serial/striped — see GcPassMode.
  GcPassMode gc_pass_mode = GcPassMode::kAuto;

  // Flatten target age: collect only intervals dominated by the global
  // vector clock from this many barriers ago (minimum 1 — the youngest
  // clock every node is guaranteed to have fully processed).  Most
  // pending notices are consumed within a barrier or two of arriving;
  // lagging the target lets them die in the fault path for free and
  // reserves the flattening work for genuinely cold chains, whose length
  // stays bounded by interval × lag barriers either way.
  int gc_lag_barriers = 2;

  // Home-based LRC only: homes are assigned to consistency units
  // round-robin over processors in blocks of this many units (1 =
  // unit-interleaved; larger blocks give each node contiguous home
  // ranges, trading hot-home risk for fewer homes per multi-unit fetch).
  int hlrc_home_block_units = 1;

  // Home-based LRC only: track a per-unit clean-twin flag (no byte of the
  // unit changed since the twin was taken) and skip the release-time
  // eager diff SCAN over units whose flag is still clean.  Host-side
  // optimization only — the modelled diff-create cost and every modelled
  // counter (diffs_created, home flush messages/bytes) are charged as if
  // the scan ran, so modelled state is bit-identical under either
  // setting.  Programs that rewrite values in place (empty diffs) skip
  // the full twin comparison at every release.
  bool hlrc_skip_clean_diff_scan = true;

  // Number of DSM lock ids available to the application.
  int num_locks = 4096;

  // On-line happens-before race detection (DESIGN.md §10): shadow every
  // shared word with FastTrack-style access epochs ordered by the same
  // acquire/release/barrier events the protocol orders on, and report
  // any unordered conflicting pair through RunStats.  Purely
  // observational — host-only cost; every modelled time, counter, and
  // fingerprint is bit-identical with the checker on or off, and with it
  // off the access hot path pays nothing.
  bool race_check = false;

  // Deterministic crash schedule (DESIGN.md §9).  Default-constructed =
  // no fault; armed schedules require a checkpoint source only under LRC
  // (gc_interval_barriers > 0, see Validate()) — HLRC recovery rebuilds
  // from home images and needs no checkpoints.
  FaultSchedule fault;

  // A DSM with one processor is degenerate (no sharing, no protocol) and
  // almost always a mis-filled config — Validate() rejects num_procs < 2
  // unless this flag is set.  The sequential-oracle paths
  // (apps::ExecuteSequential, single-proc unit tests) opt in explicitly.
  bool allow_sequential = false;

  NetworkConfig net;
  CostModel cost;

  // Rejects malformed configurations with std::invalid_argument (clear,
  // field-naming messages).  Called by the Runtime constructor before any
  // state is built; benches/tests may call it directly to probe a config.
  void Validate() const;

  std::size_t unit_bytes() const {
    return aggregation == AggregationMode::kDynamic
               ? kBasePageBytes
               : kBasePageBytes * static_cast<std::size_t>(pages_per_unit);
  }

  // Human-readable label for tables: "4K", "8K", "16K", or "Dyn".
  const char* UnitLabel() const;

  // "LRC", "HLRC", or "Ref".
  const char* BackendLabel() const;
};

}  // namespace dsm

// Intervals, write notices, and the per-node interval archive.
//
// When a processor's interval closes (at a release: lock release or barrier
// arrival), the protocol diffs every twinned unit and archives an
// IntervalRecord: the list of modified units (the *write notices*) plus the
// diffs themselves.  We create diffs eagerly at interval close (TreadMarks
// creates them lazily on first request) — see DESIGN.md §4: archived
// records become immutable, which lets a faulting peer read them under a
// short mutex without coordinating with the owner's thread, mirroring
// TreadMarks' asynchronous request handlers.
//
// Archives do not grow with run length: at barrier epochs the garbage
// collector (DESIGN.md §6) flattens every interval dominated by the
// previous barrier's global vector clock into per-unit canonical base
// images and reclaims the records.  Chains of reclaimed intervals that
// some node still had pending survive as FlattenedChains — payload-free
// run lists whose data is served from the canonical base at fault time.
// Identical chains pending at several nodes share one immutable ChainBody.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/vector_clock.h"
#include "mem/diff.h"
#include "mem/types.h"

namespace dsm {

// A closed interval of one processor: seq, the vector clock at close time,
// and the modified units with their diffs.
struct IntervalRecord {
  ProcId proc = -1;
  Seq seq = 0;
  VectorClock vc;  // clock at close; vc[proc] == seq
  // True when the interval was closed by a lock release (as opposed to a
  // barrier arrival).  The archive GC's read-aware flattening only elides
  // lock-release records: barrier programs are bit-reproducible and their
  // GC must stay perfectly invisible, while lock programs are host-order
  // dependent under any setting (DESIGN.md §6).
  bool lock_release = false;
  std::vector<UnitId> units;
  std::vector<Diff> diffs;  // parallel to `units`
  // Lazy-diffing cost model: diffed[i] holds 1 + the *phase key* under
  // which the diff of units[i] was first materialized (0 = never).
  // Requesters under a LATER key are served from the writer's diff cache
  // for free; the first requester and any requester racing it under the
  // same key each pay the twin-scan cost (modelled as concurrent scans at
  // the server).  The key combines the barrier phase (upper 32 bits) with
  // a lock-chain sub-phase (lower 32 bits, see LockService::Grant::
  // chain_pos): barrier programs never advance the sub-phase, so their
  // charge stays quantized to barrier phases and replays bit-for-bit;
  // lock-ordered requesters between two barriers advance it along the
  // lock transfer order, so a requester ordered after the materializing
  // acquire is served from cache — sharper for migratory data, and
  // host-order dependent only for lock programs, which cannot replay
  // bit-for-bit anyway.  (The Diff objects themselves are always
  // materialized eagerly for bookkeeping — archived records must be
  // immutable for lock-free peer reads.)
  //
  // Shared ownership: when the record is reclaimed by archive GC, any
  // FlattenedChain built from it keeps the stamp array alive, so the
  // first-requester-pays decision replays identically whether or not the
  // record's payload was flattened away in the meantime.
  std::shared_ptr<std::atomic<std::uint64_t>[]> diffed;

  // Returns nullptr when this interval did not modify `unit`.
  const Diff* DiffFor(UnitId unit) const;
  // Index of `unit` within units/diffs, or -1.
  int IndexOf(UnitId unit) const;
  // True iff a requester under phase key `key` pays the scan cost for
  // materializing units[i]; the first caller stamps the key.
  bool PaysForDiff(int i, std::uint64_t key) const {
    return PaysForStamp(diffed[i], key);
  }

  // The stamp protocol, shared with FlattenedChain's retained stamps.
  static bool PaysForStamp(std::atomic<std::uint64_t>& stamp,
                           std::uint64_t key) {
    std::uint64_t expected = 0;
    if (stamp.compare_exchange_strong(expected, key + 1,
                                      std::memory_order_relaxed)) {
      return true;
    }
    return expected == key + 1;
  }

  // Serialized size of this interval's write notices on a sync message
  // (per notice: unit id + interval id; plus a small interval header).
  std::size_t NoticeBytes() const { return 16 + units.size() * 8; }

  // Bytes retained by this record: notice metadata plus the wire size of
  // every diff (runs + payload).  The unit of archive-memory telemetry.
  std::size_t RetainedBytes() const;

  // True iff this interval happened-before `other` (LRC partial order):
  // other's close-time clock covers this interval.
  bool HappenedBefore(const IntervalRecord& other) const {
    return other.vc.Covers(proc, seq);
  }
};

// One lazy-diffing stamp retained from a reclaimed record (see
// IntervalRecord::diffed): the shared array plus the unit's index in it.
struct StampRef {
  std::shared_ptr<std::atomic<std::uint64_t>[]> stamps;
  std::uint32_t index = 0;
};

// Immutable cons-list of retained stamps, newest-first.  A chain extension
// prepends one node and SHARES the tail with every other copy of the
// body, so repeatedly-extended cold chains stay O(1) per pass — a flat
// vector would be re-copied on every copy-on-write clone, going quadratic
// in pass count (the stamp set only grows).  Order is immaterial: the
// fault path visits every member stamp.
struct StampNode {
  StampRef ref;
  std::shared_ptr<const StampNode> next;
};

// The immutable bulk of a flattened chain, shared (shared_ptr) by every
// node whose pending set produced the identical chain — the GC builds it
// once per unique (unit, pending-history) and hands copies of the cheap
// per-node header out (DESIGN.md §6).  Holds everything the fault path
// needs to replay bit-identical modelled costs without the reclaimed
// records' payload:
//
//   * the canonical run list of the chain's merged diff (wire-size and
//     word-delivery accounting; the data itself is copied from the
//     canonical base at apply time),
//   * the tail's close-time clock (happens-before apply ordering),
//   * the lazy-diffing stamps of every flattened member (the
//     first-requester-pays-the-scan decision; the atomics themselves live
//     in the reclaimed records' arrays and are global across nodes).
struct ChainBody {
  std::vector<DiffRun> runs;      // merged run list, canonical, payload-free
  std::size_t payload_words = 0;  // == Diff::RunWords(runs), cached
  VectorClock last_vc;            // tail close-time clock (apply ordering)
  // One per flattened member interval, newest-first, tail-shared.
  std::shared_ptr<const StampNode> stamps;
};

// A coalesced chain of reclaimed intervals of ONE writer for ONE unit that
// some node still had pending when the chain was flattened into the
// canonical base image.  Two representations behind one header:
//
//   * single-record chain (`rec` set): the chain IS one reclaimed
//     interval — it retains the record itself (shared with the archive's
//     other referents), and every accessor reads straight through it.
//     Building one costs a shared_ptr copy, nothing more; the wire
//     accounting is definitionally identical to a merged chain of one
//     member.  The overwhelmingly common case for lock-heavy programs,
//     whose per-molecule critical sections produce single-unit records.
//   * merged chain (`body` set): two or more members coalesced into a
//     shared ChainBody (runs merged payload-free, stamps cons-listed).
struct FlattenedChain {
  ProcId writer = -1;
  Seq first_seq = 0;  // chain head, for the absorption safety check
  Seq last_seq = 0;   // chain tail
  // A reclaimed foreign interval is ordered after the chain's head: no
  // later interval of `writer` may ever be absorbed into this chain
  // (matches the fault path's per-record safety check, whose reclaimed
  // witnesses are gone).
  bool blocked = false;
  // True while `body` may be referenced by another node's header or by
  // the shared virgin store.  Set at every point a merged body crosses
  // nodes (virgin-store builds, the GC's chain-cache adoption) — all
  // inside the GC window, whose rendezvous orders them — and cleared by
  // the copy-on-write clone in MutableBody().  Deliberately a plain
  // bool, not a body.use_count() peek: see MutableBody.
  bool body_shared = false;
  std::shared_ptr<const IntervalRecord> rec;  // single-record form
  int di = -1;                                // unit's index within *rec
  std::shared_ptr<ChainBody> body;            // merged form (rec == null)

  const Diff& rec_diff() const {
    return rec->diffs[static_cast<std::size_t>(di)];
  }
  const std::vector<DiffRun>& runs() const {
    return rec != nullptr ? rec_diff().runs() : body->runs;
  }
  std::size_t payload_words() const {
    return rec != nullptr ? rec_diff().payload_words()
                          : body->payload_words;
  }
  const VectorClock& last_vc() const {
    return rec != nullptr ? rec->vc : body->last_vc;
  }

  // Visit every member stamp (the first-requester-pays decision).
  template <typename Fn>
  void ForEachStamp(Fn&& fn) const {
    if (rec != nullptr) {
      fn(rec->diffed[static_cast<std::size_t>(di)]);
      return;
    }
    for (const StampNode* s = body->stamps.get(); s != nullptr;
         s = s->next.get()) {
      fn(s->ref.stamps[s->ref.index]);
    }
  }

  // Mutable merged body for tail extension (GC absorption or fault-path
  // live absorption): converts a single-record chain to a merged body,
  // and clones a body other nodes may share (copy-on-write).  The
  // uniqueness test is the explicit `body_shared` flag, NOT
  // body.use_count() > 1: use_count() is a relaxed atomic load, so
  // observing "count == 1" establishes no happens-before with a peer
  // header's just-finished clone of the same body, and mutating in
  // place on its strength is a formal data race (TSan caught two
  // concurrent fault-path absorptions doing exactly that in the
  // recovery torture suite).  The flag errs conservative: a header
  // whose body was ever shared clones once even if every other sharer
  // has since dropped theirs.
  ChainBody& MutableBody() {
    if (rec != nullptr) {
      auto b = std::make_shared<ChainBody>();
      b->runs = rec_diff().runs();
      b->payload_words = rec_diff().payload_words();
      b->last_vc = rec->vc;
      b->stamps = std::make_shared<const StampNode>(StampNode{
          StampRef{rec->diffed, static_cast<std::uint32_t>(di)}, nullptr});
      body = std::move(b);
      rec = nullptr;
      di = -1;
    } else if (body_shared) {
      body = std::make_shared<ChainBody>(*body);
      body_shared = false;
    }
    return *body;
  }

  // Wire size of the chain's merged diff, matching Diff::EncodedBytes().
  std::size_t EncodedBytes() const {
    return rec != nullptr
               ? rec_diff().EncodedBytes()
               : Diff::kHeaderBytes +
                     body->runs.size() * Diff::kRunDescriptorBytes +
                     body->payload_words * kWordBytes;
  }
};

// Footprint counters shared by all archives of a run (updated under each
// archive's own mutex; atomics make the cross-archive sums race-free).
// The chain counters are accumulated by the GC's flatten workers — one
// per node in striped passes — inside the idle barrier window.
struct ArchiveTelemetry {
  std::atomic<std::uint64_t> live_intervals{0};
  std::atomic<std::uint64_t> peak_live_intervals{0};
  std::atomic<std::uint64_t> live_bytes{0};
  std::atomic<std::uint64_t> peak_live_bytes{0};
  std::atomic<std::uint64_t> reclaimed_intervals{0};
  // Archive-GC chain economics (DESIGN.md §6): bodies actually
  // constructed, chain headers adopted from the intern cache instead of
  // rebuilt, and dominated record references skipped entirely by
  // read-aware flattening.
  std::atomic<std::uint64_t> chains_built{0};
  std::atomic<std::uint64_t> chains_shared{0};
  std::atomic<std::uint64_t> records_elided{0};

  void OnAppend(std::uint64_t bytes);
  void OnReclaim(std::uint64_t records, std::uint64_t bytes);
};

// Archive of one node's closed intervals.  The owner appends at interval
// close; peers look up records while handling faults or merging barrier
// notices; the barrier-epoch garbage collector reclaims the dominated
// prefix.  std::deque keeps references to surviving records stable across
// both appends and front-pruning, but all access still takes the mutex
// (deque bookkeeping itself is not thread-safe); lookups return stable
// pointers that remain valid after the mutex is released — until the
// record's seq is pruned.
class IntervalArchive {
 public:
  // Appends a record (records must arrive in increasing seq order).
  // Returns a stable pointer to the stored record.
  const IntervalRecord* Append(IntervalRecord record);

  // Record with exact seq, or nullptr (seqs may have gaps: empty intervals
  // are never archived).
  const IntervalRecord* Find(Seq seq) const;

  // All records with from < seq <= to, in increasing seq order.
  std::vector<const IntervalRecord*> Range(Seq from, Seq to) const;

  // Shared-ownership variant of Range (archive GC: single-record chains
  // retain the reclaimed record itself).
  std::vector<std::shared_ptr<const IntervalRecord>> RangeShared(
      Seq from, Seq to) const;

  // Reclaim every record with seq <= through (always a prefix: seqs are
  // appended in increasing order).  Records survive reclamation exactly
  // as long as some FlattenedChain retains them (shared ownership); the
  // GC converts every other reference first.  Returns the number of
  // records reclaimed.
  std::size_t PruneThrough(Seq through);

  // Smallest seq still archived (0 when empty) — pruned seqs can never be
  // Find()/Range()d again.
  Seq min_retained_seq() const;

  // Number of archived records with seq <= through (O(log n)).  The GC
  // sizes a pass with it to pick serial vs striped execution.
  std::size_t CountThrough(Seq through) const;

  void set_telemetry(ArchiveTelemetry* t) { telemetry_ = t; }

  std::size_t size() const;
  std::size_t TotalDiffBytes() const;

 private:
  mutable std::mutex mutex_;
  std::deque<std::shared_ptr<IntervalRecord>> records_;
  ArchiveTelemetry* telemetry_ = nullptr;
};

}  // namespace dsm

// Intervals, write notices, and the per-node interval archive.
//
// When a processor's interval closes (at a release: lock release or barrier
// arrival), the protocol diffs every twinned unit and archives an
// IntervalRecord: the list of modified units (the *write notices*) plus the
// diffs themselves.  We create diffs eagerly at interval close (TreadMarks
// creates them lazily on first request) — see DESIGN.md §4: archived
// records become immutable, which lets a faulting peer read them under a
// short mutex without coordinating with the owner's thread, mirroring
// TreadMarks' asynchronous request handlers.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/vector_clock.h"
#include "mem/diff.h"
#include "mem/types.h"

namespace dsm {

// A closed interval of one processor: seq, the vector clock at close time,
// and the modified units with their diffs.
struct IntervalRecord {
  ProcId proc = -1;
  Seq seq = 0;
  VectorClock vc;  // clock at close; vc[proc] == seq
  std::vector<UnitId> units;
  std::vector<Diff> diffs;  // parallel to `units`
  // Lazy-diffing cost model: diffed[i] holds 1 + the barrier phase in
  // which the diff of units[i] was first materialized (0 = never).
  // Requesters from LATER phases are served from the writer's diff cache
  // for free; the first requester and any requester racing it within the
  // same phase each pay the twin-scan cost (modelled as concurrent scans
  // at the server).  Phase granularity keeps the charge independent of
  // host thread scheduling, so modelled time replays bit-for-bit.  Known
  // coarseness: phases advance only at barriers, so lock-ordered
  // requesters between two barriers are all "same phase" and each pay —
  // conservative for migratory data (lock programs cannot replay
  // bit-for-bit anyway, since lock transfer order is host-scheduled).  (The
  // Diff objects themselves are always materialized eagerly for
  // bookkeeping — archived records must be immutable for lock-free peer
  // reads.)
  std::unique_ptr<std::atomic<std::uint32_t>[]> diffed;

  // Returns nullptr when this interval did not modify `unit`.
  const Diff* DiffFor(UnitId unit) const;
  // Index of `unit` within units/diffs, or -1.
  int IndexOf(UnitId unit) const;
  // True iff a requester in barrier phase `phase` pays the scan cost for
  // materializing units[i]; the first caller stamps the phase.
  bool PaysForDiff(int i, std::uint32_t phase) const {
    std::uint32_t expected = 0;
    if (diffed[i].compare_exchange_strong(expected, phase + 1,
                                          std::memory_order_relaxed)) {
      return true;
    }
    return expected == phase + 1;
  }

  // Serialized size of this interval's write notices on a sync message
  // (per notice: unit id + interval id; plus a small interval header).
  std::size_t NoticeBytes() const { return 16 + units.size() * 8; }

  // True iff this interval happened-before `other` (LRC partial order):
  // other's close-time clock covers this interval.
  bool HappenedBefore(const IntervalRecord& other) const {
    return other.vc.Covers(proc, seq);
  }
};

// Append-only archive of one node's closed intervals.  The owner appends at
// interval close; peers look up records while handling faults or merging
// barrier notices.  std::deque keeps references to existing records stable
// across appends, but all access still takes the mutex (deque bookkeeping
// itself is not thread-safe); lookups return stable pointers that remain
// valid after the mutex is released.
class IntervalArchive {
 public:
  // Appends a record (records must arrive in increasing seq order).
  // Returns a stable pointer to the stored record.
  const IntervalRecord* Append(IntervalRecord record);

  // Record with exact seq, or nullptr (seqs may have gaps: empty intervals
  // are never archived).
  const IntervalRecord* Find(Seq seq) const;

  // All records with from < seq <= to, in increasing seq order.
  std::vector<const IntervalRecord*> Range(Seq from, Seq to) const;

  std::size_t size() const;
  std::size_t TotalDiffBytes() const;

 private:
  mutable std::mutex mutex_;
  std::deque<IntervalRecord> records_;
};

}  // namespace dsm

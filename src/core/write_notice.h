// Intervals, write notices, and the per-node interval archive.
//
// When a processor's interval closes (at a release: lock release or barrier
// arrival), the protocol diffs every twinned unit and archives an
// IntervalRecord: the list of modified units (the *write notices*) plus the
// diffs themselves.  We create diffs eagerly at interval close (TreadMarks
// creates them lazily on first request) — see DESIGN.md §4: archived
// records become immutable, which lets a faulting peer read them under a
// short mutex without coordinating with the owner's thread, mirroring
// TreadMarks' asynchronous request handlers.
//
// Archives do not grow with run length: at barrier epochs the garbage
// collector (DESIGN.md §6) flattens every interval dominated by the
// previous barrier's global vector clock into per-unit canonical base
// images and reclaims the records.  Chains of reclaimed intervals that
// some node still had pending survive as FlattenedChains — payload-free
// run lists whose data is served from the canonical base at fault time.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/vector_clock.h"
#include "mem/diff.h"
#include "mem/types.h"

namespace dsm {

// A closed interval of one processor: seq, the vector clock at close time,
// and the modified units with their diffs.
struct IntervalRecord {
  ProcId proc = -1;
  Seq seq = 0;
  VectorClock vc;  // clock at close; vc[proc] == seq
  std::vector<UnitId> units;
  std::vector<Diff> diffs;  // parallel to `units`
  // Lazy-diffing cost model: diffed[i] holds 1 + the barrier phase in
  // which the diff of units[i] was first materialized (0 = never).
  // Requesters from LATER phases are served from the writer's diff cache
  // for free; the first requester and any requester racing it within the
  // same phase each pay the twin-scan cost (modelled as concurrent scans
  // at the server).  Phase granularity keeps the charge independent of
  // host thread scheduling, so modelled time replays bit-for-bit.  Known
  // coarseness: phases advance only at barriers, so lock-ordered
  // requesters between two barriers are all "same phase" and each pay —
  // conservative for migratory data (lock programs cannot replay
  // bit-for-bit anyway, since lock transfer order is host-scheduled).  (The
  // Diff objects themselves are always materialized eagerly for
  // bookkeeping — archived records must be immutable for lock-free peer
  // reads.)
  //
  // Shared ownership: when the record is reclaimed by archive GC, any
  // FlattenedChain built from it keeps the stamp array alive, so the
  // first-requester-pays decision replays identically whether or not the
  // record's payload was flattened away in the meantime.
  std::shared_ptr<std::atomic<std::uint32_t>[]> diffed;

  // Returns nullptr when this interval did not modify `unit`.
  const Diff* DiffFor(UnitId unit) const;
  // Index of `unit` within units/diffs, or -1.
  int IndexOf(UnitId unit) const;
  // True iff a requester in barrier phase `phase` pays the scan cost for
  // materializing units[i]; the first caller stamps the phase.
  bool PaysForDiff(int i, std::uint32_t phase) const {
    return PaysForStamp(diffed[i], phase);
  }

  // The stamp protocol, shared with FlattenedChain's retained stamps.
  static bool PaysForStamp(std::atomic<std::uint32_t>& stamp,
                           std::uint32_t phase) {
    std::uint32_t expected = 0;
    if (stamp.compare_exchange_strong(expected, phase + 1,
                                      std::memory_order_relaxed)) {
      return true;
    }
    return expected == phase + 1;
  }

  // Serialized size of this interval's write notices on a sync message
  // (per notice: unit id + interval id; plus a small interval header).
  std::size_t NoticeBytes() const { return 16 + units.size() * 8; }

  // Bytes retained by this record: notice metadata plus the wire size of
  // every diff (runs + payload).  The unit of archive-memory telemetry.
  std::size_t RetainedBytes() const;

  // True iff this interval happened-before `other` (LRC partial order):
  // other's close-time clock covers this interval.
  bool HappenedBefore(const IntervalRecord& other) const {
    return other.vc.Covers(proc, seq);
  }
};

// One lazy-diffing stamp retained from a reclaimed record (see
// IntervalRecord::diffed): the shared array plus the unit's index in it.
struct StampRef {
  std::shared_ptr<std::atomic<std::uint32_t>[]> stamps;
  std::uint32_t index = 0;
};

// A coalesced chain of reclaimed intervals of ONE writer for ONE unit that
// some node still had pending when the chain was flattened into the
// canonical base image.  It preserves everything the fault path needs to
// replay bit-identical modelled costs without the records' payload:
//
//   * the canonical run list of the chain's merged diff (wire-size and
//     word-delivery accounting; the data itself is copied from the
//     canonical base at apply time),
//   * the head/tail interval identity (happens-before ordering against
//     live records and the chain-absorption safety check),
//   * the lazy-diffing stamps of every flattened member (the
//     first-requester-pays-the-scan decision).
struct FlattenedChain {
  ProcId writer = -1;
  Seq first_seq = 0;       // chain head, for the absorption safety check
  Seq last_seq = 0;        // chain tail…
  VectorClock last_vc;     // …and its close-time clock (apply ordering)
  // A reclaimed foreign interval is ordered after the chain's head: no
  // later interval of `writer` may ever be absorbed into this chain
  // (matches the fault path's per-record safety check, whose reclaimed
  // witnesses are gone).
  bool blocked = false;
  std::vector<DiffRun> runs;     // merged run list, canonical, payload-free
  std::size_t payload_words = 0;  // == Diff::RunWords(runs), cached
  std::vector<StampRef> stamps;  // one per flattened member interval

  // Wire size of the chain's merged diff, matching Diff::EncodedBytes().
  std::size_t EncodedBytes() const {
    return Diff::kHeaderBytes + runs.size() * Diff::kRunDescriptorBytes +
           payload_words * kWordBytes;
  }
};

// Footprint counters shared by all archives of a run (updated under each
// archive's own mutex; atomics make the cross-archive sums race-free).
struct ArchiveTelemetry {
  std::atomic<std::uint64_t> live_intervals{0};
  std::atomic<std::uint64_t> peak_live_intervals{0};
  std::atomic<std::uint64_t> live_bytes{0};
  std::atomic<std::uint64_t> peak_live_bytes{0};
  std::atomic<std::uint64_t> reclaimed_intervals{0};

  void OnAppend(std::uint64_t bytes);
  void OnReclaim(std::uint64_t records, std::uint64_t bytes);
};

// Archive of one node's closed intervals.  The owner appends at interval
// close; peers look up records while handling faults or merging barrier
// notices; the barrier-epoch garbage collector reclaims the dominated
// prefix.  std::deque keeps references to surviving records stable across
// both appends and front-pruning, but all access still takes the mutex
// (deque bookkeeping itself is not thread-safe); lookups return stable
// pointers that remain valid after the mutex is released — until the
// record's seq is pruned.
class IntervalArchive {
 public:
  // Appends a record (records must arrive in increasing seq order).
  // Returns a stable pointer to the stored record.
  const IntervalRecord* Append(IntervalRecord record);

  // Record with exact seq, or nullptr (seqs may have gaps: empty intervals
  // are never archived).
  const IntervalRecord* Find(Seq seq) const;

  // All records with from < seq <= to, in increasing seq order.
  std::vector<const IntervalRecord*> Range(Seq from, Seq to) const;

  // Reclaim every record with seq <= through (always a prefix: seqs are
  // appended in increasing order).  Caller must guarantee no pointer to a
  // pruned record is still in use — the GC converts all such references to
  // FlattenedChains first.  Returns the number of records reclaimed.
  std::size_t PruneThrough(Seq through);

  // Smallest seq still archived (0 when empty) — pruned seqs can never be
  // Find()/Range()d again.
  Seq min_retained_seq() const;

  void set_telemetry(ArchiveTelemetry* t) { telemetry_ = t; }

  std::size_t size() const;
  std::size_t TotalDiffBytes() const;

 private:
  mutable std::mutex mutex_;
  std::deque<IntervalRecord> records_;
  ArchiveTelemetry* telemetry_ = nullptr;
};

}  // namespace dsm

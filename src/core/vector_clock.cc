#include "core/vector_clock.h"

#include <algorithm>
#include <sstream>

namespace dsm {

void VectorClock::Freeze() {
  if (!runs_.empty() || entries_.empty()) return;
  // Dense fallback: at the paper's native cluster size the run-length
  // form saves no memory (the run vector's overhead eats the win) and
  // taxes the fault path's per-component reads, so small clocks stay
  // dense.  EncodedBytes() is representation-independent, so the sparse
  // wire accounting is unaffected by this policy.
  if (entries_.size() <= kKeepDenseProcs) return;
  size_ = static_cast<int>(entries_.size());
  runs_.push_back({0, entries_[0]});
  for (int i = 1; i < size_; ++i) {
    if (entries_[i] != runs_.back().value) {
      runs_.push_back({static_cast<std::uint32_t>(i), entries_[i]});
    }
  }
  runs_.shrink_to_fit();
  std::vector<Seq>().swap(entries_);
}

Seq VectorClock::AtFrozen(ProcId p) const {
  DSM_DCHECK(p >= 0 && p < size_);
  const auto idx = static_cast<std::uint32_t>(p);
  std::size_t i = 1;
  while (i < runs_.size() && runs_[i].start <= idx) ++i;
  return runs_[i - 1].value;
}

void VectorClock::Merge(const VectorClock& other) {
  DSM_CHECK(runs_.empty());
  DSM_CHECK_EQ(size(), other.size());
  if (other.runs_.empty()) {
    for (int i = 0; i < size(); ++i) {
      entries_[i] = std::max(entries_[i], other.entries_[i]);
    }
    return;
  }
  for (std::size_t r = 0; r < other.runs_.size(); ++r) {
    const std::uint32_t end = r + 1 < other.runs_.size()
                                  ? other.runs_[r + 1].start
                                  : static_cast<std::uint32_t>(other.size_);
    const Seq v = other.runs_[r].value;
    for (std::uint32_t i = other.runs_[r].start; i < end; ++i) {
      entries_[i] = std::max(entries_[i], v);
    }
  }
}

bool VectorClock::DominatedBy(const VectorClock& other) const {
  DSM_CHECK_EQ(size(), other.size());
  for (int i = 0; i < size(); ++i) {
    if ((*this)[i] > other[i]) return false;
  }
  return true;
}

std::uint64_t VectorClock::Sum() const {
  std::uint64_t sum = 0;
  if (runs_.empty()) {
    for (const Seq v : entries_) sum += v;
    return sum;
  }
  for (std::size_t r = 0; r < runs_.size(); ++r) {
    const std::uint32_t end = r + 1 < runs_.size()
                                  ? runs_[r + 1].start
                                  : static_cast<std::uint32_t>(size_);
    sum += static_cast<std::uint64_t>(end - runs_[r].start) * runs_[r].value;
  }
  return sum;
}

std::size_t VectorClock::EncodedBytes() const {
  std::size_t num_runs;
  if (!runs_.empty()) {
    num_runs = runs_.size();
  } else {
    num_runs = entries_.empty() ? 0 : 1;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i] != entries_[i - 1]) ++num_runs;
    }
  }
  return std::min(4 + 8 * num_runs, DenseEncodedBytes(size()));
}

bool VectorClock::operator==(const VectorClock& other) const {
  if (size() != other.size()) return false;
  for (int i = 0; i < size(); ++i) {
    if ((*this)[i] != other[i]) return false;
  }
  return true;
}

std::string VectorClock::ToString() const {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) out << ",";
    out << (*this)[i];
  }
  out << "]";
  return out.str();
}

}  // namespace dsm

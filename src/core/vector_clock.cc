#include "core/vector_clock.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace dsm {

void VectorClock::Merge(const VectorClock& other) {
  DSM_CHECK_EQ(size(), other.size());
  for (int i = 0; i < size(); ++i) {
    entries_[i] = std::max(entries_[i], other.entries_[i]);
  }
}

bool VectorClock::DominatedBy(const VectorClock& other) const {
  DSM_CHECK_EQ(size(), other.size());
  for (int i = 0; i < size(); ++i) {
    if (entries_[i] > other.entries_[i]) return false;
  }
  return true;
}

std::string VectorClock::ToString() const {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) out << ",";
    out << entries_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace dsm

#include "core/sync.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace dsm {
namespace {

// Identity of the componentwise-min fold in Arrive.
VectorClock MaxClock(int num_procs) {
  VectorClock vc(num_procs);
  for (ProcId p = 0; p < num_procs; ++p) {
    vc[p] = std::numeric_limits<Seq>::max();
  }
  return vc;
}

}  // namespace

BarrierService::BarrierService(int num_procs)
    : num_procs_(num_procs),
      pending_vc_(num_procs),
      min_seen_(MaxClock(num_procs)) {}

BarrierService::Result BarrierService::Arrive(ProcId proc,
                                              const VectorClock& vc,
                                              VirtualNanos arrival_time,
                                              std::size_t arrival_bytes,
                                              const VectorClock* seen,
                                              ProcId coordinator) {
  std::unique_lock lock(mutex_);
  if (pending_coordinator_ == -1) {
    pending_coordinator_ = coordinator;
  } else {
    // Coordinator failover is derived per-node from the static fault
    // schedule; any disagreement is a protocol bug, not a race.
    DSM_CHECK_EQ(pending_coordinator_, coordinator)
        << "barrier arrivers disagree on the coordinator rank";
  }
  pending_vc_.Merge(vc);
  if (seen != nullptr) {
    // Fold the arriver's consumed-notice clock into the generation floor,
    // skipping its own component (a node never consumes its own notices,
    // so including it would pin the floor at zero).
    for (ProcId p = 0; p < num_procs_; ++p) {
      if (p != proc) min_seen_[p] = std::min(min_seen_[p], (*seen)[p]);
    }
  }
  max_arrival_ = std::max(max_arrival_, arrival_time);
  max_bytes_ = std::max(max_bytes_, arrival_bytes);
  ++arrived_;

  const std::uint64_t my_generation = generation_;
  if (arrived_ == num_procs_) {
    current_ = Result{pending_vc_, max_arrival_, max_bytes_, min_seen_,
                      pending_coordinator_};
    // Reset for the next generation.  pending_vc_ is part of the
    // per-generation state: per-proc clocks happen to be monotone today,
    // which would mask a missing reset, but a checkpoint/restore or
    // clock-reset path must not inherit stale maxima.
    arrived_ = 0;
    max_arrival_ = 0;
    max_bytes_ = 0;
    pending_vc_ = VectorClock(num_procs_);
    min_seen_ = MaxClock(num_procs_);
    pending_coordinator_ = -1;
    ++generation_;
    cv_.notify_all();
    return current_;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
  return current_;
}

void BarrierService::Rendezvous() {
  std::unique_lock lock(mutex_);
  const std::uint64_t my_generation = rendezvous_generation_;
  if (++rendezvous_arrived_ == num_procs_) {
    rendezvous_arrived_ = 0;
    ++rendezvous_generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return rendezvous_generation_ != my_generation; });
}

std::uint64_t BarrierService::barriers_completed() const {
  return generation_;
}

LockService::LockService(int num_locks, int num_procs)
    : num_procs_(num_procs),
      crash_swept_(static_cast<std::size_t>(num_procs), 0) {
  DSM_CHECK_GT(num_locks, 0);
  locks_.resize(num_locks);
  for (auto& l : locks_) l.release_vc = VectorClock(num_procs);
}

LockService::Grant LockService::Acquire(int lock_id, ProcId proc) {
  std::unique_lock lock(mutex_);
  LockState& st = locks_[lock_id];
  if (st.held || !st.queue.empty()) {
    st.queue.push_back(proc);
    for (;;) {
      if (std::find(st.queue.begin(), st.queue.end(), proc) ==
          st.queue.end()) {
        // A crash sweep (OnCrash) erased this parked waiter — the service
        // presumed the processor dead, but it is alive (recovered, or the
        // sweep was mistaken about a live waiter).  Deterministic requeue:
        // rejoin at the BACK, so every surviving waiter that was ahead is
        // served first and the handoff order is independent of wakeup
        // timing.
        st.queue.push_back(proc);
      }
      if (!st.held && st.queue.front() == proc) break;
      st.cv.wait(lock);
    }
    st.queue.pop_front();
  }
  st.held = true;
  const bool cached = (st.owner == proc);
  Grant grant{st.release_vc, st.release_time, cached, 0};
  if (!cached) {
    ++st.transfers;
    grant.chain_pos = ++total_transfers_;
  }
  st.owner = proc;
  return grant;
}

void LockService::Release(int lock_id, ProcId proc, const VectorClock& vc,
                          VirtualNanos time) {
  std::lock_guard lock(mutex_);
  LockState& st = locks_[lock_id];
  if (crash_swept_[static_cast<std::size_t>(proc)] != 0 &&
      (!st.held || st.owner != proc)) {
    // Orphan release by a crashed-then-recovered processor: OnCrash
    // already force-released this lock on its behalf (and a waiter may
    // have taken it since).  The transparent recovery model means the
    // app thread still executes its release — tolerate it.
    return;
  }
  DSM_CHECK(st.held) << "release of lock " << lock_id << " not held";
  DSM_CHECK_EQ(st.owner, proc);
  st.held = false;
  st.release_vc = vc;
  st.release_time = time;
  // Only this lock's waiters are interested; the per-lock CV keeps a
  // release from waking every waiter of every other lock.
  st.cv.notify_all();
}

void LockService::OnCrash(ProcId proc, const VectorClock& vc,
                          VirtualNanos time) {
  std::lock_guard lock(mutex_);
  crash_swept_[static_cast<std::size_t>(proc)] = 1;
  for (LockState& st : locks_) {
    bool touched = false;
    // A crashed waiter never arrives to take its grant; erase it so the
    // queue's front is always a live waiter.  (Deterministic: queue order
    // of the survivors is preserved.)
    for (auto it = st.queue.begin(); it != st.queue.end();) {
      if (*it == proc) {
        it = st.queue.erase(it);
        touched = true;
      } else {
        ++it;
      }
    }
    if (st.held && st.owner == proc) {
      // Force-release on the victim's behalf, publishing exactly the
      // clock/time its own release would have (the caller passes the
      // recovered post-crash values, which are what a normal release at
      // the crash point publishes).
      st.held = false;
      st.release_vc = vc;
      st.release_time = time;
      touched = true;
    }
    if (st.owner == proc && !st.held) {
      // Cached token died with the node: the next acquire — by anyone,
      // the victim included — must be a real transfer.
      st.owner = -1;
      touched = true;
    }
    if (touched) st.cv.notify_all();
  }
}

std::uint64_t LockService::transfers(int lock_id) const {
  std::lock_guard lock(mutex_);
  return locks_[lock_id].transfers;
}

}  // namespace dsm

#include "core/sync.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace dsm {
namespace {

// Identity of the componentwise-min fold in Arrive.
VectorClock MaxClock(int num_procs) {
  VectorClock vc(num_procs);
  for (ProcId p = 0; p < num_procs; ++p) {
    vc[p] = std::numeric_limits<Seq>::max();
  }
  return vc;
}

}  // namespace

BarrierService::BarrierService(int num_procs)
    : num_procs_(num_procs),
      pending_vc_(num_procs),
      min_seen_(MaxClock(num_procs)) {}

BarrierService::Result BarrierService::Arrive(ProcId proc,
                                              const VectorClock& vc,
                                              VirtualNanos arrival_time,
                                              std::size_t arrival_bytes,
                                              const VectorClock* seen) {
  std::unique_lock lock(mutex_);
  pending_vc_.Merge(vc);
  if (seen != nullptr) {
    // Fold the arriver's consumed-notice clock into the generation floor,
    // skipping its own component (a node never consumes its own notices,
    // so including it would pin the floor at zero).
    for (ProcId p = 0; p < num_procs_; ++p) {
      if (p != proc) min_seen_[p] = std::min(min_seen_[p], (*seen)[p]);
    }
  }
  max_arrival_ = std::max(max_arrival_, arrival_time);
  max_bytes_ = std::max(max_bytes_, arrival_bytes);
  ++arrived_;

  const std::uint64_t my_generation = generation_;
  if (arrived_ == num_procs_) {
    current_ = Result{pending_vc_, max_arrival_, max_bytes_, min_seen_};
    // Reset for the next generation.  pending_vc_ is part of the
    // per-generation state: per-proc clocks happen to be monotone today,
    // which would mask a missing reset, but a checkpoint/restore or
    // clock-reset path must not inherit stale maxima.
    arrived_ = 0;
    max_arrival_ = 0;
    max_bytes_ = 0;
    pending_vc_ = VectorClock(num_procs_);
    min_seen_ = MaxClock(num_procs_);
    ++generation_;
    cv_.notify_all();
    return current_;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
  return current_;
}

void BarrierService::Rendezvous() {
  std::unique_lock lock(mutex_);
  const std::uint64_t my_generation = rendezvous_generation_;
  if (++rendezvous_arrived_ == num_procs_) {
    rendezvous_arrived_ = 0;
    ++rendezvous_generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return rendezvous_generation_ != my_generation; });
}

std::uint64_t BarrierService::barriers_completed() const {
  return generation_;
}

LockService::LockService(int num_locks, int num_procs)
    : num_procs_(num_procs) {
  DSM_CHECK_GT(num_locks, 0);
  locks_.resize(num_locks);
  for (auto& l : locks_) l.release_vc = VectorClock(num_procs);
}

LockService::Grant LockService::Acquire(int lock_id, ProcId proc) {
  std::unique_lock lock(mutex_);
  LockState& st = locks_[lock_id];
  if (st.held || !st.queue.empty()) {
    st.queue.push_back(proc);
    st.cv.wait(lock, [&] { return !st.held && st.queue.front() == proc; });
    st.queue.pop_front();
  }
  st.held = true;
  const bool cached = (st.owner == proc);
  Grant grant{st.release_vc, st.release_time, cached, 0};
  if (!cached) {
    ++st.transfers;
    grant.chain_pos = ++total_transfers_;
  }
  st.owner = proc;
  return grant;
}

void LockService::Release(int lock_id, ProcId proc, const VectorClock& vc,
                          VirtualNanos time) {
  std::lock_guard lock(mutex_);
  LockState& st = locks_[lock_id];
  DSM_CHECK(st.held) << "release of lock " << lock_id << " not held";
  DSM_CHECK_EQ(st.owner, proc);
  st.held = false;
  st.release_vc = vc;
  st.release_time = time;
  // Only this lock's waiters are interested; the per-lock CV keeps a
  // release from waking every waiter of every other lock.
  st.cv.notify_all();
}

std::uint64_t LockService::transfers(int lock_id) const {
  std::lock_guard lock(mutex_);
  return locks_[lock_id].transfers;
}

}  // namespace dsm

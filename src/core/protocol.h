// Node: one logical DSM processor.
//
// Owns the node's private image of the shared address space, its page table
// (unit protection states + twins), its word tracker, virtual clock, vector
// clock, pending write notices, and statistics.  Implements the full lazy
// release consistency + multiple-writer protocol of the paper:
//
//   read fault   → fetch diffs from all concurrent writers with pending
//                  notices (combined per writer; writers answer in
//                  parallel), apply in happens-before order
//   write fault  → validate if needed, then twin the unit
//   release      → close interval: diff every twinned unit, archive, emit
//                  write notices
//   acquire      → merge clocks, invalidate units named by newly covered
//                  write notices
//
// With AggregationMode::kDynamic the fault path consults the per-node
// DynamicAggregator and fetches whole page groups (paper §4).
//
// Threading: a Node is driven only by its own thread.  Peers touch a node
// exclusively through its immutable-once-appended IntervalArchive (under
// its mutex) and the sync services.
#pragma once

#include <algorithm>
#include <cstring>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "core/aggregation.h"
#include "core/comm_stats.h"
#include "core/config.h"
#include "core/sync.h"
#include "core/vector_clock.h"
#include "core/write_notice.h"
#include "mem/global_heap.h"
#include "mem/page_table.h"
#include "mem/sharer_directory.h"
#include "mem/word_tracker.h"
#include "net/net_stats.h"
#include "sim/virtual_clock.h"

namespace dsm {

class Node;
class FaultInjector;        // core/fault.h
class RecoveryCoordinator;  // core/fault.h
class RaceDetector;         // analysis/race_detector.h

// Everything shared between nodes; owned by Runtime.
struct SharedState {
  RuntimeConfig config;
  GlobalHeap heap;
  NetworkModel net;
  std::vector<std::unique_ptr<IntervalArchive>> archives;  // per proc
  std::unique_ptr<BarrierService> barrier;
  std::unique_ptr<LockService> locks;
  // Archive GC (DESIGN.md §6): canonical base images holding the contents
  // of reclaimed intervals, archive footprint telemetry, and the flatten
  // target — the global vector clock of the last completed barrier, which
  // every node has fully processed by the time the next barrier's idle
  // window opens.  gc_target/gc_passes are touched only by proc 0 inside
  // that window.
  std::unique_ptr<CanonicalStore> canonical;
  ArchiveTelemetry archive_telemetry;
  // Global clocks of the most recent gc_lag_barriers completed barriers,
  // oldest first; the front is the flatten target once full.
  std::deque<VectorClock> gc_history;
  std::uint64_t gc_passes = 0;
  // BackendKind::kReference: the single image all processors access
  // directly (null under the LRC backend, where every node owns a private
  // image).  Race-free programs touch disjoint words between
  // synchronizations, so direct concurrent access is well-defined.
  std::unique_ptr<std::byte[]> reference_image;
  // BackendKind::kHlrc (DESIGN.md §7): the home-node master copies of
  // every consistency unit, as one heap-sized image (which node is a
  // unit's home is pure metadata — HomeOf).  Releases apply diffs here
  // eagerly; faults copy whole units out.  Per-unit mutexes serialize a
  // flush against a concurrent whole-unit fetch (race-free programs never
  // conflict on the words involved, but the host-level copies overlap).
  // Null unless the backend is kHlrc.
  std::unique_ptr<std::byte[]> home_image;
  std::unique_ptr<std::mutex[]> home_mutexes;  // one per unit
  // Serial-vs-striped GC switch for this host (GcSerialPassLimit applied
  // to std::thread::hardware_concurrency() once at construction, so every
  // node derives the same pass mode).
  std::size_t gc_serial_pass_limit = 0;
  // Per-unit sharer directory (DESIGN.md §8): which processors have ever
  // faulted on each unit.  Nodes register on the fault path; the GC and
  // its invariant checks read inside the barrier window.
  std::unique_ptr<SharerDirectory> sharers;
  // Reclaimed history shared by every node that never faulted on the unit
  // (DESIGN.md §8).  All such "virgin" nodes hold identical dominated
  // pending sets (they pass every barrier and never consume notices), so
  // the GC flattens their history once per unit here instead of growing a
  // chain-header vector on each of them; a node copies the unit's entry
  // into its own flattened_/elided_ at its first fault and is a sharer
  // from then on.  Mutated only inside the GC window; read (and copied)
  // by fault paths, which the window's barrier happens-before.
  struct VirginHistory {
    std::vector<FlattenedChain> chains;
    std::vector<DiffRun> elided;
  };
  std::vector<VirginHistory> virgin_history;

  // Deterministic fault injection (DESIGN.md §9): null unless
  // config.fault is armed; the resolved plan (victim derived from the
  // seed when negative) lives in the injector AND is written back into
  // `config.fault` at construction.
  std::unique_ptr<FaultInjector> fault;
  // Happens-before race detection (DESIGN.md §10): null unless
  // config.race_check.  Observational only — nodes feed it access and
  // synchronization events; it never touches modelled state.
  std::unique_ptr<RaceDetector> race;
  // Checkpoint watermark: the flatten target (`gc_through`) of the last
  // completed GC apply — every interval at or below it is fully
  // represented in the canonical bases.  Written by proc 0 inside the GC
  // window (before the closing rendezvous, which happens-before every
  // later read); recovery replays only archive records ABOVE it.
  // Maintained only under an armed fault plan (dense, all-zero
  // otherwise), so no-fault runs take no new work.
  VectorClock checkpoint_vc;
  // HLRC home-crash re-homing (DESIGN.md §9): per-unit home override,
  // sized (all -1) when an HLRC schedule is armed, empty otherwise.  A
  // crashed home's units are reconstructed by the victim's recovery and
  // re-homed here; the batch is registered in `pending_rehomes` by the
  // victim and applied by the barrier coordinator inside the next
  // barrier's idle window (ApplyPendingRehomes), so every node flips to
  // the new map at the same deterministic point.  `rehome_epoch` counts
  // applied batches: a node whose private epoch lags pays the modelled
  // timeout + retransmit for learning the new map at its next home
  // contact (CommBreakdown::recovery_retransmits).
  std::vector<ProcId> home_override;
  std::mutex rehome_mutex;
  std::vector<std::pair<UnitId, ProcId>> pending_rehomes;
  std::uint64_t rehome_epoch = 0;
  // Applies pending_rehomes into home_override.  Called only by the
  // barrier coordinator between Arrive and Rendezvous — every other node
  // is inside the same barrier, so the writes happen-before every
  // post-barrier EffectiveHome read via the closing rendezvous.
  void ApplyPendingRehomes();

  // Home node of `unit` under kHlrc: round-robin over processors in
  // blocks of config.hlrc_home_block_units units.  This is the static
  // base map; EffectiveHome folds in crash-driven overrides.
  ProcId HomeOf(UnitId unit) const {
    const auto block =
        static_cast<UnitId>(std::max(1, config.hlrc_home_block_units));
    return static_cast<ProcId>((unit / block) %
                               static_cast<UnitId>(config.num_procs));
  }

  // HomeOf plus the per-unit crash override table.
  ProcId EffectiveHome(UnitId unit) const {
    if (!home_override.empty()) {
      const ProcId o = home_override[static_cast<std::size_t>(unit)];
      if (o >= 0) return o;
    }
    return HomeOf(unit);
  }

  // New home for `unit` after home `dead` crashed: the HomeOf block map
  // re-run over the surviving ranks (the dead rank excised, ranks above
  // shifted down) — deterministic, communication-free, and as balanced as
  // the primary map.
  ProcId RehomeTarget(UnitId unit, ProcId dead) const {
    const auto block =
        static_cast<UnitId>(std::max(1, config.hlrc_home_block_units));
    const ProcId h = static_cast<ProcId>(
        (unit / block) % static_cast<UnitId>(config.num_procs - 1));
    return h >= dead ? h + 1 : h;
  }

  // Barrier coordinator for `sync_phase`: proc 0 unless an at-barrier
  // event kills it at that phase, in which case the lowest surviving rank
  // assumes the coordinator roles (serial GC, checkpoint watermark, HLRC
  // watermark prune, re-home apply, barrier-manager cost asymmetry) for
  // exactly that barrier.  A pure function of the armed schedule and the
  // phase, so every node computes the same answer with no communication;
  // always 0 when no schedule is armed.
  ProcId CoordinatorFor(std::uint32_t sync_phase) const;
  // Peer access for the lazy-diffing cost flags; filled in by Runtime
  // after node construction.
  std::vector<Node*> nodes;
  // Striped archive GC: per-archive snapshot of the dominated prefix,
  // built once per pass by whichever stripe worker first needs it (under
  // the mutex) and shared read-only by the rest.  Slot p is cleared by
  // node p in GcPruneOwn, releasing the batch's shared ownership.
  std::mutex gc_snapshot_mutex;
  std::vector<std::vector<std::shared_ptr<const IntervalRecord>>>
      gc_dom_prefix;
  std::vector<std::atomic<std::uint8_t>> gc_dom_ready;

  explicit SharedState(const RuntimeConfig& cfg);
  // Out-of-line: FaultInjector is incomplete here (unique_ptr member).
  ~SharedState();
};

class Node {
 public:
  Node(ProcId id, SharedState& shared);

  ProcId id() const { return id_; }
  int num_procs() const { return shared_.config.num_procs; }

  // --- application-facing memory access (hot path) -------------------------
  // `addr` must be word-aligned, `bytes` a multiple of kWordBytes.
  void ReadBytes(GlobalAddr addr, void* out, std::size_t bytes);
  void WriteBytes(GlobalAddr addr, const void* in, std::size_t bytes);

  // Charge `flops` floating-point operations of private compute.
  void Compute(std::uint64_t flops) {
    clock_.Advance(static_cast<VirtualNanos>(flops) *
                   shared_.config.cost.flop);
  }

  // --- synchronization ------------------------------------------------------
  void Barrier();
  void AcquireLock(int lock_id);
  void ReleaseLock(int lock_id);

  // --- introspection ---------------------------------------------------------
  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }
  CommStats& comm_stats() { return comm_stats_; }
  NetStats& net_stats() { return net_stats_; }
  PageTable& page_table() { return table_; }
  WordTracker& word_tracker() { return tracker_; }
  const VectorClock& vector_clock() const { return vc_; }
  DynamicAggregator& aggregator() { return aggregator_; }
  // The memory this node's accesses hit: its private image under LRC, the
  // single shared image under the reference backend.
  std::byte* image() { return data_; }
  IntervalArchive& archive() { return *shared_.archives[id_]; }

  // Close the current open interval (normally driven by release/barrier;
  // public for tests and for Runtime teardown).  `lock_release` tags the
  // archived record as closed by a lock release — the archive GC's
  // read-aware flattening only ever elides such records.
  void CloseInterval(bool lock_release = false);

  // Flattened (reclaimed-history) chains pending for `unit` on this node —
  // observability for tests.
  const std::vector<FlattenedChain>& flattened_chains(UnitId unit) const {
    return flattened_[unit];
  }
  // Live pending notices for `unit` (post-GC tail) — observability.
  std::size_t pending_count(UnitId unit) const {
    return pending_[unit].size();
  }
  // Reclaimed-history words elided by read-aware flattening and not yet
  // refreshed from the canonical base — observability for tests.
  const std::vector<DiffRun>& elided_runs(UnitId unit) const {
    return elided_[unit];
  }

 private:
  // Crash recovery rebuilds this node's volatile state in place
  // (core/fault.h); it needs the same access the node's own protocol
  // methods have.
  friend class RecoveryCoordinator;

  // The LRC protocol machinery runs only when there is someone to talk to
  // and the run is not using the sequentially consistent reference oracle.
  // Fixed at construction; cached so the access fast path pays one bool
  // load instead of two config reads.
  bool protocol_enabled() const { return protocol_enabled_; }

  std::span<std::byte> UnitSpan(UnitId unit) {
    return {data_ + shared_.heap.UnitBase(unit), unit_bytes_};
  }

  // Accesses spanning multiple consistency units (rare): the per-unit
  // chunk loop behind the inline single-unit fast path.
  void ReadBytesSlow(GlobalAddr addr, void* out, std::size_t bytes);
  void WriteBytesSlow(GlobalAddr addr, const void* in, std::size_t bytes);

  // Race-detector feed (out of line so the inline access paths pay one
  // null test and nothing else when the checker is off).
  void RaceOnAccess(UnitId unit, std::size_t offset_in_unit,
                    std::size_t bytes, bool is_write);

  void ReadFault(UnitId unit);
  void WriteFault(UnitId unit);

  // Make an invalid/updated-invalid unit readable.  Does not charge the
  // fault trap itself (callers do).
  void ValidateUnit(UnitId unit);

  // Read-aware flattening fallback: copy any elided reclaimed words of
  // `unit` from the canonical base into the image (host-side only — the
  // elided history was never going to be read, so a mispredicted access
  // refreshes the bytes without modelling the reclaimed deliveries).
  void RefreshElided(UnitId unit);

  // Barrier-epoch archive GC (DESIGN.md §6), orchestrated by Barrier()
  // inside the extended idle window: flatten the dominated pending
  // notices of every node for this node's unit stripe (serial passes
  // use proc 0 with the full range), then — after a rendezvous for
  // striped passes — apply the stripe's referenced diffs to the
  // canonical bases and run the base release-check.  GcPruneOwn
  // reclaims this node's own dominated archive prefix; it is safe to
  // run concurrently with resumed application threads (archives are
  // mutex-guarded and no live reference to a dominated record can
  // exist).
  void GcFlattenStripe(const VectorClock& through, int start, int step);
  void GcApplyStripe(int start, int step);
  void GcPruneOwn(const VectorClock& through);

  // Lazy-diffing phase key: barrier phase in the upper half, lock-chain
  // sub-phase in the lower (see IntervalRecord::diffed).  Barrier programs
  // keep the sub-phase at 0, reducing to pure barrier-phase quantization.
  std::uint64_t stamp_key() const {
    return (std::uint64_t{sync_phase_} << 32) | lock_subphase_;
  }

  // Fetch and apply all pending diffs for `units` (all must have pending
  // notices), combining requests per writer.  Records exchanges, the fault
  // record, and all modelled costs.
  void FetchUnits(const std::vector<UnitId>& units);

  // --- home-based LRC (BackendKind::kHlrc, DESIGN.md §7) -------------------
  // Close the open interval by eagerly diffing every dirty unit and
  // flushing the diffs to the units' homes (one combined message per
  // remote home, answered in parallel), then archive a notice-only
  // interval record (units + clock, empty diffs — the payload lives at
  // the homes now).
  void HlrcFlushInterval(bool lock_release);

  // Resolve the invalid `units` by fetching whole-unit copies from their
  // homes (one combined exchange per remote home; self-homed units are a
  // local copy).  Local uncommitted modifications (a live twin) are laid
  // back on top, mirroring the LRC fault path's image+twin discipline.
  void HlrcFetchUnits(const std::vector<UnitId>& units);

  // Barrier-window notice-log maintenance (proc 0, inside the idle
  // window): prune every archived notice record that every other node has
  // already processed — the HLRC counterpart of the LRC archive GC,
  // trivial because the records are metadata-only.  `min_seen` is the
  // barrier-aggregated floor of the peers' notices_seen_ clocks
  // (min_seen[p] = min over q != p of notices_seen_q[p], accumulated by
  // BarrierService::Arrive), which replaces the old O(num_procs²)
  // all-pairs scan over the parked nodes (DESIGN.md §8).
  void HlrcPruneNotices(const VectorClock& min_seen);

  // HLRC home-crash re-homing (DESIGN.md §9): if re-home batches were
  // applied since this node's last home contact, its next exchange is
  // addressed from the stale map, times out against the dead home, and is
  // re-sent — returns the modelled timeout + retransmit latency (one per
  // missed batch, request of `request_bytes`) and bumps the
  // recovery_retransmit counters.  Zero (and counter-free) when no
  // schedule is armed or the node is current.
  VirtualNanos HlrcChargeRehomeLearning(std::size_t request_bytes);

  // Mark a clean unit dirty (twin + unprotect).  `cheap` re-twins carry no
  // modelled cost (lazy-diffing regime, see WriteFault).
  void TwinUnit(UnitId unit, bool cheap = false);

  // First-fault bookkeeping for `unit` (DESIGN.md §8): register this node
  // in the sharer directory and, if it was a virgin until now, copy the
  // unit's shared virgin history into this node's flattened_/elided_.
  // Chain headers are thereby allocated lazily — a node carries them only
  // for units it has actually faulted on.
  void AdoptVirginState(UnitId unit) {
    if (shared_.sharers->Register(unit, id_)) return;
    const SharedState::VirginHistory& v = shared_.virgin_history[unit];
    if (!v.chains.empty()) flattened_[unit] = v.chains;
    if (!v.elided.empty()) elided_[unit] = v.elided;
  }

  // Would this still-virgin node have reclaimed chains pending for `unit`?
  // The group-prefetch predicate's stand-in for the flattened_ check on
  // units this node has never faulted on.
  bool HasVirginChains(UnitId unit) const {
    return !shared_.sharers->IsSharer(unit, id_) &&
           !shared_.virgin_history[unit].chains.empty();
  }

  // Collect archive records newly covered by `target` (all procs except
  // self), in (proc, seq) order, into `out` (cleared first; callers pass
  // the reusable notice_scratch_).  Also reports their total write-notice
  // payload size.
  void CollectNotices(const VectorClock& target, std::size_t* notice_bytes,
                      std::vector<const IntervalRecord*>& out) const;

  // Invalidate the units named in `records` and queue pending notices.
  void InvalidateFrom(const std::vector<const IntervalRecord*>& records);

  // Write-notice payload this node ships at a release (its own intervals
  // not yet sent), advancing last_sent_seq_.
  std::size_t OutgoingNoticeBytes();

  struct PendingInterval {
    ProcId proc;
    Seq seq;
  };

  const ProcId id_;
  SharedState& shared_;
  const std::size_t unit_bytes_;
  const int unit_shift_;
  const bool protocol_enabled_;
  // Home-based LRC backend active (protocol on + BackendKind::kHlrc):
  // releases flush to homes, faults fetch whole units, no archive GC.
  const bool hlrc_;
  // HLRC clean-twin tracking on (hlrc_ && config.hlrc_skip_clean_diff_scan):
  // writes compare against the image until a byte actually changes, letting
  // the eager release-time diff scan short-circuit for value-identical
  // writes (the diff would be empty).  Host-side only — the modelled diff
  // cost and message counts are unchanged.
  const bool twin_track_;
  // Per-word cost of a shared access, cached off the config for the
  // fast path.
  const VirtualNanos shared_access_cost_;
  // Cached shared_.race.get(): null unless config.race_check, so the
  // access fast paths gate the observational feed on one pointer test.
  RaceDetector* const race_;

  std::unique_ptr<std::byte[]> image_;  // private image (LRC; null for ref)
  std::byte* data_;                     // accesses go here (image_ or shared)
  PageTable table_;
  WordTracker tracker_;
  std::vector<std::vector<PendingInterval>> pending_;
  // Reclaimed-history chains per unit (archive GC, DESIGN.md §6): the
  // coalesced chains of flattened intervals this node had pending when
  // they were reclaimed.  Consumed (with any live tail) at the next fault
  // on the unit; their data is served from the shared canonical base.
  std::vector<std::vector<FlattenedChain>> flattened_;
  // Read-aware flattening (DESIGN.md §6): canonical run list of reclaimed
  // words the GC elided for this node (lock-release intervals none of
  // whose words this node ever read).  Silently refreshed from the
  // canonical base at the next fault on the unit; pins the unit's base
  // until then.
  std::vector<std::vector<DiffRun>> elided_;
  // Lazy-diffing cost model (see protocol.cc): a unit whose twin was just
  // diffed at a release can be re-dirtied for free — in real TreadMarks
  // the twin simply persists across the release — unless a peer has
  // requested a diff of the unit in an earlier barrier phase (which in
  // the lazy regime forces diff creation, twin discard, and re-protection
  // at the writer).  Peers set diff_requested_ asynchronously; Barrier
  // drains it into diff_request_seen_ (the only flag WriteFault consults)
  // inside the extended barrier window, so the cheap/expensive decision is
  // quantized to phases and replays deterministically.
  std::vector<std::uint8_t> retwin_cheap_;
  std::vector<std::atomic<std::uint8_t>> diff_requested_;
  std::vector<std::uint8_t> diff_request_seen_;
  // Clean-twin flags (sized num_units only when twin_track_): 0 while the
  // unit's bytes still equal its twin, 1 once a write changed anything.
  std::vector<std::uint8_t> twin_dirty_;
  // Last re-home batch epoch this node has learned
  // (SharedState::rehome_epoch).  A lagging node's next remote home
  // contact pays the modelled timeout + retransmit per missed batch and
  // catches up — the lazy-learning model for HLRC home-crash re-homing.
  std::uint64_t rehome_epoch_seen_ = 0;
  // Completed barrier phases (identical on every node at any given phase).
  std::uint32_t sync_phase_ = 0;
  // Lock-chain sub-phase: the service-wide position of this node's most
  // recent lock token transfer (0 until the first non-cached acquire
  // after a barrier).  Combined with sync_phase_ into stamp_key().
  std::uint32_t lock_subphase_ = 0;
  DynamicAggregator aggregator_;

  VirtualClock clock_;
  VectorClock vc_;
  // Highest seq per peer whose notices this node has already processed.
  VectorClock notices_seen_;
  Seq last_sent_seq_ = 0;

  CommStats comm_stats_;
  NetStats net_stats_;

  // Scratch buffers reused across faults and synchronizations, so the
  // steady-state fault path performs no allocations (vector capacity and
  // pooled diff storage persist between calls).
  //
  // One per-writer coalesced chain the fault must fetch: either a live
  // chain (diff != nullptr) or a flattened chain (flat != nullptr) whose
  // payload is copied from the canonical base, with any live diffs
  // absorbed into its tail applied on top.
  struct NeedEntry {
    UnitId unit;
    ProcId writer;
    Seq last_seq;                // chain tail (happens-before ordering)
    const VectorClock* last_vc;  // tail's close-time clock
    const Diff* diff;            // live chain: the (possibly merged) diff
    FlattenedChain* flat;        // reclaimed chain (data in canonical base)
    // Live diffs absorbed into flat's tail: indices into absorbed_scratch_.
    std::uint32_t absorbed_begin;
    std::uint32_t absorbed_count;
    std::uint32_t exchange_id;
    bool needs_scan;  // server must materialize (this requester pays)

    std::size_t EncodedBytes() const {
      return flat != nullptr ? flat->EncodedBytes() : diff->EncodedBytes();
    }
    std::size_t PayloadWords() const {
      return flat != nullptr ? flat->payload_words() : diff->payload_words();
    }
  };
  struct ResolvedDiff {
    const IntervalRecord* rec;
    const Diff* diff;
    bool pays_for_scan;
  };
  std::vector<std::vector<NeedEntry>> needs_by_writer_;  // indexed by proc
  std::vector<ResolvedDiff> resolved_scratch_;        // FetchUnits
  std::vector<const ResolvedDiff*> chain_scratch_;    // FetchUnits
  std::vector<Seq> foreign_vcw_scratch_;              // FetchUnits
  std::deque<Diff> merged_scratch_;                   // FetchUnits
  std::vector<NeedEntry> apply_scratch_;              // FetchUnits
  std::vector<const Diff*> absorbed_scratch_;         // FetchUnits
  std::vector<UnitId> fetch_scratch_;                 // ValidateUnit
  std::vector<const IntervalRecord*> notice_scratch_;  // Barrier/AcquireLock
  // HLRC scratch (empty vectors under the other backends): fault-time
  // unit lists grouped by home, and per-home flush message accounting.
  std::vector<std::vector<UnitId>> fetch_by_home_;     // HlrcFetchUnits
  std::vector<std::size_t> hlrc_flush_bytes_;          // HlrcFlushInterval
  std::vector<VirtualNanos> hlrc_flush_server_;        // HlrcFlushInterval

  // Striped archive GC (DESIGN.md §6): the (unit, record) references this
  // node's flatten stripe routed to the canonical base, unit-ordered
  // (flatten walks units ascending); consumed and cleared by
  // GcApplyStripe.  vc_sum caches the happens-before sort key.
  struct GcRef {
    UnitId unit;
    const IntervalRecord* rec;
    int di;
    std::uint64_t vc_sum;
  };
  std::vector<GcRef> gc_refs_;
};

// ---------------------------------------------------------------------------
// Hot-path inline definitions.
// ---------------------------------------------------------------------------

inline void Node::ReadBytes(GlobalAddr addr, void* out, std::size_t bytes) {
  DSM_DCHECK(addr % kWordBytes == 0 && bytes % kWordBytes == 0);
  DSM_DCHECK(addr + bytes <= shared_.heap.heap_bytes());
  const UnitId unit = static_cast<UnitId>(addr >> unit_shift_);
  const std::size_t offset_in_unit = addr & (unit_bytes_ - 1);
  if (offset_in_unit + bytes <= unit_bytes_) [[likely]] {
    // Single-unit fast path (the overwhelmingly common case): one inline
    // protection-state load, one fresh-count check, one memcpy, one
    // batched clock update.
    if (protocol_enabled_) {
      if (table_.NeedsFaultOnRead(unit)) [[unlikely]] {
        ReadFault(unit);
      }
      tracker_.OnRead(unit,
                      static_cast<std::uint32_t>(offset_in_unit / kWordBytes),
                      static_cast<std::uint32_t>(bytes / kWordBytes),
                      [this](std::uint32_t msg) { comm_stats_.Credit(msg); });
    }
    if (race_ != nullptr) [[unlikely]] {
      RaceOnAccess(unit, offset_in_unit, bytes, /*is_write=*/false);
    }
    std::memcpy(out, data_ + addr, bytes);
    clock_.Advance(static_cast<VirtualNanos>(bytes / kWordBytes) *
                   shared_access_cost_);
    return;
  }
  ReadBytesSlow(addr, out, bytes);
}

inline void Node::WriteBytes(GlobalAddr addr, const void* in,
                             std::size_t bytes) {
  DSM_DCHECK(addr % kWordBytes == 0 && bytes % kWordBytes == 0);
  DSM_DCHECK(addr + bytes <= shared_.heap.heap_bytes());
  const UnitId unit = static_cast<UnitId>(addr >> unit_shift_);
  const std::size_t offset_in_unit = addr & (unit_bytes_ - 1);
  if (offset_in_unit + bytes <= unit_bytes_) [[likely]] {
    if (protocol_enabled_) {
      if (table_.NeedsFaultOnWrite(unit)) [[unlikely]] {
        WriteFault(unit);
      }
      tracker_.OnWrite(unit,
                       static_cast<std::uint32_t>(offset_in_unit / kWordBytes),
                       static_cast<std::uint32_t>(bytes / kWordBytes));
      if (twin_track_ && twin_dirty_[unit] == 0 &&
          std::memcmp(data_ + addr, in, bytes) != 0) {
        twin_dirty_[unit] = 1;
      }
    }
    if (race_ != nullptr) [[unlikely]] {
      RaceOnAccess(unit, offset_in_unit, bytes, /*is_write=*/true);
    }
    std::memcpy(data_ + addr, in, bytes);
    clock_.Advance(static_cast<VirtualNanos>(bytes / kWordBytes) *
                   shared_access_cost_);
    return;
  }
  WriteBytesSlow(addr, in, bytes);
}

}  // namespace dsm

#include "core/aggregation.h"

#include <algorithm>

#include "common/check.h"

namespace dsm {

DynamicAggregator::DynamicAggregator(std::size_t num_units,
                                     int max_group_pages)
    : max_group_pages_(max_group_pages),
      accessed_epoch_(num_units, 0),
      prefetch_pending_(num_units, 0),
      group_of_(num_units, -1) {
  DSM_CHECK_GE(max_group_pages, 1);
}

void DynamicAggregator::RecordAccess(UnitId unit) {
  prefetch_pending_[unit] = 0;  // the prefetch paid off
  if (accessed_epoch_[unit] == epoch_) return;
  accessed_epoch_[unit] = epoch_;
  access_seq_.push_back(unit);
}

void DynamicAggregator::NotifyPrefetched(UnitId unit) {
  if (prefetch_pending_[unit] == 0) {
    prefetch_pending_[unit] = 1;
    prefetched_.push_back(unit);
  }
}

void DynamicAggregator::RemoveFromGroup(UnitId unit) {
  const std::int32_t gid = group_of_[unit];
  if (gid < 0) return;
  auto& members = groups_[static_cast<std::size_t>(gid)];
  auto it = std::find(members.begin(), members.end(), unit);
  // Membership invariant: group_of_[u] == g ⟺ u ∈ groups_[g].  erase(end())
  // would be UB, so fail loudly if the invariant ever breaks.
  DSM_CHECK(it != members.end())
      << "aggregator: unit " << unit << " maps to group " << gid
      << " but is not among its members";
  members.erase(it);
  group_of_[unit] = -1;
  // A group of one page aggregates nothing; dissolve it.  Unmap the
  // survivor BEFORE clearing so the two sides of the invariant never
  // disagree, even transiently — the regroup loop in OnSynchronization
  // re-enters this function (and may reuse the freed id) while iterating.
  if (members.size() == 1) {
    const UnitId survivor = members.front();
    DSM_CHECK_EQ(group_of_[survivor], gid);
    group_of_[survivor] = -1;
    members.clear();
  }
  if (members.empty()) {
    free_group_ids_.push_back(static_cast<std::uint32_t>(gid));
    num_live_groups_ -= 1;
  }
}

void DynamicAggregator::OnSynchronization() {
  // (a) Split members whose prefetch was never consumed: the access
  // pattern that created the group no longer holds.
  for (UnitId u : prefetched_) {
    if (prefetch_pending_[u] != 0) {
      prefetch_pending_[u] = 0;
      RemoveFromGroup(u);
    }
  }
  prefetched_.clear();

  // (b) Re-group the pages accessed in the ended interval, in access
  // order.  Accessed pages migrate from their old groups to the new ones.
  std::size_t i = 0;
  while (i < access_seq_.size()) {
    const std::size_t take =
        std::min<std::size_t>(max_group_pages_, access_seq_.size() - i);
    if (take >= 2) {
      std::uint32_t gid;
      if (!free_group_ids_.empty()) {
        gid = free_group_ids_.back();
        free_group_ids_.pop_back();
        groups_[gid].clear();
      } else {
        gid = static_cast<std::uint32_t>(groups_.size());
        groups_.emplace_back();
      }
      for (std::size_t k = i; k < i + take; ++k) {
        const UnitId u = access_seq_[k];
        RemoveFromGroup(u);
        group_of_[u] = static_cast<std::int32_t>(gid);
        groups_[gid].push_back(u);
      }
      num_live_groups_ += 1;
    } else {
      // A lone access does not form a group, but it is fresh evidence for
      // this page's pattern; keep any existing membership.
    }
    i += take;
  }

  access_seq_.clear();
  ++epoch_;
}

std::span<const UnitId> DynamicAggregator::GroupOf(UnitId unit) const {
  const std::int32_t gid = group_of_[unit];
  if (gid < 0) return {};
  return groups_[static_cast<std::size_t>(gid)];
}

}  // namespace dsm

// Semantic communication statistics: the paper's measurement methodology.
//
// Every page fault that sends messages contacts some set of concurrent
// writers; the exchange with each writer is one request + one response
// (diffs).  CommStats records one ExchangeRecord per writer contacted and
// one FaultRecord per fault.  WordTracker credits exchanges with useful
// words as delivered words are read.  Finalize() then computes the
// breakdowns shown in Figures 1–3:
//
//   * useful / useless messages  (a message is useless iff the exchange
//     delivered no word that was read before being overwritten),
//   * useful data / piggybacked useless data (useless words on useful
//     messages) / useless data on useless messages,
//   * the false sharing signature: histogram over faults of the number of
//     concurrent writers contacted, split useful/useless per exchange.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "mem/types.h"

namespace dsm {

// Finalized communication breakdown for one run (or one node).
struct CommBreakdown {
  // Message counts.  Each exchange contributes 2 messages (request +
  // response), classified together, matching the paper's examples ("the
  // messages exchanged with p2 are useless messages").
  std::uint64_t useful_messages = 0;
  std::uint64_t useless_messages = 0;
  std::uint64_t sync_messages = 0;  // barrier/lock traffic (always useful)

  // Data volumes, in bytes of diff payload words.
  std::uint64_t useful_data_bytes = 0;
  std::uint64_t piggyback_useless_bytes = 0;  // useless words on useful msgs
  std::uint64_t useless_msg_data_bytes = 0;   // words on useless msgs
  // Independent tally of diff payload: incremented by the protocol once
  // per APPLIED diff (Node::FetchUnits' apply loop), a different code path
  // from the per-exchange word bookkeeping that Finalize() classifies.
  // Invariant: total_data_bytes() == delivered_data_bytes — every applied
  // word must be accounted for by the useful/useless split, so a missed
  // AddDelivered, a double-count across merged chains, or an over-credit
  // breaks the equality.
  std::uint64_t delivered_data_bytes = 0;

  // Home-based LRC traffic (BackendKind::kHlrc, DESIGN.md §7).  Fetch
  // exchanges (home → reader) go through the regular exchange machinery,
  // so their words land in the useful/useless split and in
  // delivered_data_bytes — the accounting invariant covers them
  // unchanged.  Flush traffic (writer → home) moves data nobody has read
  // yet; it is outside the paper's reader-side taxonomy and is tallied
  // separately here (and in NetStats under the kHome* kinds).  Counters
  // cover remote homes only: self-homed units flush and fetch locally,
  // with no messages.
  std::uint64_t home_flush_messages = 0;  // flush + ack, 2 per home contacted
  std::uint64_t home_flushes = 0;         // units flushed to a remote home
  std::uint64_t home_flush_bytes = 0;     // diff payload absorbed by homes
  std::uint64_t home_fetches = 0;         // whole units fetched from homes
  std::uint64_t home_fetch_bytes = 0;     // full-unit payload delivered

  // Crash-recovery traffic (DESIGN.md §9).  Like home-flush traffic, the
  // rebuild data is outside the paper's reader-side useful/useless
  // taxonomy (the victim re-reads everything; classifying the copies
  // would poison the false-sharing signature) and outside
  // delivered_data_bytes, whose invariant covers fault-path deliveries
  // only.  All zero — and skipped by ToString and the bench fingerprint —
  // unless a FaultPlan actually fired.
  std::uint64_t recoveries = 0;             // crash-recovery episodes
  std::uint64_t recovery_messages = 0;      // requests + replies, all sources
  std::uint64_t recovery_data_bytes = 0;    // checkpoint/home/log payload
  std::uint64_t recovery_units = 0;         // units rebuilt into the image
  std::uint64_t recovery_records = 0;       // archive records replayed (LRC)
  // HLRC home-crash retransmits: an exchange addressed to a crashed,
  // re-homed unit times out and is re-sent to the new home.  Each node
  // pays this once per re-home batch, at its first home contact after the
  // batch takes effect (it learns the new map from the timeout).  Like
  // the other recovery counters: zero, fingerprint-skipped, and outside
  // the reader-side taxonomy unless a schedule actually fired.
  std::uint64_t recovery_retransmits = 0;       // timed-out, re-sent requests
  std::uint64_t recovery_retransmit_bytes = 0;  // request payload re-sent

  // False sharing signature (Figure 3): bucket k = faults that contacted k
  // concurrent writers; per bucket, exchanges split useful/useless.
  SplitHistogram signature;

  // Protocol event counters.
  std::uint64_t read_faults = 0;
  std::uint64_t write_faults = 0;
  std::uint64_t silent_validations = 0;  // updated-invalid unit validated
  std::uint64_t twins_created = 0;
  std::uint64_t diffs_created = 0;
  std::uint64_t diffs_applied = 0;
  std::uint64_t units_invalidated = 0;
  std::uint64_t group_prefetch_units = 0;  // units fetched via page groups

  // Sparse-clock wire accounting (DESIGN.md §8), telemetry only: bytes
  // the per-notice interval clocks would occupy under the run-length
  // encoding versus the dense 4-bytes-per-proc form, summed over every
  // notice this node consumed (barrier collection and lock grants).  The
  // modelled 16-byte notice header abstracts the clock, so neither
  // counter enters total_data_bytes() or the modelled fingerprint; the
  // ratio is the scaling evidence — on low-sharing programs the sparse
  // bytes track the writer-frontier count while the dense bytes track
  // num_procs.
  std::uint64_t notice_clock_bytes = 0;
  std::uint64_t notice_clock_bytes_dense = 0;

  std::uint64_t total_messages() const {
    return useful_messages + useless_messages + sync_messages +
           home_flush_messages + recovery_messages + recovery_retransmits;
  }
  std::uint64_t total_data_bytes() const {
    return useful_data_bytes + piggyback_useless_bytes +
           useless_msg_data_bytes;
  }
  std::uint64_t useless_data_bytes() const {
    return piggyback_useless_bytes + useless_msg_data_bytes;
  }

  void Merge(const CommBreakdown& other);
  std::string ToString() const;
};

// Per-node, single-threaded statistics collector.
class CommStats {
 public:
  CommStats() = default;

  // Open a new exchange with `writer`; returns its id, which WordTracker
  // uses to tag delivered words.
  std::uint32_t NewExchange(ProcId writer);

  void AddDelivered(std::uint32_t exchange_id, std::uint32_t words,
                    std::uint32_t payload_bytes);
  // One delivered word was read before being overwritten.
  void Credit(std::uint32_t exchange_id) {
    exchanges_[exchange_id].useful_words += 1;
  }

  // A fault contacted `num_writers` distinct writers whose exchanges are
  // [first_exchange, first_exchange + num_writers).
  void RecordFault(int num_writers, std::uint32_t first_exchange);

  std::uint32_t num_exchanges() const {
    return static_cast<std::uint32_t>(exchanges_.size());
  }

  // Event counters, incremented by the protocol.
  CommBreakdown& counters() { return counters_; }

  // Classify all exchanges and produce the breakdown.  Words still fresh
  // (never read) count as useless.  Idempotent snapshot.
  CommBreakdown Finalize() const;

 private:
  struct ExchangeRecord {
    ProcId writer = -1;
    std::uint32_t delivered_words = 0;
    std::uint32_t useful_words = 0;
    std::uint32_t payload_bytes = 0;
  };
  struct FaultRecord {
    std::uint32_t first_exchange = 0;
    std::uint16_t num_writers = 0;
  };

  std::vector<ExchangeRecord> exchanges_;
  std::vector<FaultRecord> faults_;
  CommBreakdown counters_;  // event counters + sync messages live here
};

}  // namespace dsm

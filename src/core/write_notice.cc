#include "core/write_notice.h"

#include <algorithm>

#include "common/check.h"

namespace dsm {

const Diff* IntervalRecord::DiffFor(UnitId unit) const {
  const int i = IndexOf(unit);
  return i < 0 ? nullptr : &diffs[static_cast<std::size_t>(i)];
}

int IntervalRecord::IndexOf(UnitId unit) const {
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i] == unit) return static_cast<int>(i);
  }
  return -1;
}

const IntervalRecord* IntervalArchive::Append(IntervalRecord record) {
  std::lock_guard lock(mutex_);
  DSM_CHECK(records_.empty() || records_.back().seq < record.seq)
      << "archive appends must be in increasing seq order";
  DSM_CHECK_EQ(record.units.size(), record.diffs.size());
  record.diffed =
      std::make_unique<std::atomic<std::uint32_t>[]>(record.units.size());
  records_.push_back(std::move(record));
  return &records_.back();
}

const IntervalRecord* IntervalArchive::Find(Seq seq) const {
  std::lock_guard lock(mutex_);
  auto it = std::lower_bound(
      records_.begin(), records_.end(), seq,
      [](const IntervalRecord& r, Seq s) { return r.seq < s; });
  if (it == records_.end() || it->seq != seq) return nullptr;
  return &*it;
}

std::vector<const IntervalRecord*> IntervalArchive::Range(Seq from,
                                                          Seq to) const {
  std::lock_guard lock(mutex_);
  std::vector<const IntervalRecord*> out;
  auto it = std::upper_bound(
      records_.begin(), records_.end(), from,
      [](Seq s, const IntervalRecord& r) { return s < r.seq; });
  for (; it != records_.end() && it->seq <= to; ++it) out.push_back(&*it);
  return out;
}

std::size_t IntervalArchive::size() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

std::size_t IntervalArchive::TotalDiffBytes() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& r : records_) {
    for (const auto& d : r.diffs) total += d.EncodedBytes();
  }
  return total;
}

}  // namespace dsm

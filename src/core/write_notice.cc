#include "core/write_notice.h"

#include <algorithm>

#include "common/check.h"

namespace dsm {

const Diff* IntervalRecord::DiffFor(UnitId unit) const {
  const int i = IndexOf(unit);
  return i < 0 ? nullptr : &diffs[static_cast<std::size_t>(i)];
}

int IntervalRecord::IndexOf(UnitId unit) const {
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i] == unit) return static_cast<int>(i);
  }
  return -1;
}

std::size_t IntervalRecord::RetainedBytes() const {
  std::size_t bytes = NoticeBytes();
  for (const Diff& d : diffs) bytes += d.EncodedBytes();
  return bytes;
}

void ArchiveTelemetry::OnAppend(std::uint64_t bytes) {
  const std::uint64_t live =
      live_intervals.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = peak_live_intervals.load(std::memory_order_relaxed);
  while (live > peak && !peak_live_intervals.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  const std::uint64_t total =
      live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak_b = peak_live_bytes.load(std::memory_order_relaxed);
  while (total > peak_b && !peak_live_bytes.compare_exchange_weak(
                               peak_b, total, std::memory_order_relaxed)) {
  }
}

void ArchiveTelemetry::OnReclaim(std::uint64_t records, std::uint64_t bytes) {
  live_intervals.fetch_sub(records, std::memory_order_relaxed);
  live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  reclaimed_intervals.fetch_add(records, std::memory_order_relaxed);
}

const IntervalRecord* IntervalArchive::Append(IntervalRecord record) {
  std::lock_guard lock(mutex_);
  DSM_CHECK(records_.empty() || records_.back()->seq < record.seq)
      << "archive appends must be in increasing seq order";
  DSM_CHECK_EQ(record.units.size(), record.diffs.size());
  // Archived records are immutable and shared; compact the close-time
  // clock to its run-length form (DESIGN.md §8).
  record.vc.Freeze();
  record.diffed.reset(
      new std::atomic<std::uint64_t>[record.units.size()]());
  if (telemetry_ != nullptr) telemetry_->OnAppend(record.RetainedBytes());
  records_.push_back(std::make_shared<IntervalRecord>(std::move(record)));
  return records_.back().get();
}

const IntervalRecord* IntervalArchive::Find(Seq seq) const {
  std::lock_guard lock(mutex_);
  auto it = std::lower_bound(
      records_.begin(), records_.end(), seq,
      [](const std::shared_ptr<IntervalRecord>& r, Seq s) {
        return r->seq < s;
      });
  if (it == records_.end() || (*it)->seq != seq) return nullptr;
  return it->get();
}

std::vector<const IntervalRecord*> IntervalArchive::Range(Seq from,
                                                          Seq to) const {
  std::lock_guard lock(mutex_);
  std::vector<const IntervalRecord*> out;
  auto it = std::upper_bound(
      records_.begin(), records_.end(), from,
      [](Seq s, const std::shared_ptr<IntervalRecord>& r) {
        return s < r->seq;
      });
  for (; it != records_.end() && (*it)->seq <= to; ++it) {
    out.push_back(it->get());
  }
  return out;
}

std::vector<std::shared_ptr<const IntervalRecord>>
IntervalArchive::RangeShared(Seq from, Seq to) const {
  std::lock_guard lock(mutex_);
  std::vector<std::shared_ptr<const IntervalRecord>> out;
  auto it = std::upper_bound(
      records_.begin(), records_.end(), from,
      [](Seq s, const std::shared_ptr<IntervalRecord>& r) {
        return s < r->seq;
      });
  for (; it != records_.end() && (*it)->seq <= to; ++it) {
    out.push_back(*it);
  }
  return out;
}

std::size_t IntervalArchive::PruneThrough(Seq through) {
  std::lock_guard lock(mutex_);
  std::size_t reclaimed = 0;
  std::uint64_t bytes = 0;
  while (!records_.empty() && records_.front()->seq <= through) {
    bytes += records_.front()->RetainedBytes();
    records_.pop_front();
    ++reclaimed;
  }
  if (telemetry_ != nullptr && reclaimed > 0) {
    telemetry_->OnReclaim(reclaimed, bytes);
  }
  return reclaimed;
}

Seq IntervalArchive::min_retained_seq() const {
  std::lock_guard lock(mutex_);
  return records_.empty() ? 0 : records_.front()->seq;
}

std::size_t IntervalArchive::CountThrough(Seq through) const {
  std::lock_guard lock(mutex_);
  auto it = std::upper_bound(
      records_.begin(), records_.end(), through,
      [](Seq s, const std::shared_ptr<IntervalRecord>& r) {
        return s < r->seq;
      });
  return static_cast<std::size_t>(it - records_.begin());
}

std::size_t IntervalArchive::size() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

std::size_t IntervalArchive::TotalDiffBytes() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& r : records_) {
    for (const auto& d : r->diffs) total += d.EncodedBytes();
  }
  return total;
}

}  // namespace dsm

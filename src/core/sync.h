// Synchronization services: barrier rendezvous and queued locks.
//
// These are *host-level* rendezvous mechanisms; all protocol semantics
// (interval closing, write-notice exchange, invalidation) and all modelled
// costs are applied by the calling Node (core/protocol.h).  The services
// only move vector clocks, virtual times, and payload sizes between
// threads, mirroring TreadMarks' centralized barrier manager and
// distributed queued locks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "core/vector_clock.h"
#include "sim/virtual_clock.h"

namespace dsm {

// Centralized barrier manager (proc 0 is the manager, as in TreadMarks).
class BarrierService {
 public:
  explicit BarrierService(int num_procs);

  struct Result {
    VectorClock global_vc;      // max over all arrivals
    VirtualNanos base_time;     // modelled manager release time
    std::size_t max_arrival_bytes = 0;
    // Componentwise minimum over the arrivers' consumed-notice clocks
    // (each arriver's own component excluded — a node never consumes its
    // own notices).  All-max when no arriver contributed one.  The HLRC
    // backend prunes each notice log to this floor in O(num_procs)
    // instead of rescanning every node's consumption vector.
    VectorClock min_seen;
    // Agreed barrier coordinator for this generation (DESIGN.md §9).
    // Proc 0 on every failure-free barrier; the lowest surviving rank on
    // a barrier whose fault schedule kills proc 0.  Every arriver derives
    // it locally from the armed schedule and passes it in; the service
    // cross-checks that all arrivals name the same rank.
    ProcId coordinator = 0;
  };

  // Blocks until all processors arrive.  `arrival_time` is the caller's
  // virtual clock at arrival and `arrival_bytes` the write-notice payload
  // it ships to the manager.  The last arriver computes the result.
  // The modelled cost formula lives in the caller (Node::Barrier), which
  // combines this result with the network/cost models.  `seen`, if
  // non-null, is folded into Result::min_seen.  `coordinator` is the
  // caller's view of this barrier's coordinator; all arrivers of one
  // generation must agree (checked), and the agreed value is echoed in
  // Result::coordinator.
  Result Arrive(ProcId proc, const VectorClock& vc, VirtualNanos arrival_time,
                std::size_t arrival_bytes,
                const VectorClock* seen = nullptr, ProcId coordinator = 0);

  // Pure host-level rendezvous with no clock, vc, or statistics effects.
  // The protocol calls it right after Arrive to extend the barrier into a
  // window in which every processor is known to be idle, so cross-node
  // state can be read and reset deterministically (no application faults
  // are in flight anywhere).  Two things ride this window: the
  // lazy-diffing cost-model flag drain, and the barrier-epoch archive GC
  // (DESIGN.md §6), which proc 0 executes before its own rendezvous
  // arrival — the wait here is what keeps every other node from faulting
  // into a half-collected archive.  Does not count as a completed
  // barrier.
  void Rendezvous();

  std::uint64_t barriers_completed() const;

 private:
  const int num_procs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  int rendezvous_arrived_ = 0;
  std::uint64_t rendezvous_generation_ = 0;
  // Merge accumulator for the generation in flight; reset with the other
  // per-generation state once the last arriver snapshots it, so a future
  // checkpoint/restore or clock-reset path cannot leak stale maxima into
  // the next generation's global clock.
  VectorClock pending_vc_;
  VectorClock min_seen_;  // accumulator for Result::min_seen
  VirtualNanos max_arrival_ = 0;
  std::size_t max_bytes_ = 0;
  ProcId pending_coordinator_ = -1;  // first arriver's view; -1 = unset
  Result current_;
};

// FIFO-queued DSM locks with last-owner caching: re-acquiring a lock that
// no other processor touched since the caller's last release is a local
// operation (TreadMarks keeps lock tokens at the last owner).
class LockService {
 public:
  LockService(int num_locks, int num_procs);

  struct Grant {
    VectorClock release_vc;      // releaser's clock at release
    VirtualNanos release_time;   // releaser's virtual time at release
    bool cached;                 // true → caller already owned the token
    // Position of this token transfer in the service-wide transfer order
    // (0 for cached grants).  Strictly increasing along every individual
    // lock's hand-off chain, so the protocol can derive lock-chain
    // sub-phases for the lazy-diffing cost model from it (see
    // IntervalRecord::PaysForStamp).  The order of *unrelated* transfers
    // is host-scheduling dependent — meaningful only for lock programs,
    // which are not bit-reproducible run to run anyway.
    std::uint64_t chain_pos = 0;
  };

  // Blocks until the lock is granted (FIFO among waiters).
  Grant Acquire(int lock_id, ProcId proc);

  void Release(int lock_id, ProcId proc, const VectorClock& vc,
               VirtualNanos time);

  // Crash sweep (DESIGN.md §9): remove every trace of `proc` as a live
  // participant, deterministically.  For each lock: drop proc from the
  // grant queue (a crashed waiter never arrives; remaining waiters keep
  // their FIFO order and the front is re-notified), force-release the
  // lock if proc held it (publishing `vc`/`time` exactly as proc's own
  // release would have), and invalidate proc's cached token (owner
  // becomes -1, so proc's next acquire is a real transfer — the token
  // died with the node).  After the sweep, a Release() by proc that finds
  // the lock not held by proc is tolerated as an orphan no-op: recovery
  // is transparent (the app thread continues from the crash point), so a
  // crash inside a critical section flows into a release of a lock this
  // sweep already force-released.  Non-swept processors keep today's
  // strict double-release check.
  void OnCrash(ProcId proc, const VectorClock& vc, VirtualNanos time);

  std::uint64_t transfers(int lock_id) const;

 private:
  // One CV per lock: a release wakes only that lock's waiters instead of
  // thundering every waiter of every lock in the run (Water/TSP hold
  // thousands of molecule/queue locks concurrently).
  struct LockState {
    bool held = false;
    ProcId owner = -1;  // last holder (token location)
    std::deque<ProcId> queue;
    VectorClock release_vc;
    VirtualNanos release_time = 0;
    std::uint64_t transfers = 0;
    std::condition_variable cv;
  };

  const int num_procs_;
  mutable std::mutex mutex_;
  std::uint64_t total_transfers_ = 0;  // service-wide transfer order
  // deque: LockState holds a condition_variable (immovable); deque
  // constructs elements in place and never relocates them.
  std::deque<LockState> locks_;
  // Processors OnCrash has swept: their orphan releases are tolerated.
  std::vector<std::uint8_t> crash_swept_;
};

}  // namespace dsm

#include "core/protocol.h"

#include <algorithm>

namespace dsm {

const char* RuntimeConfig::UnitLabel() const {
  if (aggregation == AggregationMode::kDynamic) return "Dyn";
  switch (pages_per_unit) {
    case 1:
      return "4K";
    case 2:
      return "8K";
    case 4:
      return "16K";
    case 8:
      return "32K";
    default:
      return "static";
  }
}

const char* RuntimeConfig::BackendLabel() const {
  return backend == BackendKind::kReference ? "Ref" : "LRC";
}

SharedState::SharedState(const RuntimeConfig& cfg)
    : config(cfg),
      heap(cfg.heap_bytes, cfg.unit_bytes()),
      net(cfg.net),
      barrier(std::make_unique<BarrierService>(cfg.num_procs)),
      locks(std::make_unique<LockService>(cfg.num_locks, cfg.num_procs)) {
  DSM_CHECK_GE(cfg.num_procs, 1);
  if (cfg.backend == BackendKind::kReference) {
    reference_image.reset(new std::byte[heap.heap_bytes()]());
  }
  archives.reserve(cfg.num_procs);
  for (int p = 0; p < cfg.num_procs; ++p) {
    archives.push_back(std::make_unique<IntervalArchive>());
    archives.back()->set_telemetry(&archive_telemetry);
  }
  canonical =
      std::make_unique<CanonicalStore>(heap.num_units(), heap.unit_bytes());
}

Node::Node(ProcId id, SharedState& shared)
    : id_(id),
      shared_(shared),
      unit_bytes_(shared.heap.unit_bytes()),
      unit_shift_(shared.heap.unit_shift()),
      protocol_enabled_(shared.config.num_procs > 1 &&
                        shared.config.backend == BackendKind::kLrc),
      shared_access_cost_(shared.config.cost.shared_access),
      image_(shared.reference_image
                 ? nullptr
                 : new std::byte[shared.heap.heap_bytes()]()),
      data_(shared.reference_image ? shared.reference_image.get()
                                   : image_.get()),
      table_(shared.heap.num_units(), unit_bytes_),
      tracker_(shared.heap.num_units(), unit_bytes_ / kWordBytes),
      pending_(shared.heap.num_units()),
      flattened_(shared.heap.num_units()),
      retwin_cheap_(shared.heap.num_units(), 0),
      diff_requested_(shared.heap.num_units()),
      diff_request_seen_(shared.heap.num_units(), 0),
      aggregator_(shared.heap.num_units(), shared.config.max_group_pages),
      vc_(shared.config.num_procs),
      notices_seen_(shared.config.num_procs),
      needs_by_writer_(shared.config.num_procs) {}

void Node::ReadBytesSlow(GlobalAddr addr, void* out, std::size_t bytes) {
  auto* dst = static_cast<std::byte*>(out);
  const std::size_t total_words = bytes / kWordBytes;
  while (bytes > 0) {
    const UnitId unit = static_cast<UnitId>(addr >> unit_shift_);
    const std::size_t offset_in_unit = addr & (unit_bytes_ - 1);
    const std::size_t chunk = std::min(bytes, unit_bytes_ - offset_in_unit);
    if (protocol_enabled_) {
      if (table_.NeedsFaultOnRead(unit)) ReadFault(unit);
      tracker_.OnRead(unit,
                      static_cast<std::uint32_t>(offset_in_unit / kWordBytes),
                      static_cast<std::uint32_t>(chunk / kWordBytes),
                      [this](std::uint32_t msg) { comm_stats_.Credit(msg); });
    }
    std::memcpy(dst, data_ + addr, chunk);
    addr += chunk;
    dst += chunk;
    bytes -= chunk;
  }
  // One batched update for the whole access (integer sums are exact, so
  // the modelled time matches the former per-chunk advances bit for bit).
  clock_.Advance(static_cast<VirtualNanos>(total_words) *
                 shared_access_cost_);
}

void Node::WriteBytesSlow(GlobalAddr addr, const void* in,
                          std::size_t bytes) {
  auto* src = static_cast<const std::byte*>(in);
  const std::size_t total_words = bytes / kWordBytes;
  while (bytes > 0) {
    const UnitId unit = static_cast<UnitId>(addr >> unit_shift_);
    const std::size_t offset_in_unit = addr & (unit_bytes_ - 1);
    const std::size_t chunk = std::min(bytes, unit_bytes_ - offset_in_unit);
    if (protocol_enabled_) {
      if (table_.NeedsFaultOnWrite(unit)) WriteFault(unit);
      tracker_.OnWrite(unit,
                       static_cast<std::uint32_t>(offset_in_unit / kWordBytes),
                       static_cast<std::uint32_t>(chunk / kWordBytes));
    }
    std::memcpy(data_ + addr, src, chunk);
    addr += chunk;
    src += chunk;
    bytes -= chunk;
  }
  clock_.Advance(static_cast<VirtualNanos>(total_words) *
                 shared_access_cost_);
}

void Node::ReadFault(UnitId unit) {
  const CostModel& cost = shared_.config.cost;
  comm_stats_.counters().read_faults += 1;
  clock_.Advance(cost.fault_overhead);
  ValidateUnit(unit);
}

void Node::WriteFault(UnitId unit) {
  const CostModel& cost = shared_.config.cost;
  const UnitState s = table_.state(unit);
  // Lazy-diffing model: after a release the twin persists and the page
  // stays writable at the writer, so re-dirtying it is free unless some
  // peer requested a diff in an earlier barrier phase (forcing diff
  // creation, twin discard, and re-protection at the writer).  Only the
  // barrier-drained view is consulted — never the live request flags —
  // so the decision does not depend on host thread timing.
  const bool cheap = s == UnitState::kReadValid &&
                     retwin_cheap_[unit] != 0 &&
                     diff_request_seen_[unit] == 0;
  if (!cheap) {
    comm_stats_.counters().write_faults += 1;
    clock_.Advance(cost.fault_overhead);
  }
  if (s == UnitState::kInvalid || s == UnitState::kUpdatedInvalid) {
    ValidateUnit(unit);
  }
  if (table_.state(unit) == UnitState::kReadValid) TwinUnit(unit, cheap);
}

void Node::TwinUnit(UnitId unit, bool cheap) {
  const CostModel& cost = shared_.config.cost;
  table_.MakeTwin(unit, UnitSpan(unit));
  table_.RecordDirty(unit);
  table_.set_state(unit, UnitState::kDirty);
  comm_stats_.counters().twins_created += 1;
  retwin_cheap_[unit] = 0;
  // A fresh twin settles all drained requests; live (same-phase) request
  // flags are left for the next barrier drain, so a request concurrent
  // with this interval makes the NEXT re-twin expensive regardless of
  // which host thread won the race.
  diff_request_seen_[unit] = 0;
  if (!cheap) clock_.Advance(cost.TwinCost(unit_bytes_) + cost.mprotect_op);
}

void Node::ValidateUnit(UnitId unit) {
  const CostModel& cost = shared_.config.cost;
  const bool dynamic =
      shared_.config.aggregation == AggregationMode::kDynamic;
  if (dynamic) aggregator_.RecordAccess(unit);

  if (table_.state(unit) == UnitState::kUpdatedInvalid) {
    // Updates already arrived with the page group; just unprotect.
    comm_stats_.counters().silent_validations += 1;
    table_.set_state(unit, table_.HasTwin(unit) ? UnitState::kDirty
                                                : UnitState::kReadValid);
    clock_.Advance(cost.mprotect_op);
    return;
  }

  DSM_CHECK(!pending_[unit].empty() || !flattened_[unit].empty())
      << "invalid unit " << unit << " with no pending write notices";

  retwin_cheap_[unit] = 0;
  std::vector<UnitId>& fetch = fetch_scratch_;
  fetch.clear();
  fetch.push_back(unit);
  if (dynamic) {
    for (UnitId member : aggregator_.GroupOf(unit)) {
      if (member == unit) continue;
      if (table_.state(member) == UnitState::kInvalid &&
          (!pending_[member].empty() || !flattened_[member].empty())) {
        fetch.push_back(member);
      }
    }
  }
  FetchUnits(fetch);

  for (UnitId fetched : fetch) {
    if (fetched == unit) {
      table_.set_state(unit, table_.HasTwin(unit) ? UnitState::kDirty
                                                  : UnitState::kReadValid);
    } else {
      table_.set_state(fetched, UnitState::kUpdatedInvalid);
      aggregator_.NotifyPrefetched(fetched);
      comm_stats_.counters().group_prefetch_units += 1;
    }
  }
  clock_.Advance(cost.mprotect_op);
}

void Node::FetchUnits(const std::vector<UnitId>& units) {
  const CostModel& cost = shared_.config.cost;
  const int nprocs = num_procs();
  const std::size_t words_per_unit = unit_bytes_ / kWordBytes;

  // Gather needed diffs, grouped by writer.  Consecutive intervals of the
  // SAME writer are coalesced into one combined diff when no foreign
  // pending interval is ordered after the chain's head without also being
  // ordered after its tail — in that case no reader could ever observe the
  // intermediate versions, so the server ships the union (this is the
  // server-side answer to TreadMarks' diff accumulation problem; without
  // it, a page repeatedly rewritten by one processor ships its entire
  // modification history on first fetch).
  //
  // Intervals reclaimed by archive GC arrive pre-coalesced as
  // FlattenedChains — the exact chains this loop would have built, frozen
  // at GC time with live records from later epochs still absorbable into
  // the last chain of each writer (every live record happened-after every
  // reclaimed one, so the absorption check degenerates to the foreign
  // live records plus the chain's `blocked` flag).
  for (auto& v : needs_by_writer_) v.clear();
  std::deque<Diff>& merged_storage = merged_scratch_;
  merged_storage.clear();
  absorbed_scratch_.clear();
  for (UnitId unit : units) {
    // Resolve all live pending notices of this unit first (needed for the
    // foreign-interval ordering checks).
    std::vector<ResolvedDiff>& all = resolved_scratch_;
    all.clear();
    all.reserve(pending_[unit].size());
    for (const PendingInterval& pi : pending_[unit]) {
      DSM_CHECK_NE(pi.proc, id_);
      const IntervalRecord* rec = shared_.archives[pi.proc]->Find(pi.seq);
      DSM_CHECK(rec != nullptr)
          << "missing interval (" << pi.proc << "," << pi.seq << ")";
      const int di = rec->IndexOf(unit);
      DSM_CHECK_GE(di, 0) << "interval (" << pi.proc << "," << pi.seq
                          << ") has no diff for unit " << unit;
      all.push_back({rec, &rec->diffs[static_cast<std::size_t>(di)],
                     rec->PaysForDiff(di, sync_phase_)});
    }
    std::vector<FlattenedChain>& flat = flattened_[unit];
    for (ProcId w = 0; w < nprocs; ++w) {
      // This writer's intervals, in increasing seq order (pending notices
      // arrive in acquire order, which respects per-writer seq order);
      // flattened chains always precede live records.
      std::vector<const ResolvedDiff*>& chain_input = chain_scratch_;
      chain_input.clear();
      for (const ResolvedDiff& r : all) {
        if (r.rec->proc == w) chain_input.push_back(&r);
      }
      FlattenedChain* open_flat = nullptr;  // last flattened chain of w
      for (FlattenedChain& c : flat) {
        if (c.writer == w) open_flat = &c;
      }
      if (open_flat == nullptr && chain_input.empty()) continue;

      // One server-side twin scan per (writer, unit) with any interval
      // this requester pays to materialize; everything materialized in an
      // earlier phase is served from the writer's diff cache.  Reclaimed
      // intervals keep their first-requester stamps alive in the chains.
      bool needs_scan = false;
      for (FlattenedChain& c : flat) {
        if (c.writer != w) continue;
        for (const StampRef& s : c.stamps) {
          if (IntervalRecord::PaysForStamp(s.stamps[s.index], sync_phase_)) {
            needs_scan = true;
          }
        }
      }
      for (const ResolvedDiff* r : chain_input) {
        if (r->pays_for_scan) needs_scan = true;
      }
      shared_.nodes[w]->diff_requested_[unit].store(
          1, std::memory_order_relaxed);

      auto push_need = [&](NeedEntry e) {
        e.unit = unit;
        e.writer = w;
        e.needs_scan = needs_scan;
        needs_scan = false;  // at most one scan per (writer, unit)
        needs_by_writer_[w].push_back(e);
      };
      // Emit every flattened chain of w but the last; the last may still
      // absorb live records into its tail.
      for (FlattenedChain& c : flat) {
        if (c.writer != w || &c == open_flat) continue;
        NeedEntry e{};
        e.last_seq = c.last_seq;
        e.last_vc = &c.last_vc;
        e.flat = &c;
        push_need(e);
      }
      std::uint32_t absorbed_begin =
          static_cast<std::uint32_t>(absorbed_scratch_.size());
      auto flush_flat = [&] {
        NeedEntry e{};
        e.last_seq = open_flat->last_seq;
        e.last_vc = &open_flat->last_vc;
        e.flat = open_flat;
        e.absorbed_begin = absorbed_begin;
        e.absorbed_count =
            static_cast<std::uint32_t>(absorbed_scratch_.size()) -
            absorbed_begin;
        push_need(e);
        open_flat = nullptr;
      };

      // May we absorb r into a chain whose head is (w, first_seq)?  Every
      // foreign interval must be either not-after the head or after the
      // candidate tail.  (Foreign reclaimed intervals ordered after a
      // flattened head are recorded in its `blocked` flag; they can never
      // be after a live tail.)
      auto may_absorb = [&](Seq first_seq, const IntervalRecord& r) {
        for (const ResolvedDiff& q : all) {
          if (q.rec->proc == w) continue;
          if (q.rec->vc.Covers(w, first_seq) &&
              !r.HappenedBefore(*q.rec)) {
            return false;
          }
        }
        return true;
      };

      const IntervalRecord* chain_first = nullptr;
      const Diff* chain_diff = nullptr;
      const IntervalRecord* chain_last = nullptr;
      auto flush_live = [&] {
        NeedEntry e{};
        e.last_seq = chain_last->seq;
        e.last_vc = &chain_last->vc;
        e.diff = chain_diff;
        push_need(e);
        chain_diff = nullptr;
      };
      for (const ResolvedDiff* r : chain_input) {
        if (open_flat != nullptr) {
          if (!open_flat->blocked &&
              may_absorb(open_flat->first_seq, *r->rec)) {
            open_flat->runs =
                Diff::MergeRuns(open_flat->runs, r->diff->runs());
            open_flat->payload_words = Diff::RunWords(open_flat->runs);
            open_flat->last_seq = r->rec->seq;
            open_flat->last_vc = r->rec->vc;
            absorbed_scratch_.push_back(r->diff);
            continue;
          }
          flush_flat();
        }
        if (chain_diff == nullptr) {
          chain_first = r->rec;
          chain_last = r->rec;
          chain_diff = r->diff;
          continue;
        }
        if (may_absorb(chain_first->seq, *r->rec)) {
          merged_storage.push_back(
              Diff::Merge(*chain_diff, *r->diff, words_per_unit));
          chain_diff = &merged_storage.back();
          chain_last = r->rec;
        } else {
          flush_live();
          chain_first = r->rec;
          chain_last = r->rec;
          chain_diff = r->diff;
        }
      }
      if (open_flat != nullptr) flush_flat();
      if (chain_diff != nullptr) flush_live();
    }
  }

  // One request/response exchange per writer; writers answer in parallel
  // (paper §4: "those processors can return the diffs in parallel rather
  // than in sequence").
  const std::uint32_t first_exchange = comm_stats_.num_exchanges();
  int num_writers = 0;
  VirtualNanos slowest_exchange = 0;
  for (ProcId w = 0; w < nprocs; ++w) {
    auto& needs = needs_by_writer_[w];
    if (needs.empty()) continue;
    ++num_writers;
    const std::uint32_t ex = comm_stats_.NewExchange(w);
    std::size_t request_bytes = 16;
    std::size_t response_bytes = 0;
    std::uint32_t delivered_words = 0;
    UnitId last_unit_in_req = ~UnitId{0};
    for (auto& need : needs) {
      need.exchange_id = ex;
      if (need.unit != last_unit_in_req) {
        request_bytes += 8;  // unit id + timestamp bound per unit requested
        last_unit_in_req = need.unit;
      }
      response_bytes += need.EncodedBytes();
      delivered_words += static_cast<std::uint32_t>(need.PayloadWords());
    }
    comm_stats_.AddDelivered(
        ex, delivered_words,
        static_cast<std::uint32_t>(delivered_words * kWordBytes));
    net_stats_.Record(MessageKind::kDiffRequest, request_bytes);
    net_stats_.Record(MessageKind::kDiffResponse, response_bytes);
    // Server-side cost: request handling plus lazy diff creation — one
    // twin scan per (unit, writer) whose diffs were not yet materialized.
    VirtualNanos server = cost.request_service_overhead;
    for (const auto& need : needs) {
      if (need.needs_scan) server += cost.DiffCreateCost(unit_bytes_);
    }
    const VirtualNanos t =
        shared_.net.RoundTripTime(request_bytes, response_bytes) + server;
    slowest_exchange = std::max(slowest_exchange, t);
  }
  DSM_CHECK_GT(num_writers, 0);
  clock_.Advance(slowest_exchange);
  comm_stats_.RecordFault(num_writers, first_exchange);

  // Apply diffs per unit, in happens-before order (ordered intervals may
  // overlap words, e.g. migratory data under locks; concurrent intervals
  // touch disjoint words in race-free programs).
  const bool track = shared_.config.track_usage;
  std::vector<NeedEntry>& for_unit = apply_scratch_;
  for (UnitId unit : units) {
    for_unit.clear();
    for (ProcId w = 0; w < nprocs; ++w) {
      for (const auto& need : needs_by_writer_[w]) {
        if (need.unit == unit) for_unit.push_back(need);
      }
    }
    // Topological order by selection: repeatedly emit an entry with no
    // remaining predecessor (the partial order is acyclic).
    for (std::size_t done = 0; done < for_unit.size(); ++done) {
      std::size_t pick = done;
      for (std::size_t i = done; i < for_unit.size(); ++i) {
        bool has_predecessor = false;
        for (std::size_t j = done; j < for_unit.size(); ++j) {
          if (i != j && for_unit[i].last_vc->Covers(for_unit[j].writer,
                                                    for_unit[j].last_seq)) {
            has_predecessor = true;
            break;
          }
        }
        if (!has_predecessor) {
          pick = i;
          break;
        }
      }
      std::swap(for_unit[done], for_unit[pick]);

      const NeedEntry& need = for_unit[done];
      const bool twinned = table_.HasTwin(unit);
      if (need.flat != nullptr) {
        // Reclaimed chain: its words live in the canonical base.  Copy
        // the chain's runs from the base, then lay any live diffs
        // absorbed into the tail on top (they are newer than everything
        // reclaimed, so they win exactly as in the merged-diff path).
        std::span<const std::byte> base = shared_.canonical->base(unit);
        std::span<std::byte> dst = UnitSpan(unit);
        for (const DiffRun& run : need.flat->runs) {
          const std::size_t off =
              std::size_t{run.word_offset} * kWordBytes;
          const std::size_t len = std::size_t{run.word_count} * kWordBytes;
          std::memcpy(dst.data() + off, base.data() + off, len);
          if (twinned) {
            std::memcpy(table_.twin(unit).data() + off, base.data() + off,
                        len);
          }
        }
        for (std::uint32_t a = 0; a < need.absorbed_count; ++a) {
          const Diff* d = absorbed_scratch_[need.absorbed_begin + a];
          d->Apply(dst);
          if (twinned) d->Apply(table_.twin(unit));
        }
        if (track) {
          for (const DiffRun& run : need.flat->runs) {
            for (std::uint32_t i = 0; i < run.word_count; ++i) {
              tracker_.Deliver(unit, run.word_offset + i, need.exchange_id);
            }
          }
        }
      } else {
        need.diff->Apply(UnitSpan(unit));
        if (twinned) need.diff->Apply(table_.twin(unit));
        if (track) {
          need.diff->ForEachWord([&](std::uint32_t word) {
            tracker_.Deliver(unit, word, need.exchange_id);
          });
        }
      }
      const std::size_t payload_bytes = need.PayloadWords() * kWordBytes;
      comm_stats_.counters().diffs_applied += 1;
      comm_stats_.counters().delivered_data_bytes += payload_bytes;
      clock_.Advance(cost.DiffApplyCost(payload_bytes));
    }
    pending_[unit].clear();
    flattened_[unit].clear();
  }
}

void Node::CloseInterval() {
  if (!protocol_enabled()) return;
  const auto& dirty = table_.dirty_units();
  if (dirty.empty()) return;
  const CostModel& cost = shared_.config.cost;

  IntervalRecord rec;
  rec.proc = id_;
  rec.seq = ++vc_[id_];
  rec.units.reserve(dirty.size());
  rec.diffs.reserve(dirty.size());
  // Diffs are materialized here for bookkeeping (archived records must be
  // immutable), but no cost is charged: TreadMarks diffs lazily, so a
  // release only records write notices.  The diff-creation cost is charged
  // server-side when a peer actually requests the diff (FetchUnits), and a
  // unit re-dirtied before any such request re-twins for free.
  for (UnitId unit : dirty) {
    rec.units.push_back(unit);
    rec.diffs.push_back(Diff::Create(table_.twin(unit), UnitSpan(unit)));
    table_.DropTwin(unit);
    if (table_.state(unit) == UnitState::kDirty) {
      table_.set_state(unit, UnitState::kReadValid);
    }
    retwin_cheap_[unit] = 1;
    comm_stats_.counters().diffs_created += 1;
  }
  (void)cost;
  rec.vc = vc_;
  table_.ClearDirtyList();
  shared_.archives[id_]->Append(std::move(rec));
}

void Node::RunArchiveGc(SharedState& shared, const VectorClock& through) {
  const int nprocs = shared.config.num_procs;
  const std::size_t num_units = shared.heap.num_units();

  // Every interval with seq <= through[proc] is dominated: it closed
  // before the previous barrier completed, so every node has merged its
  // notice (the interval is pending or applied everywhere) and no new
  // reference to it can ever be created.
  bool any = false;
  for (ProcId p = 0; p < nprocs; ++p) {
    const Seq oldest = shared.archives[p]->min_retained_seq();
    if (oldest != 0 && oldest <= through[p]) any = true;
  }
  if (!any) return;

  // Pass 1: convert every node's dominated pending notices into
  // FlattenedChains, mirroring the fault path's chain coalescing exactly
  // (same absorption predicate over the same record set — live records
  // from later epochs can never block a dominated absorption, because
  // they happened-after every dominated interval).  Collect the (record,
  // diff) pairs some node still needed: only those must go into the
  // canonical base — an interval pending nowhere was already applied by
  // every node, and any word of it that a future chain covers is
  // rewritten there by a newer record of that chain.
  struct Resolved {
    const IntervalRecord* rec;
    int di;
  };
  std::vector<std::vector<Resolved>> referenced(num_units);
  std::vector<PendingInterval> live;
  std::vector<Resolved> dom;
  // Per-writer sorted foreign clock entries of the current batch (see the
  // absorption predicate below).
  std::vector<std::vector<Seq>> foreign_vcw(nprocs);
  for (ProcId x = 0; x < nprocs; ++x) {
    Node& node = *shared.nodes[x];
    for (UnitId u = 0; u < num_units; ++u) {
      std::vector<PendingInterval>& pend = node.pending_[u];
      if (pend.empty()) continue;
      live.clear();
      dom.clear();
      for (const PendingInterval& pi : pend) {
        if (pi.seq > through[pi.proc]) {
          live.push_back(pi);
          continue;
        }
        const IntervalRecord* rec = shared.archives[pi.proc]->Find(pi.seq);
        DSM_CHECK(rec != nullptr)
            << "GC: missing interval (" << pi.proc << "," << pi.seq << ")";
        const int di = rec->IndexOf(u);
        DSM_CHECK_GE(di, 0);
        dom.push_back({rec, di});
      }
      if (dom.empty()) continue;
      pend.assign(live.begin(), live.end());
      for (const Resolved& r : dom) referenced[u].push_back(r);

      // The fault path's absorption predicate — "no foreign interval q
      // with chain_first happened-before q but not candidate-tail
      // happened-before q" — only reads q.vc[w] for a chain of writer w:
      // it fails exactly when some foreign q has first_seq <= q.vc[w] <
      // tail_seq.  Batches from lock-heavy programs can hold hundreds of
      // records per unit, so evaluate it by binary search over the
      // sorted foreign clock entries instead of rescanning the batch.
      for (ProcId w = 0; w < nprocs; ++w) foreign_vcw[w].clear();
      for (const Resolved& q : dom) {
        for (ProcId w = 0; w < nprocs; ++w) {
          if (q.rec->proc != w) foreign_vcw[w].push_back(q.rec->vc[w]);
        }
      }
      for (ProcId w = 0; w < nprocs; ++w) {
        std::sort(foreign_vcw[w].begin(), foreign_vcw[w].end());
      }
      auto may_absorb = [&](ProcId w, Seq first_seq, Seq tail_seq) {
        const std::vector<Seq>& v = foreign_vcw[w];
        auto it = std::lower_bound(v.begin(), v.end(), first_seq);
        return it == v.end() || *it >= tail_seq;
      };

      std::vector<FlattenedChain>& flat = node.flattened_[u];
      for (ProcId w = 0; w < nprocs; ++w) {
        // Only the last existing chain of writer w may be extended.
        std::size_t open = flat.size();
        for (std::size_t i = 0; i < flat.size(); ++i) {
          if (flat[i].writer == w) open = i;
        }
        for (const Resolved& r : dom) {
          if (r.rec->proc != w) continue;
          const Diff& diff = r.rec->diffs[static_cast<std::size_t>(r.di)];
          StampRef stamp{r.rec->diffed,
                         static_cast<std::uint32_t>(r.di)};
          if (open != flat.size() && !flat[open].blocked &&
              may_absorb(w, flat[open].first_seq, r.rec->seq)) {
            FlattenedChain& c = flat[open];
            c.runs = Diff::MergeRuns(c.runs, diff.runs());
            c.payload_words = Diff::RunWords(c.runs);
            c.last_seq = r.rec->seq;
            c.last_vc = r.rec->vc;
            c.stamps.push_back(std::move(stamp));
          } else {
            FlattenedChain c;
            c.writer = w;
            c.first_seq = r.rec->seq;
            c.last_seq = r.rec->seq;
            c.last_vc = r.rec->vc;
            c.runs = diff.runs();
            c.payload_words = Diff::RunWords(c.runs);
            c.stamps.push_back(std::move(stamp));
            flat.push_back(std::move(c));
            open = flat.size() - 1;
          }
        }
      }
      // A foreign reclaimed interval ordered after a chain's head means
      // no later interval may ever be absorbed into the chain (the fault
      // path would re-check this against the record, which is about to be
      // reclaimed — freeze the verdict in the flag).
      for (FlattenedChain& c : flat) {
        if (c.blocked) continue;
        const std::vector<Seq>& v = foreign_vcw[c.writer];
        if (!v.empty() && v.back() >= c.first_seq) c.blocked = true;
      }
    }
  }

  // Pass 2: flatten the referenced diffs into the canonical base, per
  // unit in happens-before order, so ordered overwrites land newest-last.
  // Clock sums give a cheap deterministic linear extension: r
  // happened-before q implies q.vc >= r.vc pointwise (covering a seq
  // means the covering clock was merged from the closing writer's clock),
  // strictly so in q's own component, hence sum(r.vc) < sum(q.vc).
  // Concurrent records tie-break by (proc, seq); race-free programs write
  // disjoint words in concurrent intervals, so the tie-break is
  // unobservable there.
  for (UnitId u = 0; u < num_units; ++u) {
    std::vector<Resolved>& refs = referenced[u];
    if (refs.empty()) continue;
    auto vc_sum = [](const IntervalRecord& r) {
      std::uint64_t sum = 0;
      for (int p = 0; p < r.vc.size(); ++p) sum += r.vc[p];
      return sum;
    };
    std::sort(refs.begin(), refs.end(),
              [&](const Resolved& a, const Resolved& b) {
                const std::uint64_t sa = vc_sum(*a.rec);
                const std::uint64_t sb = vc_sum(*b.rec);
                if (sa != sb) return sa < sb;
                return a.rec->proc != b.rec->proc
                           ? a.rec->proc < b.rec->proc
                           : a.rec->seq < b.rec->seq;
              });
    refs.erase(std::unique(refs.begin(), refs.end(),
                           [](const Resolved& a, const Resolved& b) {
                             return a.rec == b.rec;
                           }),
               refs.end());
    std::span<std::byte> base = shared.canonical->Ensure(u);
    for (const Resolved& r : refs) {
      r.rec->diffs[static_cast<std::size_t>(r.di)].Apply(base);
    }
  }

  // Pass 3: reclaim the dominated archive prefixes (FlattenedChains keep
  // the lazy-diffing stamp arrays of their member records alive), then
  // drop canonical bases no chain references any more (pooled, like
  // twins — see CanonicalStore).
  for (ProcId p = 0; p < nprocs; ++p) {
    shared.archives[p]->PruneThrough(through[p]);
  }
  for (UnitId u = 0; u < num_units; ++u) {
    if (!shared.canonical->Has(u)) continue;
    bool needed = false;
    for (ProcId x = 0; x < nprocs && !needed; ++x) {
      needed = !shared.nodes[x]->flattened_[u].empty();
    }
    if (!needed) shared.canonical->Release(u);
  }
  ++shared.gc_passes;
}

void Node::CollectNotices(const VectorClock& target,
                          std::size_t* notice_bytes,
                          std::vector<const IntervalRecord*>& out) const {
  out.clear();
  std::size_t bytes = 0;
  for (ProcId p = 0; p < num_procs(); ++p) {
    if (p == id_) continue;
    if (target[p] <= notices_seen_[p]) continue;
    auto range = shared_.archives[p]->Range(notices_seen_[p], target[p]);
    for (const IntervalRecord* rec : range) {
      bytes += rec->NoticeBytes();
      out.push_back(rec);
    }
  }
  if (notice_bytes != nullptr) *notice_bytes = bytes;
}

void Node::InvalidateFrom(
    const std::vector<const IntervalRecord*>& records) {
  const CostModel& cost = shared_.config.cost;
  for (const IntervalRecord* rec : records) {
    for (UnitId unit : rec->units) {
      pending_[unit].push_back({rec->proc, rec->seq});
      const UnitState s = table_.state(unit);
      if (s != UnitState::kInvalid) {
        table_.set_state(unit, UnitState::kInvalid);
        comm_stats_.counters().units_invalidated += 1;
        clock_.Advance(cost.mprotect_op);
      }
    }
    notices_seen_[rec->proc] = std::max(notices_seen_[rec->proc], rec->seq);
  }
}

std::size_t Node::OutgoingNoticeBytes() {
  std::size_t bytes = 0;
  for (const IntervalRecord* rec :
       shared_.archives[id_]->Range(last_sent_seq_, vc_[id_])) {
    bytes += rec->NoticeBytes();
  }
  last_sent_seq_ = vc_[id_];
  return bytes;
}

void Node::Barrier() {
  if (num_procs() == 1) return;
  if (!protocol_enabled()) {
    // Reference backend: pure rendezvous.  Clocks still reconcile to the
    // slowest arrival (that is how a barrier behaves on any machine), but
    // no notices move and no communication is modelled.
    BarrierService::Result res =
        shared_.barrier->Arrive(id_, vc_, clock_.now(), 0);
    clock_.AdvanceTo(res.base_time);
    return;
  }
  const CostModel& cost = shared_.config.cost;

  CloseInterval();
  const std::size_t arrival_bytes = OutgoingNoticeBytes();

  BarrierService::Result res =
      shared_.barrier->Arrive(id_, vc_, clock_.now(), arrival_bytes);

  // Extended barrier window: every processor is now inside the barrier,
  // so no diff request is in flight anywhere.  Drain the request flags
  // peers set during the finished phase into the plain per-unit view
  // consulted by WriteFault, then rendezvous again so no processor starts
  // the next phase (and issues new requests) before every drain finished.
  // This quantizes the lazy-diffing cost decisions to barrier phases,
  // making modelled time independent of host thread scheduling.
  for (std::size_t u = 0; u < diff_requested_.size(); ++u) {
    if (diff_requested_[u].load(std::memory_order_relaxed) != 0) {
      diff_requested_[u].store(0, std::memory_order_relaxed);
      diff_request_seen_[u] = 1;
    }
  }
  // Archive GC rides the same idle window (DESIGN.md §6): proc 0 flattens
  // everything dominated by the PREVIOUS barrier's global clock — which
  // every node fully processed before arriving here — while the others
  // drain their own flags or wait at the rendezvous.  GC touches pending
  // notices, archives, and the canonical base; the drain loop touches only
  // each node's own request flags, so the two never conflict.  The
  // rendezvous below then keeps any node from issuing new requests (or
  // faults) before the collection finished, making the pass deterministic.
  if (id_ == 0 && shared_.config.gc_interval_barriers > 0) {
    const auto lag = static_cast<std::size_t>(
        std::max(1, shared_.config.gc_lag_barriers));
    if (shared_.gc_history.size() >= lag &&
        (sync_phase_ + 1) %
                static_cast<std::uint32_t>(
                    shared_.config.gc_interval_barriers) ==
            0) {
      RunArchiveGc(shared_, shared_.gc_history.front());
    }
    shared_.gc_history.push_back(res.global_vc);
    while (shared_.gc_history.size() > lag) shared_.gc_history.pop_front();
  }
  shared_.barrier->Rendezvous();
  ++sync_phase_;

  std::size_t incoming_bytes = 0;
  std::vector<const IntervalRecord*>& records = notice_scratch_;
  CollectNotices(res.global_vc, &incoming_bytes, records);

  // Modelled barrier cost (centralized manager at proc 0): all clients ship
  // arrival messages; the manager processes every arrival, then ships
  // release messages carrying the write notices each client is missing.
  const VirtualNanos base =
      res.base_time + shared_.net.RoundTripTime(res.max_arrival_bytes, 0) +
      cost.barrier_fixed +
      cost.barrier_per_arrival * (num_procs() - 1);
  VirtualNanos release_time = base;
  if (id_ != 0) {
    release_time += shared_.net.config().ns_per_byte *
                    static_cast<VirtualNanos>(incoming_bytes);
    net_stats_.Record(MessageKind::kBarrierArrival, arrival_bytes);
    net_stats_.Record(MessageKind::kBarrierRelease, incoming_bytes);
    comm_stats_.counters().sync_messages += 2;
  }
  clock_.AdvanceTo(release_time);

  InvalidateFrom(records);
  vc_.Merge(res.global_vc);

  if (shared_.config.aggregation == AggregationMode::kDynamic) {
    aggregator_.OnSynchronization();
  }
}

void Node::AcquireLock(int lock_id) {
  if (num_procs() == 1) return;
  if (!protocol_enabled()) {
    // Reference backend: mutual exclusion only.  The grant cannot arrive
    // before the previous holder released.
    LockService::Grant grant = shared_.locks->Acquire(lock_id, id_);
    clock_.AdvanceTo(grant.release_time);
    return;
  }
  const CostModel& cost = shared_.config.cost;

  LockService::Grant grant = shared_.locks->Acquire(lock_id, id_);
  if (grant.cached) {
    // Token already local: no communication, constant local cost.
    clock_.Advance(2 * kNanosPerMicro);
    return;
  }

  VectorClock target = vc_;
  target.Merge(grant.release_vc);
  std::size_t notice_bytes = 0;
  std::vector<const IntervalRecord*>& records = notice_scratch_;
  CollectNotices(target, &notice_bytes, records);

  // Request travels to the manager/holder; the grant returns with the
  // write notices the acquirer has not yet seen.  The grant cannot arrive
  // before the previous holder released.
  clock_.AdvanceTo(grant.release_time);
  clock_.Advance(shared_.net.RoundTripTime(16, 16 + notice_bytes) +
                 cost.lock_manager_overhead);
  net_stats_.Record(MessageKind::kLockRequest, 16);
  net_stats_.Record(MessageKind::kLockGrant, 16 + notice_bytes);
  comm_stats_.counters().sync_messages += 2;

  InvalidateFrom(records);
  vc_.Merge(target);

  if (shared_.config.aggregation == AggregationMode::kDynamic) {
    aggregator_.OnSynchronization();
  }
}

void Node::ReleaseLock(int lock_id) {
  if (num_procs() == 1) return;
  CloseInterval();  // no-op when the protocol is disabled
  shared_.locks->Release(lock_id, id_, vc_, clock_.now());
}

}  // namespace dsm

#include "core/protocol.h"

#include <algorithm>
#include <limits>
#include <string>
#include <thread>
#include <unordered_map>

#include "analysis/race_detector.h"
#include "core/fault.h"

namespace dsm {
namespace {

// Validation must precede every other member's construction (GlobalHeap
// would CHECK-abort on an absurd heap size instead of throwing), so it
// rides the first mem-initializer.
const RuntimeConfig& Validated(const RuntimeConfig& cfg) {
  cfg.Validate();
  return cfg;
}

}  // namespace

std::size_t GcSerialPassLimit(unsigned hardware_threads) {
  if (hardware_threads == 0) return 1024;  // unknown: historical default
  if (hardware_threads == 1) {
    return std::numeric_limits<std::size_t>::max();  // striping buys nothing
  }
  // Wider hosts amortize the stripe rendezvous over more real cores, so
  // progressively lighter passes are worth spreading; the 4-thread point
  // reproduces the historical fixed threshold, and the floor keeps truly
  // trivial passes (a handful of records) serial on any machine.
  return std::max<std::size_t>(4096 / hardware_threads, 64);
}

const char* RuntimeConfig::UnitLabel() const {
  if (aggregation == AggregationMode::kDynamic) return "Dyn";
  switch (pages_per_unit) {
    case 1:
      return "4K";
    case 2:
      return "8K";
    case 4:
      return "16K";
    case 8:
      return "32K";
    default:
      return "static";
  }
}

const char* RuntimeConfig::BackendLabel() const {
  switch (backend) {
    case BackendKind::kReference:
      return "Ref";
    case BackendKind::kHlrc:
      return "HLRC";
    case BackendKind::kLrc:
      break;
  }
  return "LRC";
}

SharedState::SharedState(const RuntimeConfig& cfg)
    : config(Validated(cfg)),
      heap(cfg.heap_bytes, cfg.unit_bytes()),
      net(cfg.net),
      barrier(std::make_unique<BarrierService>(cfg.num_procs)),
      locks(std::make_unique<LockService>(cfg.num_locks, cfg.num_procs)) {
  if (config.fault.armed()) {
    // Resolve the schedule (seed-derived victims, well-formedness
    // fix-ups) once, store it back so introspection sees the concrete
    // events, re-validate the concrete form, and arm the injector.
    config.fault = ResolveFaultSchedule(config.fault, config.num_procs);
    config.Validate();
    fault = std::make_unique<FaultInjector>(config.fault);
    checkpoint_vc = VectorClock(config.num_procs);
    if (config.backend == BackendKind::kHlrc) {
      // Any processor may be a crashing home: arm the per-unit re-home
      // override table (DESIGN.md §9).
      home_override.assign(heap.num_units(), -1);
    }
  }
  if (cfg.backend == BackendKind::kReference) {
    reference_image.reset(new std::byte[heap.heap_bytes()]());
  }
  if (cfg.backend == BackendKind::kHlrc) {
    home_image.reset(new std::byte[heap.heap_bytes()]());
    home_mutexes.reset(new std::mutex[heap.num_units()]);
  }
  switch (cfg.gc_pass_mode) {
    case GcPassMode::kForceSerial:
      gc_serial_pass_limit = std::numeric_limits<std::size_t>::max();
      break;
    case GcPassMode::kForceStriped:
      gc_serial_pass_limit = 0;  // every non-empty pass stripes
      break;
    case GcPassMode::kAuto:
      gc_serial_pass_limit =
          GcSerialPassLimit(std::thread::hardware_concurrency());
      break;
  }
  archives.reserve(cfg.num_procs);
  for (int p = 0; p < cfg.num_procs; ++p) {
    archives.push_back(std::make_unique<IntervalArchive>());
    // The telemetry reports the LRC diff archive the GC keeps bounded.
    // HLRC records are notice-only metadata pruned by a seen-everywhere
    // watermark (HlrcPruneNotices) — hooking them up would report a
    // phantom archive for a backend that has none, and the reference
    // backend never archives at all.
    if (cfg.backend == BackendKind::kLrc) {
      archives.back()->set_telemetry(&archive_telemetry);
    }
  }
  if (cfg.race_check) {
    race = std::make_unique<RaceDetector>(cfg.num_procs, heap.num_units(),
                                          heap.unit_bytes() / kWordBytes,
                                          cfg.num_locks);
  }
  canonical =
      std::make_unique<CanonicalStore>(heap.num_units(), heap.unit_bytes());
  sharers = std::make_unique<SharerDirectory>(heap.num_units(), cfg.num_procs);
  virgin_history.resize(heap.num_units());
  gc_dom_prefix.resize(cfg.num_procs);
  gc_dom_ready = std::vector<std::atomic<std::uint8_t>>(cfg.num_procs);
  for (auto& r : gc_dom_ready) r.store(0, std::memory_order_relaxed);
}

SharedState::~SharedState() = default;

void SharedState::ApplyPendingRehomes() {
  std::lock_guard lock(rehome_mutex);
  if (pending_rehomes.empty()) return;
  DSM_CHECK(!home_override.empty());
  for (const auto& [unit, new_home] : pending_rehomes) {
    home_override[static_cast<std::size_t>(unit)] = new_home;
  }
  pending_rehomes.clear();
  // One epoch per applied batch: every node whose private epoch lags pays
  // the timeout + retransmit for learning the new map at its next home
  // contact.
  ++rehome_epoch;
}

ProcId SharedState::CoordinatorFor(std::uint32_t sync_phase) const {
  if (fault == nullptr) return 0;
  for (ProcId r = 0; r < config.num_procs; ++r) {
    if (!fault->CrashesAtBarrier(r, sync_phase)) return r;
  }
  // Validate() and ResolveFaultSchedule guarantee a survivor per phase.
  DSM_CHECK(false) << "no surviving coordinator at barrier " << sync_phase;
  return 0;
}

Node::Node(ProcId id, SharedState& shared)
    : id_(id),
      shared_(shared),
      unit_bytes_(shared.heap.unit_bytes()),
      unit_shift_(shared.heap.unit_shift()),
      protocol_enabled_(shared.config.num_procs > 1 &&
                        shared.config.backend != BackendKind::kReference),
      hlrc_(protocol_enabled_ &&
            shared.config.backend == BackendKind::kHlrc),
      twin_track_(hlrc_ && shared.config.hlrc_skip_clean_diff_scan),
      shared_access_cost_(shared.config.cost.shared_access),
      race_(shared.race.get()),
      image_(shared.reference_image
                 ? nullptr
                 : new std::byte[shared.heap.heap_bytes()]()),
      data_(shared.reference_image ? shared.reference_image.get()
                                   : image_.get()),
      table_(shared.heap.num_units(), unit_bytes_),
      tracker_(shared.heap.num_units(), unit_bytes_ / kWordBytes),
      pending_(shared.heap.num_units()),
      flattened_(shared.heap.num_units()),
      elided_(shared.heap.num_units()),
      retwin_cheap_(shared.heap.num_units(), 0),
      diff_requested_(shared.heap.num_units()),
      diff_request_seen_(shared.heap.num_units(), 0),
      aggregator_(shared.heap.num_units(), shared.config.max_group_pages),
      vc_(shared.config.num_procs),
      notices_seen_(shared.config.num_procs),
      needs_by_writer_(shared.config.num_procs) {
  if (hlrc_) {
    fetch_by_home_.resize(static_cast<std::size_t>(shared.config.num_procs));
    hlrc_flush_bytes_.assign(
        static_cast<std::size_t>(shared.config.num_procs), 0);
    hlrc_flush_server_.assign(
        static_cast<std::size_t>(shared.config.num_procs), 0);
  }
  if (twin_track_) twin_dirty_.assign(shared.heap.num_units(), 0);
}

void Node::ReadBytesSlow(GlobalAddr addr, void* out, std::size_t bytes) {
  auto* dst = static_cast<std::byte*>(out);
  const std::size_t total_words = bytes / kWordBytes;
  while (bytes > 0) {
    const UnitId unit = static_cast<UnitId>(addr >> unit_shift_);
    const std::size_t offset_in_unit = addr & (unit_bytes_ - 1);
    const std::size_t chunk = std::min(bytes, unit_bytes_ - offset_in_unit);
    if (protocol_enabled_) {
      if (table_.NeedsFaultOnRead(unit)) ReadFault(unit);
      tracker_.OnRead(unit,
                      static_cast<std::uint32_t>(offset_in_unit / kWordBytes),
                      static_cast<std::uint32_t>(chunk / kWordBytes),
                      [this](std::uint32_t msg) { comm_stats_.Credit(msg); });
    }
    if (race_ != nullptr) {
      RaceOnAccess(unit, offset_in_unit, chunk, /*is_write=*/false);
    }
    std::memcpy(dst, data_ + addr, chunk);
    addr += chunk;
    dst += chunk;
    bytes -= chunk;
  }
  // One batched update for the whole access (integer sums are exact, so
  // the modelled time matches the former per-chunk advances bit for bit).
  clock_.Advance(static_cast<VirtualNanos>(total_words) *
                 shared_access_cost_);
}

void Node::WriteBytesSlow(GlobalAddr addr, const void* in,
                          std::size_t bytes) {
  auto* src = static_cast<const std::byte*>(in);
  const std::size_t total_words = bytes / kWordBytes;
  while (bytes > 0) {
    const UnitId unit = static_cast<UnitId>(addr >> unit_shift_);
    const std::size_t offset_in_unit = addr & (unit_bytes_ - 1);
    const std::size_t chunk = std::min(bytes, unit_bytes_ - offset_in_unit);
    if (protocol_enabled_) {
      if (table_.NeedsFaultOnWrite(unit)) WriteFault(unit);
      tracker_.OnWrite(unit,
                       static_cast<std::uint32_t>(offset_in_unit / kWordBytes),
                       static_cast<std::uint32_t>(chunk / kWordBytes));
      if (twin_track_ && twin_dirty_[unit] == 0 &&
          std::memcmp(data_ + addr, src, chunk) != 0) {
        twin_dirty_[unit] = 1;
      }
    }
    if (race_ != nullptr) {
      RaceOnAccess(unit, offset_in_unit, chunk, /*is_write=*/true);
    }
    std::memcpy(data_ + addr, src, chunk);
    addr += chunk;
    src += chunk;
    bytes -= chunk;
  }
  clock_.Advance(static_cast<VirtualNanos>(total_words) *
                 shared_access_cost_);
}

void Node::RaceOnAccess(UnitId unit, std::size_t offset_in_unit,
                        std::size_t bytes, bool is_write) {
  race_->OnAccess(id_, unit,
                  static_cast<std::uint32_t>(offset_in_unit / kWordBytes),
                  static_cast<std::uint32_t>(bytes / kWordBytes), is_write);
}

void Node::ReadFault(UnitId unit) {
  const CostModel& cost = shared_.config.cost;
  comm_stats_.counters().read_faults += 1;
  clock_.Advance(cost.fault_overhead);
  ValidateUnit(unit);
}

void Node::WriteFault(UnitId unit) {
  const CostModel& cost = shared_.config.cost;
  const UnitState s = table_.state(unit);
  // Lazy-diffing model: after a release the twin persists and the page
  // stays writable at the writer, so re-dirtying it is free unless some
  // peer requested a diff in an earlier barrier phase (forcing diff
  // creation, twin discard, and re-protection at the writer).  Only the
  // barrier-drained view is consulted — never the live request flags —
  // so the decision does not depend on host thread timing.
  const bool cheap = s == UnitState::kReadValid &&
                     retwin_cheap_[unit] != 0 &&
                     diff_request_seen_[unit] == 0;
  if (!cheap) {
    comm_stats_.counters().write_faults += 1;
    clock_.Advance(cost.fault_overhead);
  }
  if (s == UnitState::kInvalid || s == UnitState::kUpdatedInvalid) {
    ValidateUnit(unit);
  }
  if (table_.state(unit) == UnitState::kReadValid) TwinUnit(unit, cheap);
}

void Node::TwinUnit(UnitId unit, bool cheap) {
  const CostModel& cost = shared_.config.cost;
  table_.MakeTwin(unit, UnitSpan(unit));
  table_.RecordDirty(unit);
  table_.set_state(unit, UnitState::kDirty);
  comm_stats_.counters().twins_created += 1;
  retwin_cheap_[unit] = 0;
  if (twin_track_) twin_dirty_[unit] = 0;  // twin == image at creation
  // A fresh twin settles all drained requests; live (same-phase) request
  // flags are left for the next barrier drain, so a request concurrent
  // with this interval makes the NEXT re-twin expensive regardless of
  // which host thread won the race.
  diff_request_seen_[unit] = 0;
  if (!cheap) clock_.Advance(cost.TwinCost(unit_bytes_) + cost.mprotect_op);
}

void Node::ValidateUnit(UnitId unit) {
  const CostModel& cost = shared_.config.cost;
  const bool dynamic =
      shared_.config.aggregation == AggregationMode::kDynamic;
  if (dynamic) aggregator_.RecordAccess(unit);

  if (table_.state(unit) == UnitState::kUpdatedInvalid) {
    // Updates already arrived with the page group; just unprotect.
    comm_stats_.counters().silent_validations += 1;
    table_.set_state(unit, table_.HasTwin(unit) ? UnitState::kDirty
                                                : UnitState::kReadValid);
    clock_.Advance(cost.mprotect_op);
    return;
  }

  // First fault on this unit adopts the shared virgin history (if any)
  // into flattened_/elided_ and registers this node as a sharer, so the
  // checks below see exactly the state the GC would have built per-node.
  AdoptVirginState(unit);

  if (pending_[unit].empty() && flattened_[unit].empty()) {
    // Never reached under HLRC: a unit only goes invalid when a write
    // notice queues a pending entry, and HlrcFetchUnits clears the list
    // exactly when it revalidates (no GC ever reclaims entries).
    DSM_CHECK(!hlrc_) << "HLRC: invalid unit " << unit
                      << " with no pending write notices";
    // Read-aware flattening left only elided history for this unit: every
    // reclaimed word was never read here, so there is nothing to fetch —
    // refresh the bytes from the canonical base (data safety for a
    // mispredicted later read) and revalidate locally.  Reached only in
    // lock programs (only lock-release records are elided).
    DSM_CHECK(!elided_[unit].empty())
        << "invalid unit " << unit << " with no pending write notices";
    RefreshElided(unit);
    retwin_cheap_[unit] = 0;
    table_.set_state(unit, table_.HasTwin(unit) ? UnitState::kDirty
                                                : UnitState::kReadValid);
    clock_.Advance(cost.mprotect_op);
    return;
  }

  retwin_cheap_[unit] = 0;
  std::vector<UnitId>& fetch = fetch_scratch_;
  fetch.clear();
  fetch.push_back(unit);
  if (dynamic) {
    for (UnitId member : aggregator_.GroupOf(unit)) {
      if (member == unit) continue;
      if (table_.state(member) == UnitState::kInvalid &&
          (!pending_[member].empty() || !flattened_[member].empty() ||
           HasVirginChains(member))) {
        AdoptVirginState(member);  // FetchUnits reads flattened_[member]
        fetch.push_back(member);
      }
    }
  }
  if (hlrc_) {
    HlrcFetchUnits(fetch);
  } else {
    FetchUnits(fetch);
  }

  for (UnitId fetched : fetch) {
    if (fetched == unit) {
      table_.set_state(unit, table_.HasTwin(unit) ? UnitState::kDirty
                                                  : UnitState::kReadValid);
    } else {
      table_.set_state(fetched, UnitState::kUpdatedInvalid);
      aggregator_.NotifyPrefetched(fetched);
      comm_stats_.counters().group_prefetch_units += 1;
    }
  }
  clock_.Advance(cost.mprotect_op);
}

void Node::FetchUnits(const std::vector<UnitId>& units) {
  const CostModel& cost = shared_.config.cost;
  const int nprocs = num_procs();
  const std::size_t words_per_unit = unit_bytes_ / kWordBytes;

  // Gather needed diffs, grouped by writer.  Consecutive intervals of the
  // SAME writer are coalesced into one combined diff when no foreign
  // pending interval is ordered after the chain's head without also being
  // ordered after its tail — in that case no reader could ever observe the
  // intermediate versions, so the server ships the union (this is the
  // server-side answer to TreadMarks' diff accumulation problem; without
  // it, a page repeatedly rewritten by one processor ships its entire
  // modification history on first fetch).
  //
  // Intervals reclaimed by archive GC arrive pre-coalesced as
  // FlattenedChains — the exact chains this loop would have built, frozen
  // at GC time with live records from later epochs still absorbable into
  // the last chain of each writer (every live record happened-after every
  // reclaimed one, so the absorption check degenerates to the foreign
  // live records plus the chain's `blocked` flag).
  for (auto& v : needs_by_writer_) v.clear();
  std::deque<Diff>& merged_storage = merged_scratch_;
  merged_storage.clear();
  absorbed_scratch_.clear();
  for (UnitId unit : units) {
    // Resolve all live pending notices of this unit first (needed for the
    // foreign-interval ordering checks).
    std::vector<ResolvedDiff>& all = resolved_scratch_;
    all.clear();
    all.reserve(pending_[unit].size());
    for (const PendingInterval& pi : pending_[unit]) {
      DSM_CHECK_NE(pi.proc, id_);
      const IntervalRecord* rec = shared_.archives[pi.proc]->Find(pi.seq);
      DSM_CHECK(rec != nullptr)
          << "missing interval (" << pi.proc << "," << pi.seq << ")";
      const int di = rec->IndexOf(unit);
      DSM_CHECK_GE(di, 0) << "interval (" << pi.proc << "," << pi.seq
                          << ") has no diff for unit " << unit;
      all.push_back({rec, &rec->diffs[static_cast<std::size_t>(di)],
                     rec->PaysForDiff(di, stamp_key())});
    }
    std::vector<FlattenedChain>& flat = flattened_[unit];
    for (ProcId w = 0; w < nprocs; ++w) {
      // This writer's intervals, in increasing seq order (pending notices
      // arrive in acquire order, which respects per-writer seq order);
      // flattened chains always precede live records.
      std::vector<const ResolvedDiff*>& chain_input = chain_scratch_;
      chain_input.clear();
      for (const ResolvedDiff& r : all) {
        if (r.rec->proc == w) chain_input.push_back(&r);
      }
      FlattenedChain* open_flat = nullptr;  // last flattened chain of w
      for (FlattenedChain& c : flat) {
        if (c.writer == w) open_flat = &c;
      }
      if (open_flat == nullptr && chain_input.empty()) continue;

      // One server-side twin scan per (writer, unit) with any interval
      // this requester pays to materialize; everything materialized in an
      // earlier phase is served from the writer's diff cache.  Reclaimed
      // intervals keep their first-requester stamps alive in the chains.
      bool needs_scan = false;
      for (FlattenedChain& c : flat) {
        if (c.writer != w) continue;
        c.ForEachStamp([&](std::atomic<std::uint64_t>& stamp) {
          if (IntervalRecord::PaysForStamp(stamp, stamp_key())) {
            needs_scan = true;
          }
        });
      }
      for (const ResolvedDiff* r : chain_input) {
        if (r->pays_for_scan) needs_scan = true;
      }
      shared_.nodes[w]->diff_requested_[unit].store(
          1, std::memory_order_relaxed);

      auto push_need = [&](NeedEntry e) {
        e.unit = unit;
        e.writer = w;
        e.needs_scan = needs_scan;
        needs_scan = false;  // at most one scan per (writer, unit)
        needs_by_writer_[w].push_back(e);
      };
      // Emit every flattened chain of w but the last; the last may still
      // absorb live records into its tail.
      for (FlattenedChain& c : flat) {
        if (c.writer != w || &c == open_flat) continue;
        NeedEntry e{};
        e.last_seq = c.last_seq;
        e.last_vc = &c.last_vc();
        e.flat = &c;
        push_need(e);
      }
      std::uint32_t absorbed_begin =
          static_cast<std::uint32_t>(absorbed_scratch_.size());
      auto flush_flat = [&] {
        NeedEntry e{};
        e.last_seq = open_flat->last_seq;
        e.last_vc = &open_flat->last_vc();
        e.flat = open_flat;
        e.absorbed_begin = absorbed_begin;
        e.absorbed_count =
            static_cast<std::uint32_t>(absorbed_scratch_.size()) -
            absorbed_begin;
        push_need(e);
        open_flat = nullptr;
      };

      // May we absorb r into a chain whose head is (w, first_seq)?  Every
      // foreign interval must be either not-after the head or after the
      // candidate tail.  (Foreign reclaimed intervals ordered after a
      // flattened head are recorded in its `blocked` flag; they can never
      // be after a live tail.)  Since every candidate r is one of w's own
      // records, "q after the head but not after the tail" collapses to
      // first_seq <= q.vc[w] < r.seq — so, as in the GC's flatten pass,
      // sort the foreign clock components once per (unit, writer) and
      // answer each absorption check by binary search instead of
      // rescanning the batch (the batch scan made this loop O(k²) per
      // fault on rewrite-heavy units).
      std::vector<Seq>& foreign_vcw = foreign_vcw_scratch_;
      if (!chain_input.empty()) {
        foreign_vcw.clear();
        for (const ResolvedDiff& q : all) {
          if (q.rec->proc != w) foreign_vcw.push_back(q.rec->vc[w]);
        }
        std::sort(foreign_vcw.begin(), foreign_vcw.end());
      }
      auto may_absorb = [&](Seq first_seq, const IntervalRecord& r) {
        auto it = std::lower_bound(foreign_vcw.begin(), foreign_vcw.end(),
                                   first_seq);
        return it == foreign_vcw.end() || *it >= r.seq;
      };

      const IntervalRecord* chain_first = nullptr;
      const Diff* chain_diff = nullptr;
      const IntervalRecord* chain_last = nullptr;
      auto flush_live = [&] {
        NeedEntry e{};
        e.last_seq = chain_last->seq;
        e.last_vc = &chain_last->vc;
        e.diff = chain_diff;
        push_need(e);
        chain_diff = nullptr;
      };
      for (const ResolvedDiff* r : chain_input) {
        if (open_flat != nullptr) {
          if (!open_flat->blocked &&
              may_absorb(open_flat->first_seq, *r->rec)) {
            // Copy-on-write: other nodes may share this chain's body.
            ChainBody& b = open_flat->MutableBody();
            b.runs = Diff::MergeRuns(b.runs, r->diff->runs());
            b.payload_words = Diff::RunWords(b.runs);
            b.last_vc = r->rec->vc;
            open_flat->last_seq = r->rec->seq;
            absorbed_scratch_.push_back(r->diff);
            continue;
          }
          flush_flat();
        }
        if (chain_diff == nullptr) {
          chain_first = r->rec;
          chain_last = r->rec;
          chain_diff = r->diff;
          continue;
        }
        if (may_absorb(chain_first->seq, *r->rec)) {
          merged_storage.push_back(
              Diff::Merge(*chain_diff, *r->diff, words_per_unit));
          chain_diff = &merged_storage.back();
          chain_last = r->rec;
        } else {
          flush_live();
          chain_first = r->rec;
          chain_last = r->rec;
          chain_diff = r->diff;
        }
      }
      if (open_flat != nullptr) flush_flat();
      if (chain_diff != nullptr) flush_live();
    }
  }

  // One request/response exchange per writer; writers answer in parallel
  // (paper §4: "those processors can return the diffs in parallel rather
  // than in sequence").
  const std::uint32_t first_exchange = comm_stats_.num_exchanges();
  int num_writers = 0;
  VirtualNanos slowest_exchange = 0;
  for (ProcId w = 0; w < nprocs; ++w) {
    auto& needs = needs_by_writer_[w];
    if (needs.empty()) continue;
    ++num_writers;
    const std::uint32_t ex = comm_stats_.NewExchange(w);
    std::size_t request_bytes = 16;
    std::size_t response_bytes = 0;
    std::uint32_t delivered_words = 0;
    UnitId last_unit_in_req = ~UnitId{0};
    for (auto& need : needs) {
      need.exchange_id = ex;
      if (need.unit != last_unit_in_req) {
        request_bytes += 8;  // unit id + timestamp bound per unit requested
        last_unit_in_req = need.unit;
      }
      response_bytes += need.EncodedBytes();
      delivered_words += static_cast<std::uint32_t>(need.PayloadWords());
    }
    comm_stats_.AddDelivered(
        ex, delivered_words,
        static_cast<std::uint32_t>(delivered_words * kWordBytes));
    net_stats_.Record(MessageKind::kDiffRequest, request_bytes);
    net_stats_.Record(MessageKind::kDiffResponse, response_bytes);
    // Server-side cost: request handling plus lazy diff creation — one
    // twin scan per (unit, writer) whose diffs were not yet materialized.
    VirtualNanos server = cost.request_service_overhead;
    for (const auto& need : needs) {
      if (need.needs_scan) server += cost.DiffCreateCost(unit_bytes_);
    }
    const VirtualNanos t =
        shared_.net.RoundTripTime(request_bytes, response_bytes) + server;
    slowest_exchange = std::max(slowest_exchange, t);
  }
  DSM_CHECK_GT(num_writers, 0);
  clock_.Advance(slowest_exchange);
  comm_stats_.RecordFault(num_writers, first_exchange);

  // Apply diffs per unit, in happens-before order (ordered intervals may
  // overlap words, e.g. migratory data under locks; concurrent intervals
  // touch disjoint words in race-free programs).
  const bool track = shared_.config.track_usage;
  std::vector<NeedEntry>& for_unit = apply_scratch_;
  for (UnitId unit : units) {
    // Read-aware flattening fallback: lay any elided reclaimed words down
    // first (host-side copy from the canonical base — the same source the
    // chains below copy from), so everything applied afterwards lands on
    // the bytes the full history would have produced.
    RefreshElided(unit);
    for_unit.clear();
    for (ProcId w = 0; w < nprocs; ++w) {
      for (const auto& need : needs_by_writer_[w]) {
        if (need.unit == unit) for_unit.push_back(need);
      }
    }
    // Topological order by selection: repeatedly emit an entry with no
    // remaining predecessor (the partial order is acyclic).
    for (std::size_t done = 0; done < for_unit.size(); ++done) {
      std::size_t pick = done;
      for (std::size_t i = done; i < for_unit.size(); ++i) {
        bool has_predecessor = false;
        for (std::size_t j = done; j < for_unit.size(); ++j) {
          if (i != j && for_unit[i].last_vc->Covers(for_unit[j].writer,
                                                    for_unit[j].last_seq)) {
            has_predecessor = true;
            break;
          }
        }
        if (!has_predecessor) {
          pick = i;
          break;
        }
      }
      std::swap(for_unit[done], for_unit[pick]);

      const NeedEntry& need = for_unit[done];
      const bool twinned = table_.HasTwin(unit);
      if (need.flat != nullptr) {
        // Reclaimed chain: its words live in the canonical base.  Copy
        // the chain's runs from the base, then lay any live diffs
        // absorbed into the tail on top (they are newer than everything
        // reclaimed, so they win exactly as in the merged-diff path).
        const std::vector<DiffRun>& runs = need.flat->runs();
        std::span<std::byte> dst = UnitSpan(unit);
        shared_.canonical->CopyRuns(unit, dst, runs);
        if (twinned) {
          shared_.canonical->CopyRuns(unit, table_.twin(unit), runs);
        }
        for (std::uint32_t a = 0; a < need.absorbed_count; ++a) {
          const Diff* d = absorbed_scratch_[need.absorbed_begin + a];
          d->Apply(dst);
          if (twinned) d->Apply(table_.twin(unit));
        }
        if (track) {
          for (const DiffRun& run : runs) {
            for (std::uint32_t i = 0; i < run.word_count; ++i) {
              tracker_.Deliver(unit, run.word_offset + i, need.exchange_id);
            }
          }
        }
      } else {
        need.diff->Apply(UnitSpan(unit));
        if (twinned) need.diff->Apply(table_.twin(unit));
        if (track) {
          need.diff->ForEachWord([&](std::uint32_t word) {
            tracker_.Deliver(unit, word, need.exchange_id);
          });
        }
      }
      const std::size_t payload_bytes = need.PayloadWords() * kWordBytes;
      comm_stats_.counters().diffs_applied += 1;
      comm_stats_.counters().delivered_data_bytes += payload_bytes;
      clock_.Advance(cost.DiffApplyCost(payload_bytes));
    }
    pending_[unit].clear();
    flattened_[unit].clear();
  }
}

void Node::RefreshElided(UnitId unit) {
  std::vector<DiffRun>& runs = elided_[unit];
  if (runs.empty()) return;
  shared_.canonical->CopyRuns(unit, UnitSpan(unit), runs);
  if (table_.HasTwin(unit)) {
    shared_.canonical->CopyRuns(unit, table_.twin(unit), runs);
  }
  // Release the storage too: the run list pins the unit's canonical base
  // (see RunArchiveGc pass 3), so an emptied-but-capacious vector would
  // read as still pinning under a capacity-based check.
  std::vector<DiffRun>().swap(runs);
}

void Node::CloseInterval(bool lock_release) {
  if (!protocol_enabled()) return;
  const auto& dirty = table_.dirty_units();
  if (dirty.empty()) return;
  if (hlrc_) {
    HlrcFlushInterval(lock_release);
    return;
  }
  const CostModel& cost = shared_.config.cost;

  IntervalRecord rec;
  rec.proc = id_;
  rec.seq = ++vc_[id_];
  rec.lock_release = lock_release;
  rec.units.reserve(dirty.size());
  rec.diffs.reserve(dirty.size());
  // Diffs are materialized here for bookkeeping (archived records must be
  // immutable), but no cost is charged: TreadMarks diffs lazily, so a
  // release only records write notices.  The diff-creation cost is charged
  // server-side when a peer actually requests the diff (FetchUnits), and a
  // unit re-dirtied before any such request re-twins for free.
  for (UnitId unit : dirty) {
    rec.units.push_back(unit);
    rec.diffs.push_back(Diff::Create(table_.twin(unit), UnitSpan(unit)));
    table_.DropTwin(unit);
    if (table_.state(unit) == UnitState::kDirty) {
      table_.set_state(unit, UnitState::kReadValid);
    }
    retwin_cheap_[unit] = 1;
    comm_stats_.counters().diffs_created += 1;
  }
  (void)cost;
  rec.vc = vc_;
  table_.ClearDirtyList();
  const IntervalRecord* stored = shared_.archives[id_]->Append(std::move(rec));
  if (shared_.fault != nullptr) {
    const int ev = shared_.fault->MatchAfterClose(id_, stored->seq);
    if (ev >= 0) {
      // Crash point: the interval just reached the (stable) archive, all
      // twins are dropped, nothing is half-written.  Rebuild in place and
      // continue transparently (DESIGN.md §9).
      RecoveryCoordinator::Recover(*this, stored->vc, ev);
    }
  }
}

// Home-based LRC release (DESIGN.md §7): the dual of the lazy path above.
// Diffs are created eagerly (the releaser pays the twin scan now, not a
// future requester), shipped to each dirty unit's home in one combined
// message per remote home (homes absorb them in parallel; the release
// waits for the slowest ack), and the archived record keeps only the
// write notices — the payload now lives at the homes, so nothing here
// ever needs garbage collecting.
void Node::HlrcFlushInterval(bool lock_release) {
  const CostModel& cost = shared_.config.cost;
  const auto& dirty = table_.dirty_units();

  IntervalRecord rec;
  rec.proc = id_;
  rec.seq = ++vc_[id_];
  rec.lock_release = lock_release;
  rec.units.reserve(dirty.size());
  rec.diffs.reserve(dirty.size());

  VirtualNanos create_cost = 0;
  for (UnitId unit : dirty) {
    rec.units.push_back(unit);
    // Notice-only record: the empty diff keeps the archive's units/diffs
    // parallel-array invariant without retaining any payload.
    rec.diffs.emplace_back();
    // The modelled scan always runs — eager diffing is how the releaser
    // discovers emptiness — even when the host-side scan below is
    // skipped, so modelled time and counters are knob-independent.
    create_cost += cost.DiffCreateCost(unit_bytes_);
    comm_stats_.counters().diffs_created += 1;
    if (twin_track_ && twin_dirty_[unit] == 0) {
      // Clean twin: no byte changed since TwinUnit took the snapshot
      // (WriteBytes keeps the flag exact with a value comparison), so the
      // eager scan would yield an empty diff — nothing for the home and
      // no flush message.  Skip the host-side twin comparison.
      DSM_DCHECK(Diff::Create(table_.twin(unit), UnitSpan(unit)).empty());
      table_.DropTwin(unit);
      if (table_.state(unit) == UnitState::kDirty) {
        table_.set_state(unit, UnitState::kReadValid);
      }
      continue;
    }
    const Diff diff = Diff::Create(table_.twin(unit), UnitSpan(unit));
    const ProcId home = shared_.EffectiveHome(unit);
    // An empty diff means the interval changed no bytes: the twin scan
    // above is still paid (eager diffing discovers the emptiness), but
    // there is nothing for the home to absorb and the write notice
    // travels with the sync traffic — no flush message is modelled.
    if (!diff.empty()) {
      {
        std::span<std::byte> home_span{
            shared_.home_image.get() + shared_.heap.UnitBase(unit),
            unit_bytes_};
        std::lock_guard lock(shared_.home_mutexes[unit]);
        diff.Apply(home_span);
      }
      if (home != id_) {
        if (hlrc_flush_bytes_[home] == 0) {
          hlrc_flush_bytes_[home] = 16;  // flush message header
        }
        hlrc_flush_bytes_[home] += 8 + diff.EncodedBytes();
        hlrc_flush_server_[home] +=
            cost.DiffApplyCost(diff.payload_bytes());
        comm_stats_.counters().home_flushes += 1;
        comm_stats_.counters().home_flush_bytes += diff.payload_bytes();
      }
    }
    table_.DropTwin(unit);
    if (table_.state(unit) == UnitState::kDirty) {
      table_.set_state(unit, UnitState::kReadValid);
    }
    // No retwin_cheap_: under eager diffing the twin is genuinely gone
    // after a release, so the next write pays the full twin again.
  }
  rec.vc = vc_;
  table_.ClearDirtyList();
  clock_.Advance(create_cost);

  // One flush exchange per remote home touched; homes apply in parallel,
  // the releaser advances to the slowest acknowledgement.
  VirtualNanos slowest = 0;
  bool learned = false;
  for (ProcId h = 0; h < num_procs(); ++h) {
    if (hlrc_flush_bytes_[h] == 0) continue;
    net_stats_.Record(MessageKind::kHomeFlush, hlrc_flush_bytes_[h]);
    net_stats_.Record(MessageKind::kHomeFlushAck, 16);
    comm_stats_.counters().home_flush_messages += 2;
    VirtualNanos t =
        shared_.net.RoundTripTime(hlrc_flush_bytes_[h], 16) +
        cost.request_service_overhead + hlrc_flush_server_[h];
    if (!learned) {
      // First home contact of this release: a stale home map (re-home
      // batches applied since this node's last contact) times the
      // exchange out against the dead home and re-sends it.
      t += HlrcChargeRehomeLearning(hlrc_flush_bytes_[h]);
      learned = true;
    }
    slowest = std::max(slowest, t);
    hlrc_flush_bytes_[h] = 0;
    hlrc_flush_server_[h] = 0;
  }
  clock_.Advance(slowest);

  const IntervalRecord* stored = shared_.archives[id_]->Append(std::move(rec));
  if (shared_.fault != nullptr) {
    const int ev = shared_.fault->MatchAfterClose(id_, stored->seq);
    if (ev >= 0) {
      // Same crash point as the LRC path: record archived, homes already
      // absorbed this interval's diffs, twins dropped.
      RecoveryCoordinator::Recover(*this, stored->vc, ev);
    }
  }
}

// Home-based LRC fault resolution (DESIGN.md §7): whole-unit copies from
// the homes replace the LRC diff chase.  One combined exchange per remote
// home (homes answer in parallel); a self-homed unit is a local copy with
// no messages and no delivery accounting (nothing crossed the wire).  The
// home copy is at least as new as everything the pending notices name —
// every noticed release flushed before this node's acquire completed —
// and any newer words it carries belong to intervals this node will be
// told about later; race-free programs never read those early.
void Node::HlrcFetchUnits(const std::vector<UnitId>& units) {
  const CostModel& cost = shared_.config.cost;
  const std::size_t words_per_unit = unit_bytes_ / kWordBytes;
  const bool track = shared_.config.track_usage;

  for (auto& v : fetch_by_home_) v.clear();
  for (UnitId unit : units) {
    fetch_by_home_[static_cast<std::size_t>(shared_.EffectiveHome(unit))]
        .push_back(unit);
  }

  const std::uint32_t first_exchange = comm_stats_.num_exchanges();
  int num_homes = 0;
  VirtualNanos slowest = 0;
  for (ProcId h = 0; h < num_procs(); ++h) {
    const std::vector<UnitId>& list =
        fetch_by_home_[static_cast<std::size_t>(h)];
    if (list.empty()) continue;
    std::uint32_t ex = 0;
    const bool remote = h != id_;
    if (remote) {
      ++num_homes;
      ex = comm_stats_.NewExchange(h);
      const std::size_t request_bytes = 16 + 8 * list.size();
      const std::size_t response_bytes = list.size() * (16 + unit_bytes_);
      const std::size_t delivered_words = list.size() * words_per_unit;
      comm_stats_.AddDelivered(
          ex, static_cast<std::uint32_t>(delivered_words),
          static_cast<std::uint32_t>(delivered_words * kWordBytes));
      net_stats_.Record(MessageKind::kHomeFetch, request_bytes);
      net_stats_.Record(MessageKind::kHomeFetchReply, response_bytes);
      comm_stats_.counters().home_fetches += list.size();
      comm_stats_.counters().home_fetch_bytes += list.size() * unit_bytes_;
      comm_stats_.counters().delivered_data_bytes +=
          list.size() * unit_bytes_;
      // Home-side cost: request handling plus one unit copy into the
      // reply per unit served.
      VirtualNanos t =
          shared_.net.RoundTripTime(request_bytes, response_bytes) +
          cost.request_service_overhead +
          static_cast<VirtualNanos>(list.size()) *
              cost.TwinCost(unit_bytes_);
      if (num_homes == 1) {
        // First remote contact of this fault: pay for learning any
        // re-home batches applied since this node's last home exchange.
        t += HlrcChargeRehomeLearning(request_bytes);
      }
      slowest = std::max(slowest, t);
    }
    for (UnitId unit : list) {
      const bool twinned = table_.HasTwin(unit);
      std::span<std::byte> dst = UnitSpan(unit);
      // Local uncommitted writes (live twin): capture them, lay the home
      // copy underneath, re-apply them on top — the whole-unit analogue
      // of the LRC path's "apply foreign diffs to image AND twin", so
      // diff(twin, image) still yields exactly the local modifications.
      Diff local;
      if (twinned) {
        if (!twin_track_ || twin_dirty_[unit] != 0) {
          local = Diff::Create(table_.twin(unit), dst);
        } else {
          // Clean twin: the capture scan would find nothing.
          DSM_DCHECK(Diff::Create(table_.twin(unit), dst).empty());
        }
      }
      {
        const std::byte* src =
            shared_.home_image.get() + shared_.heap.UnitBase(unit);
        std::lock_guard lock(shared_.home_mutexes[unit]);
        std::memcpy(dst.data(), src, unit_bytes_);
        if (twinned) {
          std::memcpy(table_.twin(unit).data(), src, unit_bytes_);
        }
      }
      if (twinned && !local.empty()) local.Apply(dst);
      // The twin now matches the home copy and the image differs from it
      // by exactly `local`: re-anchor the clean flag.
      if (twin_track_ && twinned) twin_dirty_[unit] = local.empty() ? 0 : 1;
      // Installing the received (or locally copied) unit is one memcpy.
      clock_.Advance(cost.TwinCost(unit_bytes_));
      if (track && remote) {
        for (std::uint32_t w = 0;
             w < static_cast<std::uint32_t>(words_per_unit); ++w) {
          tracker_.Deliver(unit, w, ex);
        }
        // Words the local re-apply overwrote can never credit the fetch.
        for (const DiffRun& run : local.runs()) {
          tracker_.OnWrite(unit, run.word_offset, run.word_count);
        }
      }
      pending_[unit].clear();
    }
  }
  if (num_homes > 0) {
    clock_.Advance(slowest);
    comm_stats_.RecordFault(num_homes, first_exchange);
  }
}

// HLRC notice-log watermark pruning: a record every other node has
// already processed (its seq is at or below everyone's notices_seen_ for
// the writer) can never be Range()d again — not by a lock acquire, not by
// a barrier release — so proc 0 drops those prefixes inside the barrier's
// idle window, where no peer can be appending or collecting.  This is the
// whole HLRC memory story: records are notice-only metadata, and the log
// stays bounded by how far the slowest consumer lags.
//
// `min_seen` is the componentwise floor the barrier manager accumulated
// from every arriver's notices_seen_ (BarrierService::Result::min_seen).
// Peers park between their Arrive and the Rendezvous with notices_seen_
// frozen (consumption happens only in CollectNotices / InvalidateFrom,
// which run after the Rendezvous releases them), so the arrival-time fold
// equals the old in-window rescan of every node's vector while costing
// O(num_procs) total instead of O(num_procs²) on proc 0.
void Node::HlrcPruneNotices(const VectorClock& min_seen) {
  for (ProcId p = 0; p < num_procs(); ++p) {
    shared_.archives[p]->PruneThrough(min_seen[p]);
  }
}

// See protocol.h: lazy learning of crash-driven re-home batches.  The
// epoch is written by the barrier coordinator inside the idle window and
// read here strictly after the closing rendezvous of that barrier, so the
// plain load is ordered; the charge itself is proc-local and
// deterministic (victim-local trigger points + barrier-quantized batch
// application).
VirtualNanos Node::HlrcChargeRehomeLearning(std::size_t request_bytes) {
  if (shared_.fault == nullptr) return 0;
  const std::uint64_t epoch = shared_.rehome_epoch;
  if (rehome_epoch_seen_ == epoch) return 0;
  const std::uint64_t missed = epoch - rehome_epoch_seen_;
  rehome_epoch_seen_ = epoch;
  CommBreakdown& c = comm_stats_.counters();
  c.recovery_retransmits += missed;
  c.recovery_retransmit_bytes += missed * request_bytes;
  return static_cast<VirtualNanos>(missed) *
         (shared_.net.RoundTripTime(request_bytes, 16) +
          shared_.config.cost.request_service_overhead);
}

// Flatten phase (pass 1 of DESIGN.md §6), striped: this node converts the
// dominated pending notices of EVERY node for the units of its stripe
// (unit % nprocs == id) into FlattenedChains, mirroring the fault path's
// chain coalescing exactly (same absorption predicate over the same
// record set — live records from later epochs can never block a dominated
// absorption, because they happened-after every dominated interval).  It
// also collects the (record, diff) pairs some node still needed into
// gc_refs_: only those must go into the canonical base — an interval
// pending nowhere was already applied by every node, and any word of it
// that a future chain covers is rewritten there by a newer record of that
// chain.  Striping keeps the pass deterministic (each unit has exactly
// one worker, which walks nodes in fixed order) while spreading the work
// over the idle window's threads instead of serializing it on proc 0.
//
// Two further optimizations recover the lock-heavy Water regression
// (ROADMAP item 1):
//
//  * Read-aware flattening: a dominated LOCK-RELEASE record none of
//    whose words the pending node ever read (Water's aux/force slots)
//    builds no chain at all — its words go into the node's per-unit
//    elided-run list, silently refreshed from the canonical base at the
//    next fault.  The record still reaches the base, so a mispredicted
//    later read is data-safe.  Barrier-closed records are never elided,
//    which keeps the pass bit-invisible for barrier (= bit-reproducible)
//    programs.
//
//  * Shared flattened chains: one reclaimed record is typically pending
//    at most of the other nodes, and their chain builds are identical
//    whenever their pre-existing chains and kept record lists coincide.
//    An intern cache keyed on exactly those inputs builds each chain set
//    once and hands out cheap headers over shared ChainBodies; per-node
//    builds remain only where pending sets diverge.  All sharing for a
//    unit happens inside its one worker, so the cache is worker-local
//    and the build (including the telemetry) is bit-deterministic.
void Node::GcFlattenStripe(const VectorClock& through, int start,
                           int step) {
  SharedState& shared = shared_;
  const int nprocs = shared.config.num_procs;
  const std::size_t num_units = shared.heap.num_units();
  // Read-aware elision needs the usage tracker's consumed-delivery
  // bitmaps; with track_usage off no interest ever accumulates and the
  // predicate would elide EVERY lock-release record, breaking
  // track_usage's modelled-invisibility contract.
  const bool read_aware =
      shared.config.gc_read_aware && shared.config.track_usage;

  // Snapshot each archive's dominated prefix once (one mutex hold per
  // archive): lock-heavy programs resolve tens of thousands of (proc,
  // seq) references per pass, and per-reference Find() would pay a mutex
  // round-trip each.  The snapshot is a lock-free binary-search index.
  // Shared dominated-prefix snapshots, built once per archive per pass by
  // the first worker that needs one.
  auto dom_prefix_of =
      [&shared, &through](
          ProcId p) -> const std::vector<std::shared_ptr<const IntervalRecord>>& {
    if (shared.gc_dom_ready[p].load(std::memory_order_acquire) == 0) {
      std::lock_guard lock(shared.gc_snapshot_mutex);
      if (shared.gc_dom_ready[p].load(std::memory_order_relaxed) == 0) {
        shared.gc_dom_prefix[p] =
            shared.archives[p]->RangeShared(0, through[p]);
        shared.gc_dom_ready[p].store(1, std::memory_order_release);
      }
    }
    return shared.gc_dom_prefix[p];
  };
  auto find_dominated =
      [&](ProcId p, Seq seq) -> const std::shared_ptr<const IntervalRecord>* {
    const auto& v = dom_prefix_of(p);
    auto it = std::lower_bound(
        v.begin(), v.end(), seq,
        [](const std::shared_ptr<const IntervalRecord>& r, Seq s) {
          return r->seq < s;
        });
    DSM_CHECK(it != v.end() && (*it)->seq == seq)
        << "GC: missing interval (" << p << "," << seq << ")";
    return &*it;
  };

  struct Resolved {
    const IntervalRecord* rec;
    // Shared ownership handle (single-record chains retain the record);
    // points into dom_prefix, which outlives the pass.
    const std::shared_ptr<const IntervalRecord>* owner;
    int di;
    std::uint64_t vc_sum;
  };
  auto vc_sum_of = [](const IntervalRecord& r) { return r.vc.Sum(); };
  // One reclaimed record is typically pending at most nodes; resolve each
  // (proc, seq) once per unit and reuse across the node loop.
  std::unordered_map<std::uint64_t, Resolved> resolve_memo;
  std::vector<PendingInterval> live;
  std::vector<Resolved> kept;
  std::vector<DiffRun> elide_accum;
  std::vector<DiffRun> elide_canon;
  // Per-writer sorted foreign clock entries of the current batch (see the
  // absorption predicate below).
  std::vector<std::vector<Seq>> foreign_vcw(nprocs);
  // Chain intern cache for this worker's stripe.  Keyed on the node's
  // pre-existing chains (header fields + body identity — bodies are
  // compared by pointer, which is sound because every body referenced by
  // a key outlives the cache) and the kept record pointers; the unit is
  // implicit (all keys of one worker iteration share it, and the cache is
  // cleared per unit).  The value is a node's complete post-build chain
  // vector; a hit replaces the hitting node's chains wholesale with
  // header copies sharing the cached bodies.
  std::unordered_map<std::string, ProcId> chain_cache;
  std::string key;
  auto key_add = [&key](const void* p, std::size_t n) {
    key.append(static_cast<const char*>(p), n);
  };
  std::uint64_t chains_built = 0, chains_shared = 0, records_elided = 0;

  // Dominated-writer scratch for the virgin bookkeeping below: one bit per
  // processor with a dominated record naming the current unit this pass.
  std::vector<std::uint64_t> dom_writers(
      (static_cast<std::size_t>(nprocs) + 63) / 64);

  DSM_CHECK(gc_refs_.empty());
  for (UnitId u = static_cast<UnitId>(start); u < num_units;
       u += static_cast<UnitId>(step)) {
    chain_cache.clear();
    resolve_memo.clear();
    SharedState::VirginHistory& virgin = shared.virgin_history[u];

    // --- virgin-node bookkeeping (DESIGN.md §8) --------------------------
    // Union of dominated writers over every node's pending entries.  A
    // dominated record is pending at every node that never consumed it, so
    // a writer absent here has no record entering any build this pass.
    std::fill(dom_writers.begin(), dom_writers.end(), 0);
    bool any_unit_dom = false;
    for (ProcId x = 0; x < nprocs; ++x) {
      for (const PendingInterval& pi : shared.nodes[x]->pending_[u]) {
        if (pi.seq <= through[pi.proc]) {
          dom_writers[static_cast<std::size_t>(pi.proc) >> 6] |=
              std::uint64_t{1} << (pi.proc & 63);
          any_unit_dom = true;
        }
      }
    }
    // A still-virgin node whose OWN records are about to be flattened
    // stops being virgin now: it adopts the shared store — exactly its
    // per-node state, by induction — and takes the per-node path below.
    // Every remaining virgin's pending therefore holds the identical full
    // dominated batch (pending never holds own records), which is what
    // makes one shared store build exact for all of them.
    if (any_unit_dom) {
      for (ProcId w = 0; w < nprocs; ++w) {
        if (((dom_writers[static_cast<std::size_t>(w) >> 6] >> (w & 63)) &
             1) == 0) {
          continue;
        }
        if (shared.sharers->Register(u, w)) continue;  // already a sharer
        Node& writer = *shared.nodes[w];
        if (!virgin.chains.empty()) writer.flattened_[u] = virgin.chains;
        if (!virgin.elided.empty()) writer.elided_[u] = virgin.elided;
      }
    }
    if (shared.sharers->SharerCount(u) == nprocs &&
        (!virgin.chains.empty() || !virgin.elided.empty())) {
      // Every node adopted the shared history; nothing will read it again.
      std::vector<FlattenedChain>().swap(virgin.chains);
      std::vector<DiffRun>().swap(virgin.elided);
    }
    bool virgin_built = false;        // store build done for this pass
    std::uint64_t virgin_new_chains = 0;
    std::uint64_t virgin_elided = 0;  // records elided by the store build
    int virgin_consumers = 0;         // virgins with dominated pending

    for (ProcId x = 0; x < nprocs; ++x) {
      Node& node = *shared.nodes[x];
      std::vector<PendingInterval>& pend = node.pending_[u];
      if (pend.empty()) continue;
      if (!shared.sharers->IsSharer(u, x)) {
        // Virgin fast path (DESIGN.md §8): this node never faulted on the
        // unit, so its dominated batch equals every other virgin's and —
        // having consumed no deliveries — its read-interest bitmap is
        // empty, collapsing the read-aware predicate to the record kind.
        // The first virgin flattens the shared batch once into the virgin
        // store; the rest only drop their dominated entries.  Chain
        // headers thus stop scaling with the cluster size on units most
        // nodes never touch.
        live.clear();
        kept.clear();
        elide_accum.clear();
        bool any_dom = false;
        for (const PendingInterval& pi : pend) {
          if (pi.seq > through[pi.proc]) {
            live.push_back(pi);
            continue;
          }
          any_dom = true;
          if (virgin_built) continue;  // first virgin resolved the batch
          const std::uint64_t rkey =
              (std::uint64_t{static_cast<std::uint32_t>(pi.proc)} << 32) |
              pi.seq;
          auto memo = resolve_memo.find(rkey);
          if (memo == resolve_memo.end()) {
            const std::shared_ptr<const IntervalRecord>* owner =
                find_dominated(pi.proc, pi.seq);
            const IntervalRecord* rec = owner->get();
            const int di = rec->IndexOf(u);
            DSM_CHECK_GE(di, 0);
            memo = resolve_memo
                       .emplace(rkey,
                                Resolved{rec, owner, di, vc_sum_of(*rec)})
                       .first;
            gc_refs_.push_back({u, rec, di, memo->second.vc_sum});
          }
          const Resolved& res = memo->second;
          if (read_aware && res.rec->lock_release) {
            const Diff& diff =
                res.rec->diffs[static_cast<std::size_t>(res.di)];
            elide_accum.insert(elide_accum.end(), diff.runs().begin(),
                               diff.runs().end());
            ++virgin_elided;
            continue;
          }
          kept.push_back(res);
        }
        if (!any_dom) continue;
        ++virgin_consumers;
        pend.assign(live.begin(), live.end());
        if (virgin_built) continue;
        virgin_built = true;
        if (!elide_accum.empty()) {
          std::sort(elide_accum.begin(), elide_accum.end(),
                    [](const DiffRun& a, const DiffRun& b) {
                      return a.word_offset < b.word_offset;
                    });
          elide_canon.clear();
          for (const DiffRun& r : elide_accum) {
            if (!elide_canon.empty() &&
                r.word_offset <= elide_canon.back().word_offset +
                                     elide_canon.back().word_count) {
              DiffRun& back = elide_canon.back();
              const std::uint32_t end =
                  std::max(back.word_offset + back.word_count,
                           r.word_offset + r.word_count);
              back.word_count = end - back.word_offset;
            } else {
              elide_canon.push_back(r);
            }
          }
          if (virgin.elided.empty()) {
            virgin.elided = elide_canon;
          } else {
            virgin.elided = Diff::MergeRuns(virgin.elided, elide_canon);
          }
        }
        if (kept.empty()) continue;
        for (ProcId w = 0; w < nprocs; ++w) foreign_vcw[w].clear();
        for (const Resolved& q : kept) {
          for (ProcId w = 0; w < nprocs; ++w) {
            if (q.rec->proc != w) foreign_vcw[w].push_back(q.rec->vc[w]);
          }
        }
        for (ProcId w = 0; w < nprocs; ++w) {
          std::sort(foreign_vcw[w].begin(), foreign_vcw[w].end());
        }
        auto may_absorb_v = [&](ProcId w, Seq first_seq, Seq tail_seq) {
          const std::vector<Seq>& v = foreign_vcw[w];
          auto it = std::lower_bound(v.begin(), v.end(), first_seq);
          return it == v.end() || *it >= tail_seq;
        };
        std::vector<FlattenedChain>& flat = virgin.chains;
        for (ProcId w = 0; w < nprocs; ++w) {
          std::size_t open = flat.size();
          for (std::size_t i = 0; i < flat.size(); ++i) {
            if (flat[i].writer == w) open = i;
          }
          for (const Resolved& r : kept) {
            if (r.rec->proc != w) continue;
            const Diff& diff =
                r.rec->diffs[static_cast<std::size_t>(r.di)];
            if (open != flat.size() && !flat[open].blocked &&
                may_absorb_v(w, flat[open].first_seq, r.rec->seq)) {
              FlattenedChain& c = flat[open];
              ChainBody& b = c.MutableBody();
              b.runs = Diff::MergeRuns(b.runs, diff.runs());
              b.payload_words = Diff::RunWords(b.runs);
              b.last_vc = r.rec->vc;
              b.stamps = std::make_shared<const StampNode>(StampNode{
                  StampRef{r.rec->diffed, static_cast<std::uint32_t>(r.di)},
                  std::move(b.stamps)});
              c.last_seq = r.rec->seq;
              // Virgin-store bodies are adopted by fault paths with no
              // synchronization point to flag them at, so the store's
              // header stays permanently "shared" (every copy inherits
              // the flag; a later store extension clones first).
              c.body_shared = true;
            } else {
              FlattenedChain c;
              c.writer = w;
              c.first_seq = r.rec->seq;
              c.last_seq = r.rec->seq;
              c.rec = *r.owner;
              c.di = r.di;
              flat.push_back(std::move(c));
              ++virgin_new_chains;
              open = flat.size() - 1;
            }
          }
        }
        for (FlattenedChain& c : flat) {
          if (c.blocked) continue;
          const std::vector<Seq>& v = foreign_vcw[c.writer];
          if (!v.empty() && v.back() >= c.first_seq) c.blocked = true;
        }
        continue;
      }
      live.clear();
      kept.clear();
      elide_accum.clear();
      bool any_dom = false;
      for (const PendingInterval& pi : pend) {
        if (pi.seq > through[pi.proc]) {
          live.push_back(pi);
          continue;
        }
        any_dom = true;
        const std::uint64_t rkey =
            (std::uint64_t{static_cast<std::uint32_t>(pi.proc)} << 32) |
            pi.seq;
        auto memo = resolve_memo.find(rkey);
        if (memo == resolve_memo.end()) {
          const std::shared_ptr<const IntervalRecord>* owner =
              find_dominated(pi.proc, pi.seq);
          const IntervalRecord* rec = owner->get();
          const int di = rec->IndexOf(u);
          DSM_CHECK_GE(di, 0);
          memo = resolve_memo.emplace(
                             rkey, Resolved{rec, owner, di, vc_sum_of(*rec)})
                     .first;
          // Route the record to the canonical base exactly once per unit:
          // every resolved record is kept or elided by SOME node, and
          // either way its words must reach the base.
          gc_refs_.push_back({u, rec, di, memo->second.vc_sum});
        }
        const Resolved& res = memo->second;
        const Diff& diff =
            res.rec->diffs[static_cast<std::size_t>(res.di)];
        if (read_aware && res.rec->lock_release &&
            !node.tracker_.ReadsAnyOf(u, diff.runs())) {
          elide_accum.insert(elide_accum.end(), diff.runs().begin(),
                             diff.runs().end());
          ++records_elided;
          continue;
        }
        kept.push_back(res);
      }
      if (!any_dom) continue;
      pend.assign(live.begin(), live.end());

      if (!elide_accum.empty()) {
        // Canonicalize (sort + coalesce) the elided words and fold them
        // into the node's outstanding elided-run list for the unit.
        std::sort(elide_accum.begin(), elide_accum.end(),
                  [](const DiffRun& a, const DiffRun& b) {
                    return a.word_offset < b.word_offset;
                  });
        elide_canon.clear();
        for (const DiffRun& r : elide_accum) {
          if (!elide_canon.empty() &&
              r.word_offset <= elide_canon.back().word_offset +
                                   elide_canon.back().word_count) {
            DiffRun& back = elide_canon.back();
            const std::uint32_t end =
                std::max(back.word_offset + back.word_count,
                         r.word_offset + r.word_count);
            back.word_count = end - back.word_offset;
          } else {
            elide_canon.push_back(r);
          }
        }
        std::vector<DiffRun>& elided = node.elided_[u];
        if (elided.empty()) {
          elided = elide_canon;
        } else {
          elided = Diff::MergeRuns(elided, elide_canon);
        }
      }
      if (kept.empty()) continue;

      // Pre-state identity: (body pointer, blocked) per chain suffices.
      // A fault always consumes (clears) the chains it touches, and a GC
      // extension copy-on-writes any shared body, so two chains with the
      // same body pointer are bit-identical except for the blocked flag,
      // which a later build may set on one sharer's header only.
      key.clear();
      for (const FlattenedChain& c : node.flattened_[u]) {
        key.push_back(c.blocked ? 1 : 0);
        const void* identity = c.rec != nullptr
                                   ? static_cast<const void*>(c.rec.get())
                                   : static_cast<const void*>(c.body.get());
        key_add(&identity, sizeof(identity));
      }
      key.push_back('\xff');
      for (const Resolved& r : kept) {
        key_add(&r.rec, sizeof(r.rec));
      }
      auto hit = chain_cache.find(key);
      if (hit != chain_cache.end()) {
        // Identical pre-state and inputs: adopt the builder node's result
        // (cheap headers; the bodies — runs, stamps, clocks — are
        // shared).  The builder's vector is final (every node is visited
        // once per unit), and this node's vector was its element-wise
        // twin before the build, so only entries the build touched need
        // copying — long-lived chain lists on never-faulting nodes would
        // otherwise pay a full refcount round per chain per pass.
        // Non-const: adopting flags the builder's merged bodies as shared
        // (safe — one worker owns every node of this unit, see above), so
        // the builder's own next extension copy-on-writes instead of
        // mutating a body this node now also holds.
        std::vector<FlattenedChain>& built =
            shared.nodes[hit->second]->flattened_[u];
        std::vector<FlattenedChain>& mine = node.flattened_[u];
        DSM_CHECK_GE(built.size(), mine.size());
        for (std::size_t i = 0; i < mine.size(); ++i) {
          FlattenedChain& b = built[i];
          FlattenedChain& m = mine[i];
          if (m.rec.get() != b.rec.get() || m.body.get() != b.body.get() ||
              m.blocked != b.blocked || m.last_seq != b.last_seq) {
            if (b.body != nullptr) b.body_shared = true;
            m = b;
            ++chains_shared;
          }
        }
        for (std::size_t i = mine.size(); i < built.size(); ++i) {
          if (built[i].body != nullptr) built[i].body_shared = true;
          mine.push_back(built[i]);
          ++chains_shared;
        }
        continue;
      }
      // The fault path's absorption predicate — "no foreign interval q
      // with chain_first happened-before q but not candidate-tail
      // happened-before q" — only reads q.vc[w] for a chain of writer w:
      // it fails exactly when some foreign q has first_seq <= q.vc[w] <
      // tail_seq.  Batches from lock-heavy programs can hold hundreds of
      // records per unit, so evaluate it by binary search over the
      // sorted foreign clock entries instead of rescanning the batch.
      // (Elided records are excluded: the chains they would have ordered
      // against are not built for this node, and their words reach the
      // image via the base refresh regardless of absorption shape.)
      for (ProcId w = 0; w < nprocs; ++w) foreign_vcw[w].clear();
      for (const Resolved& q : kept) {
        for (ProcId w = 0; w < nprocs; ++w) {
          if (q.rec->proc != w) foreign_vcw[w].push_back(q.rec->vc[w]);
        }
      }
      for (ProcId w = 0; w < nprocs; ++w) {
        std::sort(foreign_vcw[w].begin(), foreign_vcw[w].end());
      }
      auto may_absorb = [&](ProcId w, Seq first_seq, Seq tail_seq) {
        const std::vector<Seq>& v = foreign_vcw[w];
        auto it = std::lower_bound(v.begin(), v.end(), first_seq);
        return it == v.end() || *it >= tail_seq;
      };

      std::vector<FlattenedChain>& flat = node.flattened_[u];
      for (ProcId w = 0; w < nprocs; ++w) {
        // Only the last existing chain of writer w may be extended.
        std::size_t open = flat.size();
        for (std::size_t i = 0; i < flat.size(); ++i) {
          if (flat[i].writer == w) open = i;
        }
        for (const Resolved& r : kept) {
          if (r.rec->proc != w) continue;
          const Diff& diff = r.rec->diffs[static_cast<std::size_t>(r.di)];
          if (open != flat.size() && !flat[open].blocked &&
              may_absorb(w, flat[open].first_seq, r.rec->seq)) {
            FlattenedChain& c = flat[open];
            // Copy-on-write: converts a single-record chain to a merged
            // body, or clones a body shared with other nodes whose
            // pending sets diverged.
            ChainBody& b = c.MutableBody();
            b.runs = Diff::MergeRuns(b.runs, diff.runs());
            b.payload_words = Diff::RunWords(b.runs);
            b.last_vc = r.rec->vc;
            b.stamps = std::make_shared<const StampNode>(StampNode{
                StampRef{r.rec->diffed, static_cast<std::uint32_t>(r.di)},
                std::move(b.stamps)});
            c.last_seq = r.rec->seq;
          } else {
            // New chains start in the single-record form: one shared_ptr
            // copy, no merged body until (unless) something is absorbed.
            FlattenedChain c;
            c.writer = w;
            c.first_seq = r.rec->seq;
            c.last_seq = r.rec->seq;
            c.rec = *r.owner;
            c.di = r.di;
            flat.push_back(std::move(c));
            ++chains_built;
            open = flat.size() - 1;
          }
        }
      }
      // A foreign reclaimed interval ordered after a chain's head means
      // no later interval may ever be absorbed into the chain (the fault
      // path would re-check this against the record, which is about to be
      // reclaimed — freeze the verdict in the flag).
      for (FlattenedChain& c : flat) {
        if (c.blocked) continue;
        const std::vector<Seq>& v = foreign_vcw[c.writer];
        if (!v.empty() && v.back() >= c.first_seq) c.blocked = true;
      }
      chain_cache.emplace(key, x);
    }
    // The store build ran once; credit it as if each consuming virgin had
    // built (shared) it, keeping the counters comparable across runs with
    // different sharer populations.
    if (virgin_consumers > 0) {
      chains_built += virgin_new_chains;
      chains_shared +=
          virgin_new_chains * static_cast<std::uint64_t>(virgin_consumers - 1);
      records_elided +=
          virgin_elided * static_cast<std::uint64_t>(virgin_consumers);
    }
  }
  ArchiveTelemetry& tel = shared.archive_telemetry;
  tel.chains_built.fetch_add(chains_built, std::memory_order_relaxed);
  tel.chains_shared.fetch_add(chains_shared, std::memory_order_relaxed);
  tel.records_elided.fetch_add(records_elided, std::memory_order_relaxed);

  // Checkpoint-complete mode (DESIGN.md §9).  The pending-driven routing
  // above sends a record's words to the base only when some node still had
  // the record pending — sufficient for the protocol (every node that
  // consumed it already applied its words), but a recovery checkpoint must
  // hold EVERY dominated interval: the victim's rebuilt image is base +
  // surviving log, with nothing else to fall back on.  Under an armed
  // fault plan, replace this stripe's base-routing refs wholesale with the
  // full dominated record set.  Host-side only (the chain builds above are
  // untouched), and armed-plan-gated, so fault-free runs stay
  // bit-identical.  Each (unit, record) pair appears exactly once; the
  // apply pass orders each unit group in happens-before order itself.
  if (shared.fault != nullptr) {
    gc_refs_.clear();
    for (ProcId p = 0; p < nprocs; ++p) {
      for (const std::shared_ptr<const IntervalRecord>& owner :
           dom_prefix_of(p)) {
        const IntervalRecord* rec = owner.get();
        const std::uint64_t sum = rec->vc.Sum();
        for (std::size_t k = 0; k < rec->units.size(); ++k) {
          const UnitId u = rec->units[k];
          if (u % static_cast<UnitId>(step) != static_cast<UnitId>(start)) {
            continue;
          }
          gc_refs_.push_back({u, rec, static_cast<int>(k), sum});
        }
      }
    }
    std::sort(gc_refs_.begin(), gc_refs_.end(),
              [](const GcRef& a, const GcRef& b) { return a.unit < b.unit; });
  }
}

// Apply phase (pass 2): flatten this stripe's referenced diffs into the
// canonical base, per unit in happens-before order, so ordered overwrites
// land newest-last.  Clock sums give a cheap deterministic linear
// extension: r happened-before q implies q.vc >= r.vc pointwise (covering
// a seq means the covering clock was merged from the closing writer's
// clock), strictly so in q's own component, hence sum(r.vc) < sum(q.vc).
// Concurrent records tie-break by (proc, seq); race-free programs write
// disjoint words in concurrent intervals, so the tie-break is
// unobservable there.  (Sums are precomputed at resolve time — deriving
// them inside the comparator dominated this pass on lock-heavy batches.)
// Also runs the base release-check for the stripe: a base neither a chain
// nor an elided-run list references any more goes back to the pool
// (elided runs pin the base because the silent refresh reads it at the
// next fault).  Release never overlaps a concurrent worker's apply: a
// unit with fresh references always retains chains or elided runs.
void Node::GcApplyStripe(int start, int step) {
  SharedState& shared = shared_;
  const int nprocs = shared.config.num_procs;
  const std::size_t num_units = shared.heap.num_units();

  // gc_refs_ is already grouped by unit in ascending order (the flatten
  // stripe walks units ascending), so only each group needs the
  // happens-before sort — far cheaper than one global sort on lock-heavy
  // batches.
  for (std::size_t i = 0; i < gc_refs_.size();) {
    const UnitId u = gc_refs_[i].unit;
    std::size_t j = i;
    while (j < gc_refs_.size() && gc_refs_[j].unit == u) ++j;
    std::sort(gc_refs_.begin() + static_cast<std::ptrdiff_t>(i),
              gc_refs_.begin() + static_cast<std::ptrdiff_t>(j),
              [](const GcRef& a, const GcRef& b) {
                if (a.vc_sum != b.vc_sum) return a.vc_sum < b.vc_sum;
                return a.rec->proc != b.rec->proc
                           ? a.rec->proc < b.rec->proc
                           : a.rec->seq < b.rec->seq;
              });
    std::span<std::byte> base = shared.canonical->Ensure(u);
    const IntervalRecord* last = nullptr;
    for (; i < j; ++i) {
      const GcRef& r = gc_refs_[i];
      if (r.rec == last) continue;  // several nodes referenced it
      last = r.rec;
      r.rec->diffs[static_cast<std::size_t>(r.di)].Apply(base);
    }
  }
  gc_refs_.clear();

  // Armed fault plan: the bases ARE the recovery checkpoints.  Never
  // release one — a released base re-Ensures ZEROED, silently dropping
  // checkpoint content the victim's rebuild depends on (DESIGN.md §9).
  if (shared.fault != nullptr) return;

  for (UnitId u = static_cast<UnitId>(start); u < num_units;
       u += static_cast<UnitId>(step)) {
    if (!shared.canonical->Has(u)) continue;
    // The virgin store pins the base too: any never-faulted node may adopt
    // its chains/elided runs at a later fault and silently refresh from it.
    bool needed = !shared.virgin_history[u].chains.empty() ||
                  !shared.virgin_history[u].elided.empty();
    for (ProcId x = 0; x < nprocs; ++x) {
      // Lazy-header invariant (DESIGN.md §8): per-node chain state exists
      // only on registered sharers; everyone else reads the virgin store.
      DSM_DCHECK((shared.nodes[x]->flattened_[u].empty() &&
                  shared.nodes[x]->elided_[u].empty()) ||
                 shared.sharers->IsSharer(u, x));
      needed = needed || !shared.nodes[x]->flattened_[u].empty() ||
               !shared.nodes[x]->elided_[u].empty();
    }
    if (!needed) shared.canonical->Release(u);
  }
}

// Reclaim phase (pass 3): prune this node's own dominated archive prefix
// (FlattenedChains keep the lazy-diffing stamp arrays of their member
// records alive).  Runs after the barrier window closes, concurrent with
// resumed application threads: archives are mutex-guarded, every
// dominated reference was converted to a chain or elided run in the
// flatten phase, and notices_seen_ >= through everywhere, so no fault or
// notice collection can touch the pruned prefix.
void Node::GcPruneOwn(const VectorClock& through) {
  // Drop the pass's shared snapshot first: records survive the prune
  // exactly as long as a FlattenedChain retains them.
  shared_.gc_dom_prefix[id_].clear();
  shared_.gc_dom_ready[id_].store(0, std::memory_order_relaxed);
  shared_.archives[id_]->PruneThrough(through[id_]);
}

void Node::CollectNotices(const VectorClock& target,
                          std::size_t* notice_bytes,
                          std::vector<const IntervalRecord*>& out) const {
  out.clear();
  std::size_t bytes = 0;
  for (ProcId p = 0; p < num_procs(); ++p) {
    if (p == id_) continue;
    if (target[p] <= notices_seen_[p]) continue;
    auto range = shared_.archives[p]->Range(notices_seen_[p], target[p]);
    for (const IntervalRecord* rec : range) {
      bytes += rec->NoticeBytes();
      out.push_back(rec);
    }
  }
  if (notice_bytes != nullptr) *notice_bytes = bytes;
}

void Node::InvalidateFrom(
    const std::vector<const IntervalRecord*>& records) {
  const CostModel& cost = shared_.config.cost;
  for (const IntervalRecord* rec : records) {
    // Read interest only feeds the LRC archive GC's read-aware
    // flattening; HLRC has no archive, so its read path keeps the tight
    // credit loop.
    if (rec->lock_release && !hlrc_) tracker_.EnableInterest();
    for (UnitId unit : rec->units) {
      pending_[unit].push_back({rec->proc, rec->seq});
      const UnitState s = table_.state(unit);
      if (s != UnitState::kInvalid) {
        table_.set_state(unit, UnitState::kInvalid);
        comm_stats_.counters().units_invalidated += 1;
        clock_.Advance(cost.mprotect_op);
      }
    }
    notices_seen_[rec->proc] = std::max(notices_seen_[rec->proc], rec->seq);
  }
}

std::size_t Node::OutgoingNoticeBytes() {
  std::size_t bytes = 0;
  for (const IntervalRecord* rec :
       shared_.archives[id_]->Range(last_sent_seq_, vc_[id_])) {
    bytes += rec->NoticeBytes();
  }
  last_sent_seq_ = vc_[id_];
  return bytes;
}

void Node::Barrier() {
  if (num_procs() == 1) return;
  if (!protocol_enabled()) {
    // Reference backend: pure rendezvous.  Clocks still reconcile to the
    // slowest arrival (that is how a barrier behaves on any machine), but
    // no notices move and no communication is modelled.  The race
    // detector brackets the rendezvous like any backend's barrier: vc_
    // is never maintained here, which is exactly why the detector keeps
    // its own clocks.
    if (race_ != nullptr) race_->OnBarrierArrive(id_);
    BarrierService::Result res =
        shared_.barrier->Arrive(id_, vc_, clock_.now(), 0);
    if (race_ != nullptr) race_->OnBarrierDepart(id_);
    clock_.AdvanceTo(res.base_time);
    return;
  }
  const CostModel& cost = shared_.config.cost;

  CloseInterval();
  const std::size_t arrival_bytes = OutgoingNoticeBytes();

  // Coordinator for this barrier: proc 0 unless an at-barrier event kills
  // it at this phase — then the lowest surviving rank assumes the
  // coordinator roles for exactly this barrier (DESIGN.md §9).  Every
  // node derives the same answer from the armed schedule and its own
  // sync_phase_; the barrier service cross-checks the agreement.
  const ProcId coord = shared_.CoordinatorFor(sync_phase_);

  // Race-detector barrier bracket (observational; DESIGN.md §10): merge
  // this node's detector clock into the generation on arrival, adopt the
  // fully merged clock once the real barrier releases us.  Both sides
  // fire before any crash-recovery point of this barrier, so a rebuilt
  // victim continues with ordering already settled.
  if (race_ != nullptr) race_->OnBarrierArrive(id_);
  BarrierService::Result res = shared_.barrier->Arrive(
      id_, vc_, clock_.now(), arrival_bytes, hlrc_ ? &notices_seen_ : nullptr,
      coord);
  if (race_ != nullptr) race_->OnBarrierDepart(id_);

  // Extended barrier window: every processor is now inside the barrier,
  // so no diff request is in flight anywhere.  Drain the request flags
  // peers set during the finished phase into the plain per-unit view
  // consulted by WriteFault, then rendezvous again so no processor starts
  // the next phase (and issues new requests) before every drain finished.
  // This quantizes the lazy-diffing cost decisions to barrier phases,
  // making modelled time independent of host thread scheduling.
  //
  // HLRC diffs eagerly and keeps no diff archive, so neither the
  // lazy-diffing flags nor the archive GC exist for it; the idle window
  // instead hosts the trivial notice-log watermark prune.
  if (!hlrc_) {
    for (std::size_t u = 0; u < diff_requested_.size(); ++u) {
      if (diff_requested_[u].load(std::memory_order_relaxed) != 0) {
        diff_requested_[u].store(0, std::memory_order_relaxed);
        diff_request_seen_[u] = 1;
      }
    }
  }
  // Archive GC rides the same idle window (DESIGN.md §6), striped over
  // every node: each flattens all nodes' dominated pending notices for
  // its own unit stripe, an inner rendezvous separates flattening from
  // base application (applies read other stripes' reclaimed records), and
  // the dominated archive prefixes are pruned after the window closes
  // (mutex-guarded; nothing live references them).  Every node derives
  // the same gc_due verdict from purely local state — gc_history holds
  // min(completed barriers, lag) entries, so "history full" is exactly
  // sync_phase_ >= lag — and proc 0 only appends to the history after the
  // inner rendezvous proved every stripe worker took its copy of the
  // flatten target.
  const int gc_interval = shared_.config.gc_interval_barriers;
  const auto gc_lag = static_cast<std::uint32_t>(
      std::max(1, shared_.config.gc_lag_barriers));
  const bool gc_due =
      !hlrc_ && gc_interval > 0 && sync_phase_ >= gc_lag &&
      (sync_phase_ + 1) % static_cast<std::uint32_t>(gc_interval) == 0;
  bool gc_ran = false;
  VectorClock gc_through;
  if (gc_due) {
    // Stable read: proc 0 appends to gc_history only after the closing
    // rendezvous below, which happens-before every other node's next
    // Arrive — so the deque is frozen while any node copies the front.
    gc_through = shared_.gc_history.front();
    // Size the pass (archives are frozen, so every node computes the
    // same count and picks the same mode).  Light passes — steady-state
    // barrier programs reclaim a handful of records per barrier — run
    // serially on proc 0 inside the existing window: an inner rendezvous
    // would cost more in wakeups than the whole pass.  Heavy lock-driven
    // batches stripe across every idle node, with the rendezvous
    // separating flattening from base application.
    std::size_t dominated = 0;
    for (ProcId p = 0; p < num_procs(); ++p) {
      dominated += shared_.archives[p]->CountThrough(gc_through[p]);
    }
    gc_ran = dominated > 0;
    // Serial-vs-striped switch, hardware-concurrency aware (see
    // GcSerialPassLimit): identical on every node, so all pick one mode.
    if (gc_ran && dominated <= shared_.gc_serial_pass_limit) {
      if (id_ == res.coordinator) {
        // Serial-GC role: normally proc 0; migrated to the lowest
        // surviving rank for a barrier whose schedule kills proc 0 (the
        // about-to-crash victim's pass would die with it) and back once
        // the victim has rebuilt.
        GcFlattenStripe(gc_through, 0, 1);
        GcApplyStripe(0, 1);
        // Checkpoint watermark (DESIGN.md §9): everything <= gc_through is
        // now in the bases.  Published before the closing rendezvous, which
        // happens-before any recovery read of it.
        if (shared_.fault != nullptr) shared_.checkpoint_vc = gc_through;
        ++shared_.gc_passes;
      }
    } else if (gc_ran) {
      GcFlattenStripe(gc_through, id_, num_procs());
      shared_.barrier->Rendezvous();
      GcApplyStripe(id_, num_procs());
      if (id_ == res.coordinator) {
        // Striped watermark: the coordinator's apply may finish before its
        // peers', but the only reader — a recovering victim — reads after
        // the closing rendezvous, which orders it after every stripe's
        // apply.
        if (shared_.fault != nullptr) shared_.checkpoint_vc = gc_through;
        ++shared_.gc_passes;
      }
    }
  }
  // HLRC rides the same idle window for its notice-log watermark prune
  // (and, under an armed schedule, for flipping crash-driven re-home
  // batches into the shared override table at a point every node passes
  // together): every peer is parked between Arrive and Rendezvous, so
  // their notices_seen_ clocks are frozen and nobody can be flushing,
  // fetching, or collecting while the coordinator works.
  if (hlrc_ && id_ == res.coordinator) {
    if (shared_.fault != nullptr) shared_.ApplyPendingRehomes();
    HlrcPruneNotices(res.min_seen);
  }
  shared_.barrier->Rendezvous();
  // History maintenance after the rendezvous: ordered after every
  // gc_through copy above and before any node's next barrier (its next
  // Arrive cannot complete before the coordinator's, which follows this
  // push).
  if (id_ == res.coordinator && gc_interval > 0 && !hlrc_) {
    shared_.gc_history.push_back(res.global_vc);
    while (shared_.gc_history.size() > gc_lag) {
      shared_.gc_history.pop_front();
    }
  }
  if (gc_ran) GcPruneOwn(gc_through);
  if (shared_.fault != nullptr) {
    const int ev = shared_.fault->MatchAtBarrier(id_, sync_phase_);
    if (ev >= 0) {
      // Crash point "at barrier n": the victim dies as barrier n completes
      // (its interval is archived, any GC pass of this window — run by the
      // failed-over coordinator if the victim is proc 0 — has fully
      // applied and pruned) and rebuilds to the barrier's global clock.
      // The CollectNotices below then finds nothing new — recovery already
      // installed everything the global cut covers.
      RecoveryCoordinator::Recover(*this, res.global_vc, ev);
    }
  }
  ++sync_phase_;
  // A completed barrier starts a fresh phase: lock-chain sub-phases are
  // meaningful only between two barriers (stamp keys embed sync_phase_,
  // so stale sub-phases could never collide anyway — resetting keeps all
  // nodes aligned at phase entry, mirroring gc-free barrier programs).
  lock_subphase_ = 0;

  std::size_t incoming_bytes = 0;
  std::vector<const IntervalRecord*>& records = notice_scratch_;
  CollectNotices(res.global_vc, &incoming_bytes, records);
  // Sparse-clock telemetry (DESIGN.md §8): wire bytes the consumed
  // notices' interval clocks would cost, run-length encoded vs dense.
  for (const IntervalRecord* rec : records) {
    comm_stats_.counters().notice_clock_bytes += rec->vc.EncodedBytes();
  }
  comm_stats_.counters().notice_clock_bytes_dense +=
      records.size() * VectorClock::DenseEncodedBytes(num_procs());

  // Modelled barrier cost (centralized manager, normally proc 0 — the
  // coordinator when proc 0 crashes at this barrier): all clients ship
  // arrival messages; the manager processes every arrival, then ships
  // release messages carrying the write notices each client is missing.
  const VirtualNanos base =
      res.base_time + shared_.net.RoundTripTime(res.max_arrival_bytes, 0) +
      cost.barrier_fixed +
      cost.barrier_per_arrival * (num_procs() - 1);
  VirtualNanos release_time = base;
  if (id_ != res.coordinator) {
    release_time += shared_.net.config().ns_per_byte *
                    static_cast<VirtualNanos>(incoming_bytes);
    net_stats_.Record(MessageKind::kBarrierArrival, arrival_bytes);
    net_stats_.Record(MessageKind::kBarrierRelease, incoming_bytes);
    comm_stats_.counters().sync_messages += 2;
  }
  clock_.AdvanceTo(release_time);

  InvalidateFrom(records);
  vc_.Merge(res.global_vc);

  if (shared_.config.aggregation == AggregationMode::kDynamic) {
    aggregator_.OnSynchronization();
  }
}

void Node::AcquireLock(int lock_id) {
  if (num_procs() == 1) return;
  if (!protocol_enabled()) {
    // Reference backend: mutual exclusion only.  The grant cannot arrive
    // before the previous holder released.
    LockService::Grant grant = shared_.locks->Acquire(lock_id, id_);
    if (race_ != nullptr) {
      race_->OnLockAcquire(id_, lock_id, grant.cached, grant.chain_pos);
    }
    clock_.AdvanceTo(grant.release_time);
    return;
  }
  const CostModel& cost = shared_.config.cost;

  // Read interest feeds the LRC archive GC only (no archive under HLRC).
  if (!hlrc_) tracker_.EnableInterest();
  LockService::Grant grant = shared_.locks->Acquire(lock_id, id_);
  // Detector acquire (before the cached early-out: a cached re-acquire
  // still tracks the held set; a transfer merges the lock's clock).
  if (race_ != nullptr) {
    race_->OnLockAcquire(id_, lock_id, grant.cached, grant.chain_pos);
  }
  if (grant.cached) {
    // Token already local: no communication, constant local cost.
    clock_.Advance(2 * kNanosPerMicro);
    return;
  }
  // Lock-chain-aware lazy diffing (DESIGN.md §4): a token transfer
  // advances this node's sub-phase to the transfer's position in the
  // service-wide hand-off order, so diff requests issued from here on are
  // ordered after — and served from the cache of — anything materialized
  // under the previous holder's acquires.
  if (shared_.config.lock_chain_phases && !hlrc_) {
    lock_subphase_ = static_cast<std::uint32_t>(grant.chain_pos);
  }

  VectorClock target = vc_;
  target.Merge(grant.release_vc);
  std::size_t notice_bytes = 0;
  std::vector<const IntervalRecord*>& records = notice_scratch_;
  CollectNotices(target, &notice_bytes, records);
  for (const IntervalRecord* rec : records) {
    comm_stats_.counters().notice_clock_bytes += rec->vc.EncodedBytes();
  }
  comm_stats_.counters().notice_clock_bytes_dense +=
      records.size() * VectorClock::DenseEncodedBytes(num_procs());

  // Request travels to the manager/holder; the grant returns with the
  // write notices the acquirer has not yet seen.  The grant cannot arrive
  // before the previous holder released.
  clock_.AdvanceTo(grant.release_time);
  clock_.Advance(shared_.net.RoundTripTime(16, 16 + notice_bytes) +
                 cost.lock_manager_overhead);
  net_stats_.Record(MessageKind::kLockRequest, 16);
  net_stats_.Record(MessageKind::kLockGrant, 16 + notice_bytes);
  comm_stats_.counters().sync_messages += 2;

  InvalidateFrom(records);
  vc_.Merge(target);

  if (shared_.config.aggregation == AggregationMode::kDynamic) {
    aggregator_.OnSynchronization();
  }
}

void Node::ReleaseLock(int lock_id) {
  if (num_procs() == 1) return;
  CloseInterval(/*lock_release=*/true);  // no-op when the protocol is off
  // Detector release strictly before the service release: the next
  // grantee's acquire hook must find this release's clock on the lock.
  if (race_ != nullptr) race_->OnLockRelease(id_, lock_id);
  shared_.locks->Release(lock_id, id_, vc_, clock_.now());
}

}  // namespace dsm

#include "apps/life.h"

#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace dsm::apps {

LifeParams LifeDataset(const std::string& label) {
  // "tiny" keeps the conformance cell cheap (a 64x64 soup crosses four
  // 4 KB pages, so 16 K aggregation still has units to merge); "256x256"
  // is a scaled board for local visualization runs.
  if (label == "tiny") return {"tiny", 64, 64, 10, 35, 0x11febeefull};
  if (label == "256x256") return {"256x256", 256, 256, 24, 35, 0x11febef0ull};
  DSM_CHECK(false) << "unknown Life dataset " << label;
  return {};
}

Life::Life(LifeParams params) : params_(std::move(params)) {
  DSM_CHECK_GT(params_.rows, 2u);
  DSM_CHECK_GT(params_.cols, 2u);
}

std::size_t Life::heap_bytes() const {
  return 2 * params_.rows * params_.cols * sizeof(std::int32_t) + (64u << 10);
}

void Life::Setup(Runtime& rt) {
  grid_[0] = rt.AllocUnitAligned<std::int32_t>(params_.rows * params_.cols,
                                               "life_a");
  grid_[1] = rt.AllocUnitAligned<std::int32_t>(params_.rows * params_.cols,
                                               "life_b");
  reducer_.Setup(rt, "life_sum");
}

void Life::Body(Proc& p) {
  const std::size_t R = params_.rows;
  const std::size_t C = params_.cols;
  const Range band = BlockRange(R, p.nprocs(), p.id());
  auto at = [&](std::size_t r, std::size_t c) { return r * C + c; };

  // Owners seed their bands with a deterministic soup (pure function of
  // the global seed and cell index, so any processor count produces the
  // identical board).
  for (std::size_t r = band.begin; r < band.end; ++r) {
    for (std::size_t c = 0; c < C; ++c) {
      const bool alive =
          SplitMix64(params_.seed ^ (at(r, c) * 0x9E3779B97F4A7C15ull))
                  .Next() %
              100 <
          static_cast<std::uint64_t>(params_.density_pct);
      p.Write(grid_[0], at(r, c), alive ? 1 : 0);
    }
  }
  p.Barrier();

  int cur = 0;
  for (int g = 0; g < params_.generations; ++g) {
    const SharedArray<std::int32_t>& src = grid_[cur];
    const SharedArray<std::int32_t>& dst = grid_[1 - cur];
    for (std::size_t r = band.begin; r < band.end; ++r) {
      for (std::size_t c = 0; c < C; ++c) {
        std::int32_t n = 0;
        for (std::size_t dr = r == 0 ? 1 : 0; dr <= (r + 1 < R ? 2u : 1u);
             ++dr) {
          for (std::size_t dc = c == 0 ? 1 : 0; dc <= (c + 1 < C ? 2u : 1u);
               ++dc) {
            if (dr == 1 && dc == 1) continue;
            n += p.Read(src, at(r + dr - 1, c + dc - 1));
          }
        }
        const std::int32_t self = p.Read(src, at(r, c));
        p.Write(dst, at(r, c), (n == 3 || (self != 0 && n == 2)) ? 1 : 0);
      }
      p.Compute(9 * C);
    }
    p.Barrier();
    cur = 1 - cur;
  }

  // Verification: population weighted by a position hash, so a board that
  // is right only in aggregate (same count, wrong cells) still fails.
  double local = 0.0;
  for (std::size_t r = band.begin; r < band.end; ++r) {
    for (std::size_t c = 0; c < C; ++c) {
      local += static_cast<double>(p.Read(grid_[cur], at(r, c)) *
                                   static_cast<std::int32_t>(at(r, c) % 97 + 1));
    }
  }
  p.Compute(band.size() * C);
  reducer_.Contribute(p, local);
  p.Barrier();
  const double total = reducer_.Sum(p);
  if (p.id() == 0) result_ = total;
}

}  // namespace dsm::apps

// Fuzz: a seeded, randomized access-pattern workload for the protocol
// matrix.  Not from the paper — a property-based safety net: every
// processor drives a deterministic (dsm::Rng-seeded) random mix of shared
// reads, shared writes, lock-protected read-modify-writes, and barriers
// over a configurable page span, constructed so the final checksum is
// bit-identical on every backend × aggregation cell:
//
//   * the span is split in halves that alternate writer/reader roles per
//     barrier phase, with word-interleaved ownership inside the write
//     half (maximal false sharing, zero data races),
//   * lock ops add deterministic integer deltas to per-lock accumulator
//     cells — integer addition commutes, so the totals are exact no
//     matter how the host schedules the lock hand-offs.
//
// Its lock traffic still makes the *modelled* state host-order dependent
// (like Water/TSP), so conformance scenarios mark it rel_tol == 0 but
// modelled_stable == false.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "apps/app_common.h"

namespace dsm::apps {

struct FuzzParams {
  std::string label;
  std::size_t span_pages;   // shared span under random access
  int phases;               // barrier-delimited rounds
  int ops_per_phase;        // random ops per processor per round
  int num_locks;            // accumulator cells behind locks
  std::uint64_t seed;       // expanded per processor
};

FuzzParams FuzzDataset(const std::string& label);  // "tiny", "wide", "scale"

class Fuzz : public Application {
 public:
  explicit Fuzz(FuzzParams params);

  const char* name() const override { return "Fuzz"; }
  std::string dataset() const override { return params_.label; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;
  void Body(Proc& p) override;
  double result() const override { return result_; }

 private:
  FuzzParams params_;
  SharedArray<std::int32_t> span_;
  SharedArray<std::int32_t> acc_;
  Reducer reducer_;
  double result_ = 0.0;
};

// RacyFuzz: the deliberately-racy variant for the race detector's
// regression gate (DESIGN.md §10).  Same seeded barrier-phased
// read/write traffic as Fuzz (no lock ops — lock-chain sub-phases are
// host-order dependent, and the injected schedule must reproduce
// bit-for-bit), plus ONE intentionally unsynchronized word per phase: a
// dedicated slot racy_[k] that proc k % nprocs writes and proc
// (k + 1) % nprocs reads (even phases) or writes (odd phases) with no
// ordering between them.  The racy values never feed the checksum, so
// the result stays bit-deterministic while the schedule of races is
// exactly ExpectedRaces().
class RacyFuzz : public Application {
 public:
  explicit RacyFuzz(FuzzParams params);

  const char* name() const override { return "RacyFuzz"; }
  std::string dataset() const override { return params_.label; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;
  void Body(Proc& p) override;
  double result() const override { return result_; }

  // The injected-race schedule, normalized and ordered exactly as
  // RaceDetector::Collect reports it.  Valid after Setup (needs racy_'s
  // address) for a run at `num_procs` processors and `unit_bytes` units.
  std::vector<RaceReport> ExpectedRaces(int num_procs,
                                        std::size_t unit_bytes) const;

 private:
  FuzzParams params_;
  SharedArray<std::int32_t> span_;
  SharedArray<std::int32_t> racy_;  // one unsynchronized word per phase
  Reducer reducer_;
  double result_ = 0.0;
};

}  // namespace dsm::apps

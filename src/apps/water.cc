#include "apps/water.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace dsm::apps {

WaterParams WaterDataset(const std::string& label) {
  if (label == "512") return {"512", 1024, 2};
  if (label == "tiny") return {"tiny", 64, 2};
  DSM_CHECK(false) << "unknown Water dataset " << label;
  return {};
}

Water::Water(WaterParams params) : params_(std::move(params)) {}

std::size_t Water::heap_bytes() const {
  return params_.num_molecules * sizeof(WaterMol) + (64u << 10);
}

void Water::Setup(Runtime& rt) {
  mols_ = rt.AllocUnitAligned<WaterMol>(params_.num_molecules, "molecules");
  reducer_.Setup(rt, "water_check");
}

void Water::Body(Proc& p) {
  const std::size_t n = params_.num_molecules;
  const int P = p.nprocs();
  const Range own = BlockRange(n, P, p.id());

  auto fld = [&](std::size_t m, std::size_t off) {
    return mols_.addr_of(m) + off;
  };

  // Owners initialize their molecules (same value stream regardless of P:
  // the generator is advanced per molecule index).
  {
    Xoshiro256 rng(0x57A7E5u);
    for (std::size_t m = 0; m < n; ++m) {
      WaterMol mol{};
      for (int k = 0; k < 3; ++k) {
        mol.pos[k] = static_cast<float>(rng.UniformDouble(0.0, 4.0));
        mol.vel[k] = static_cast<float>(rng.UniformDouble(-0.05, 0.05));
      }
      if (own.contains(m)) p.Write(mols_, m, mol);
    }
  }
  p.Barrier();

  for (int step = 0; step < params_.steps; ++step) {
    // --- Intra-molecular phase: owners rewrite their own records.
    for (std::size_t m = own.begin; m < own.end; ++m) {
      float pos[3], vel[3];
      for (int k = 0; k < 3; ++k) {
        pos[k] = p.ReadAt<float>(fld(m, offsetof(WaterMol, pos) + 4 * k));
        vel[k] = p.ReadAt<float>(fld(m, offsetof(WaterMol, vel) + 4 * k));
      }
      // Update the owner-only scratch fields (internal degrees of
      // freedom of the 3-atom molecule).  Forces are NOT touched here:
      // they are read and then reset in the update phase, so diffs
      // delivered at the intra-phase fault stay live until read.
      for (int k = 0; k < 15; ++k) {
        p.WriteAt<float>(
            fld(m, offsetof(WaterMol, scratch) + 4 * k),
            std::sin(pos[k % 3]) * 0.01f + vel[(k + 1) % 3] * 0.1f +
                static_cast<float>(step));
      }
      p.Compute(60);
    }
    p.Barrier();

    // --- Inter-molecular phase: pairs (m, j) for the n/2 molecules
    // following m, wrap-around.  Contributions accumulate privately, then
    // flush under per-molecule locks.
    std::vector<double> df(3 * n, 0.0);
    std::vector<bool> touched(n, false);
    for (std::size_t m = own.begin; m < own.end; ++m) {
      float pm[3];
      for (int k = 0; k < 3; ++k) {
        pm[k] = p.ReadAt<float>(fld(m, offsetof(WaterMol, pos) + 4 * k));
      }
      for (std::size_t d = 1; d <= n / 2; ++d) {
        const std::size_t j = (m + d) % n;
        float pj[3];
        for (int k = 0; k < 3; ++k) {
          pj[k] = p.ReadAt<float>(fld(j, offsetof(WaterMol, pos) + 4 * k));
        }
        const float dx = pj[0] - pm[0], dy = pj[1] - pm[1],
                    dz = pj[2] - pm[2];
        const float r2 = dx * dx + dy * dy + dz * dz;
        p.Compute(20);  // distance + cutoff test
        if (r2 > params_.cutoff2 || r2 < 1e-6f) continue;
        // Soft-sphere pair force (stands in for the water potential; the
        // modelled cost below reflects the real 9-site computation).
        const float inv2 = 1.0f / (r2 + 0.01f);
        const float f = (inv2 * inv2 - 0.1f * inv2);
        df[3 * m + 0] -= static_cast<double>(f) * dx;
        df[3 * m + 1] -= static_cast<double>(f) * dy;
        df[3 * m + 2] -= static_cast<double>(f) * dz;
        df[3 * j + 0] += static_cast<double>(f) * dx;
        df[3 * j + 1] += static_cast<double>(f) * dy;
        df[3 * j + 2] += static_cast<double>(f) * dz;
        touched[m] = true;
        touched[j] = true;
        p.Compute(3000);  // 3x3 site-site interactions, sqrt/exp terms
      }
    }
    // Flush accumulated contributions under the per-molecule locks.
    for (std::size_t m = 0; m < n; ++m) {
      if (!touched[m]) continue;
      p.Lock(static_cast<int>(m));
      for (int k = 0; k < 3; ++k) {
        const GlobalAddr a = fld(m, offsetof(WaterMol, force) + 4 * k);
        p.WriteAt<float>(
            a, p.ReadAt<float>(a) + static_cast<float>(df[3 * m + k]));
      }
      p.Unlock(static_cast<int>(m));
    }
    p.Barrier();

    // --- Update phase: owners integrate their molecules, then clear the
    // force accumulators for the next step (read-before-reset keeps the
    // flushed contributions classified as useful data).
    const bool last_step = (step + 1 == params_.steps);
    for (std::size_t m = own.begin; m < own.end; ++m) {
      for (int k = 0; k < 3; ++k) {
        const GlobalAddr fa = fld(m, offsetof(WaterMol, force) + 4 * k);
        const float f = p.ReadAt<float>(fa);
        const GlobalAddr va = fld(m, offsetof(WaterMol, vel) + 4 * k);
        const float v = p.ReadAt<float>(va) + f * params_.dt;
        p.WriteAt<float>(va, v);
        const GlobalAddr xa = fld(m, offsetof(WaterMol, pos) + 4 * k);
        p.WriteAt<float>(xa, p.ReadAt<float>(xa) + v * params_.dt);
        if (!last_step) p.WriteAt<float>(fa, 0.0f);
      }
      p.Compute(12);
    }
    p.Barrier();
  }

  // Verification: total |force| (order-insensitive up to fp tolerance).
  double local = 0.0;
  for (std::size_t m = own.begin; m < own.end; ++m) {
    for (int k = 0; k < 3; ++k) {
      local += std::abs(
          p.ReadAt<float>(fld(m, offsetof(WaterMol, force) + 4 * k)));
    }
  }
  reducer_.Contribute(p, local);
  p.Barrier();
  const double total = reducer_.Sum(p);
  if (p.id() == 0) result_ = total;
}

}  // namespace dsm::apps

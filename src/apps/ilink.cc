#include "apps/ilink.h"

#include <cmath>

#include "common/check.h"

namespace dsm::apps {

IlinkParams IlinkDataset(const std::string& label) {
  if (label == "CLP") return {"CLP", 8, 64 * 1024, 4, 10};
  if (label == "tiny") return {"tiny", 2, 16 * 1024, 4, 3};
  DSM_CHECK(false) << "unknown ILINK dataset " << label;
  return {};
}

Ilink::Ilink(IlinkParams params) : params_(std::move(params)) {}

std::size_t Ilink::heap_bytes() const {
  return params_.num_genarrays * params_.genarray_len * sizeof(float) +
         (64u << 10);
}

void Ilink::Setup(Runtime& rt) {
  pool_ = rt.AllocUnitAligned<float>(
      params_.num_genarrays * params_.genarray_len, "genarrays");
  scale_ = rt.AllocUnitAligned<double>(kBasePageBytes / sizeof(double),
                                       "scale");
  reducer_.Setup(rt, "ilink_check");
}

// Each non-zero slot holds (value, aux): the value participates in the
// master's sum and is re-read by every slave; the aux word is bookkeeping
// the writer maintains but nobody else ever reads — the paper's
// fine-read-granularity effect that turns much of every useful diff into
// piggybacked useless data.
void Ilink::Body(Proc& p) {
  const std::size_t G = params_.num_genarrays;
  const std::size_t L = params_.genarray_len;
  const std::size_t S = params_.nonzero_stride;
  const int P = p.nprocs();
  auto at = [&](std::size_t g, std::size_t k) { return g * L + k; };

  // Master initializes the non-zero pattern.
  if (p.id() == 0) {
    for (std::size_t g = 0; g < G; ++g) {
      for (std::size_t k = 0; k + 1 < L; k += S) {
        p.Write(pool_, at(g, k),
                1.0f + 0.001f * static_cast<float>((g * 131 + k) % 997));
      }
    }
    p.Write(scale_, 0, 1.0);
  }
  p.Barrier();

  for (int iter = 0; iter < params_.iterations; ++iter) {
    // Update phase: the n-th non-zero of each genarray belongs to
    // processor n mod P (round-robin, so every page has 8 concurrent
    // writers).  Pages are valid from the previous read-back, so this
    // phase only twins — no messages.
    const double scale = p.Read(scale_, 0);
    for (std::size_t g = 0; g < G; ++g) {
      std::size_t n = 0;
      for (std::size_t k = 0; k + 1 < L; k += S, ++n) {
        if (static_cast<int>(n % static_cast<std::size_t>(P)) != p.id()) {
          continue;
        }
        const float x = p.Read(pool_, at(g, k));
        const float fs = static_cast<float>(scale);
        p.Write(pool_, at(g, k), 0.75f * x * fs + 0.1f);
        p.Write(pool_, at(g, k + 1),
                static_cast<float>(iter + 1));  // aux: never read by peers
      }
      // Real ILINK performs a recombination/likelihood update per
      // non-zero (hundreds to thousands of flops); charge representative
      // work so the compute:communication ratio matches the full-size run.
      p.Compute(3000 * ((L / S) / static_cast<std::size_t>(P)));
    }
    p.Barrier();

    // Master sums the contributions of all slaves (its fetches contact all
    // 7 peers: the "7" hump of the signature) and publishes a scale.
    if (p.id() == 0) {
      double sum = 0.0;
      for (std::size_t g = 0; g < G; ++g) {
        for (std::size_t k = 0; k + 1 < L; k += S) {
          sum += p.Read(pool_, at(g, k));
        }
      }
      p.Write(scale_, 0,
              2.0 / (1.0 + sum / static_cast<double>(G * (L / S))));
      p.Compute(30 * G * (L / S));
    }
    p.Barrier();

    // All slaves read the genarrays back (fetching the 7 peers' diffs) and
    // the scale from the master (the "1" hump).
    if (p.id() != 0) {
      double check = p.Read(scale_, 0);
      for (std::size_t g = 0; g < G; ++g) {
        for (std::size_t k = 0; k + 1 < L; k += S) {
          check += p.Read(pool_, at(g, k));
        }
      }
      (void)check;
    }
    p.Barrier();
  }

  // Verification: final sum of all non-zero values.
  double local = 0.0;
  if (p.id() == 0) {
    for (std::size_t g = 0; g < G; ++g) {
      for (std::size_t k = 0; k + 1 < L; k += S) {
        local += p.Read(pool_, at(g, k));
      }
    }
  }
  reducer_.Contribute(p, local);
  p.Barrier();
  const double total = reducer_.Sum(p);
  if (p.id() == 0) result_ = total;
}

}  // namespace dsm::apps

#include "apps/fuzz.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace dsm::apps {

FuzzParams FuzzDataset(const std::string& label) {
  // Spans are chosen to cross several 16 KB units (so static aggregation
  // has something to aggregate) while keeping the conformance cell fast.
  if (label == "tiny") return {"tiny", 12, 10, 300, 8, 0x5eedf0ccull};
  if (label == "wide") return {"wide", 64, 8, 500, 16, 0x5eedf0cdull};
  // Cluster-scaling conformance cells (tests/test_conformance.cc): the
  // all-to-all word-interleaved sharing makes LRC work grow ~quadratically
  // with the processor count, so the 64-way cells get a short mix.
  if (label == "scale") return {"scale", 12, 4, 40, 8, 0x5eedf0ceull};
  DSM_CHECK(false) << "unknown Fuzz dataset " << label;
  return {};
}

Fuzz::Fuzz(FuzzParams params) : params_(std::move(params)) {}

std::size_t Fuzz::heap_bytes() const {
  return params_.span_pages * kBasePageBytes + (96u << 10);
}

void Fuzz::Setup(Runtime& rt) {
  const std::size_t span_words =
      params_.span_pages * kBasePageBytes / sizeof(std::int32_t);
  span_ = rt.AllocUnitAligned<std::int32_t>(span_words, "fuzz_span");
  // Accumulators deliberately share one page: cross-lock false sharing is
  // part of the pattern being fuzzed (each word is still touched only
  // under its own lock, so there is no data race).
  acc_ = rt.AllocUnitAligned<std::int32_t>(
      static_cast<std::size_t>(params_.num_locks), "fuzz_acc");
  reducer_.Setup(rt, "fuzz_sum");
}

void Fuzz::Body(Proc& p) {
  const std::size_t span_words =
      params_.span_pages * kBasePageBytes / sizeof(std::int32_t);
  const std::size_t half = span_words / 2;
  const auto nprocs = static_cast<std::size_t>(p.nprocs());
  const auto id = static_cast<std::size_t>(p.id());
  // My words in a half: word-interleaved ownership (w % nprocs == id) —
  // adjacent words belong to different processors, the worst false
  // sharing any consistency unit size can see.
  const std::size_t owned = half / nprocs;
  DSM_CHECK_GT(owned, 0u);

  Xoshiro256 rng(params_.seed ^
                 (0x9e3779b97f4a7c15ull * (id + 1)));
  double read_sum = 0.0;
  std::uint64_t op_index = 0;

  for (int phase = 0; phase < params_.phases; ++phase) {
    // Halves swap roles every phase: reads only target the half nobody
    // writes this phase, so every read is ordered after its writer's
    // barrier release and returns a schedule-independent value.
    const std::size_t write_base = (phase % 2 == 0) ? 0 : half;
    const std::size_t read_base = half - write_base;
    for (int op = 0; op < params_.ops_per_phase; ++op, ++op_index) {
      const std::uint64_t kind = rng.UniformInt(100);
      if (kind < 45) {
        const std::size_t w = read_base + rng.UniformInt(half);
        read_sum += static_cast<double>(p.Read(span_, w));
      } else if (kind < 90) {
        const std::size_t w =
            write_base + rng.UniformInt(owned) * nprocs + id;
        const auto value = static_cast<std::int32_t>(
            (w * 7 + static_cast<std::size_t>(phase) * 13 + id * 3) % 1021);
        p.Write(span_, w, value);
      } else {
        const auto lock = static_cast<int>(
            rng.UniformInt(static_cast<std::uint64_t>(params_.num_locks)));
        const auto delta = static_cast<std::int32_t>(op_index % 7 + 1);
        p.Lock(lock);
        const std::int32_t v =
            p.Read(acc_, static_cast<std::size_t>(lock));
        p.Write(acc_, static_cast<std::size_t>(lock), v + delta);
        p.Unlock(lock);
      }
      p.Compute(3);
    }
    p.Barrier();
  }

  reducer_.Contribute(p, read_sum);
  p.Barrier();
  // Every processor derives the checksum (master-reads pattern); all lock
  // increments happened before the final barrier, so the accumulator
  // totals are exact integer sums, identical on every backend.
  double total = reducer_.Sum(p);
  for (int l = 0; l < params_.num_locks; ++l) {
    total += static_cast<double>(p.Read(acc_, static_cast<std::size_t>(l)));
  }
  if (p.id() == 0) result_ = total;
}

RacyFuzz::RacyFuzz(FuzzParams params) : params_(std::move(params)) {
  DSM_CHECK_GT(params_.phases, 0);
}

std::size_t RacyFuzz::heap_bytes() const {
  return params_.span_pages * kBasePageBytes + (96u << 10);
}

void RacyFuzz::Setup(Runtime& rt) {
  const std::size_t span_words =
      params_.span_pages * kBasePageBytes / sizeof(std::int32_t);
  span_ = rt.AllocUnitAligned<std::int32_t>(span_words, "racy_span");
  racy_ = rt.AllocUnitAligned<std::int32_t>(
      static_cast<std::size_t>(params_.phases), "racy_words");
  reducer_.Setup(rt, "racy_sum");
}

void RacyFuzz::Body(Proc& p) {
  const std::size_t span_words =
      params_.span_pages * kBasePageBytes / sizeof(std::int32_t);
  const std::size_t half = span_words / 2;
  const auto nprocs = static_cast<std::size_t>(p.nprocs());
  const auto id = static_cast<std::size_t>(p.id());
  const std::size_t owned = half / nprocs;
  DSM_CHECK_GT(owned, 0u);

  Xoshiro256 rng(params_.seed ^
                 (0x9e3779b97f4a7c15ull * (id + 1)));
  double read_sum = 0.0;
  std::int32_t racy_sink = 0;  // racy values stay out of the checksum

  for (int phase = 0; phase < params_.phases; ++phase) {
    const std::size_t write_base = (phase % 2 == 0) ? 0 : half;
    const std::size_t read_base = half - write_base;
    const auto wp = static_cast<std::size_t>(phase) % nprocs;
    const auto rp = (static_cast<std::size_t>(phase) + 1) % nprocs;
    for (int op = 0; op < params_.ops_per_phase; ++op) {
      // The injected race: wp writes racy_[phase] mid-phase; rp touches
      // the same word later in ITS program with no synchronization in
      // between — unordered no matter how the host schedules the two.
      if (op == params_.ops_per_phase / 3 && id == wp) {
        p.Write(racy_, static_cast<std::size_t>(phase),
                static_cast<std::int32_t>(phase + 1));
      }
      if (op == 2 * params_.ops_per_phase / 3 && id == rp && rp != wp) {
        if (phase % 2 == 0) {
          racy_sink += p.Read(racy_, static_cast<std::size_t>(phase));
        } else {
          p.Write(racy_, static_cast<std::size_t>(phase),
                  static_cast<std::int32_t>(phase + 101));
        }
      }
      // Background traffic: Fuzz's phase-alternating halves, reads from
      // the half nobody writes this phase (race-free by construction).
      const std::uint64_t kind = rng.UniformInt(100);
      if (kind < 50) {
        const std::size_t w = read_base + rng.UniformInt(half);
        read_sum += static_cast<double>(p.Read(span_, w));
      } else {
        const std::size_t w =
            write_base + rng.UniformInt(owned) * nprocs + id;
        const auto value = static_cast<std::int32_t>(
            (w * 7 + static_cast<std::size_t>(phase) * 13 + id * 3) % 1021);
        p.Write(span_, w, value);
      }
      p.Compute(3);
    }
    p.Barrier();
  }
  (void)racy_sink;

  reducer_.Contribute(p, read_sum);
  p.Barrier();
  const double total = reducer_.Sum(p);
  if (p.id() == 0) result_ = total;
}

std::vector<RaceReport> RacyFuzz::ExpectedRaces(
    int num_procs, std::size_t unit_bytes) const {
  std::vector<RaceReport> out;
  if (num_procs < 2) return out;
  for (int k = 0; k < params_.phases; ++k) {
    const GlobalAddr addr = racy_.addr_of(static_cast<std::size_t>(k));
    RaceSite a{static_cast<ProcId>(k % num_procs), /*is_write=*/true,
               static_cast<std::uint32_t>(k), 0};
    RaceSite b{static_cast<ProcId>((k + 1) % num_procs),
               /*is_write=*/k % 2 != 0, static_cast<std::uint32_t>(k), 0};
    // Same normalization as RaceDetector::Report: (proc, kind) order.
    if (std::tuple(b.proc, b.is_write) < std::tuple(a.proc, a.is_write)) {
      std::swap(a, b);
    }
    out.push_back(RaceReport{
        static_cast<UnitId>(addr / unit_bytes),
        static_cast<std::uint32_t>((addr % unit_bytes) / kWordBytes), a, b});
  }
  // Same order as RaceDetector::Collect.
  std::sort(out.begin(), out.end(),
            [](const RaceReport& x, const RaceReport& y) {
              return std::tuple(x.unit, x.word, x.first.proc, x.second.proc) <
                     std::tuple(y.unit, y.word, y.first.proc, y.second.proc);
            });
  return out;
}

}  // namespace dsm::apps

#include "apps/fft3d.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "common/check.h"

namespace dsm::apps {

namespace {

// In-place iterative radix-2 complex FFT (private, host-side compute; the
// modelled cost is charged by the caller via Proc::Compute).
void Fft1d(std::vector<std::complex<double>>& v, bool inverse) {
  const std::size_t n = v.size();
  DSM_CHECK((n & (n - 1)) == 0) << "FFT length must be a power of two";
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(v[i], v[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = v[i + k];
        const std::complex<double> t = v[i + k + len / 2] * w;
        v[i + k] = u + t;
        v[i + k + len / 2] = u - t;
        w *= wl;
      }
    }
  }
  if (inverse) {
    for (auto& x : v) x /= static_cast<double>(n);
  }
}

std::uint64_t FftFlops(std::size_t n) {
  // ~5 n log2 n arithmetic flops for a complex radix-2 FFT; the charge is
  // calibrated to ~15 n log2 n flop-equivalents to account for the memory
  // system of the era machine (strided complex loads dominate on a P166).
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  return static_cast<std::uint64_t>(15 * n * log2n);
}

}  // namespace

Fft3dParams Fft3dDataset(const std::string& label) {
  // Grain: (ny/P)*nz*16 bytes forward, (nx/P)*nz*16 bytes back.
  // nx of the largest set is halved (host memory), keeping its grains at
  // 32 KB/16 KB — both ≥ the largest unit studied, which is what matters.
  if (label == "64x64x32") return {"64x64x32", 64, 64, 32, 2};
  if (label == "64x64x64") return {"64x64x64", 64, 64, 64, 2};
  if (label == "128x128x128") return {"128x128x128", 64, 128, 128, 2};
  if (label == "tiny") return {"tiny", 16, 16, 16, 2};
  DSM_CHECK(false) << "unknown 3D-FFT dataset " << label;
  return {};
}

Fft3d::Fft3d(Fft3dParams params) : params_(std::move(params)) {}

std::size_t Fft3d::heap_bytes() const {
  const std::size_t n = params_.nx * params_.ny * params_.nz;
  return 2 * n * 2 * sizeof(double) + (64u << 10);
}

void Fft3d::Setup(Runtime& rt) {
  const std::size_t n = params_.nx * params_.ny * params_.nz;
  a_ = rt.AllocUnitAligned<double>(2 * n, "A");
  b_ = rt.AllocUnitAligned<double>(2 * n, "B");
  checksum_ = rt.AllocUnitAligned<double>(
      kBasePageBytes / sizeof(double), "checksum");
}

void Fft3d::Body(Proc& p) {
  const std::size_t nx = params_.nx, ny = params_.ny, nz = params_.nz;
  const int P = p.nprocs();
  const Range xs = BlockRange(nx, P, p.id());
  const Range ys = BlockRange(ny, P, p.id());

  auto a_idx = [&](std::size_t x, std::size_t y, std::size_t z) {
    return 2 * ((x * ny + y) * nz + z);
  };
  auto b_idx = [&](std::size_t y, std::size_t x, std::size_t z) {
    return 2 * ((y * nx + x) * nz + z);
  };
  auto read_c = [&](const SharedArray<double>& arr,
                    std::size_t i) -> std::complex<double> {
    return {p.Read(arr, i), p.Read(arr, i + 1)};
  };
  auto write_c = [&](const SharedArray<double>& arr, std::size_t i,
                     std::complex<double> v) {
    p.Write(arr, i, v.real());
    p.Write(arr, i + 1, v.imag());
  };

  // Deterministic initialization of the owned x-slab.
  for (std::size_t x = xs.begin; x < xs.end; ++x) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t z = 0; z < nz; ++z) {
        const double re =
            std::sin(0.37 * static_cast<double>(x + 2 * y + 3 * z + 1));
        const double im =
            std::cos(0.23 * static_cast<double>(3 * x + y + 2 * z + 1));
        write_c(a_, a_idx(x, y, z), {re, im});
      }
    }
  }
  p.Barrier();

  std::vector<std::complex<double>> line;
  for (int iter = 0; iter < params_.iterations; ++iter) {
    const bool inverse = (iter % 2) == 1;

    // Pass 1: FFT along z for every (x, y) line of the owned x-slab.
    line.resize(nz);
    for (std::size_t x = xs.begin; x < xs.end; ++x) {
      for (std::size_t y = 0; y < ny; ++y) {
        for (std::size_t z = 0; z < nz; ++z) {
          line[z] = read_c(a_, a_idx(x, y, z));
        }
        Fft1d(line, inverse);
        p.Compute(FftFlops(nz));
        for (std::size_t z = 0; z < nz; ++z) {
          write_c(a_, a_idx(x, y, z), line[z]);
        }
      }
    }
    // Pass 2: FFT along y (still local to the x-slab).
    line.resize(ny);
    for (std::size_t x = xs.begin; x < xs.end; ++x) {
      for (std::size_t z = 0; z < nz; ++z) {
        for (std::size_t y = 0; y < ny; ++y) {
          line[y] = read_c(a_, a_idx(x, y, z));
        }
        Fft1d(line, inverse);
        p.Compute(FftFlops(ny));
        for (std::size_t y = 0; y < ny; ++y) {
          write_c(a_, a_idx(x, y, z), line[y]);
        }
      }
    }
    p.Barrier();

    // Transpose: B[y][x][z] = A[x][y][z].  Each processor produces its
    // y-slab of B, reading one contiguous (ny/P)*nz chunk from every
    // source plane — the communication grain.
    for (std::size_t x = 0; x < nx; ++x) {
      for (std::size_t y = ys.begin; y < ys.end; ++y) {
        for (std::size_t z = 0; z < nz; ++z) {
          write_c(b_, b_idx(y, x, z), read_c(a_, a_idx(x, y, z)));
        }
      }
    }
    p.Barrier();

    // Pass 3: FFT along x on the transposed array (local to the y-slab).
    line.resize(nx);
    for (std::size_t y = ys.begin; y < ys.end; ++y) {
      for (std::size_t z = 0; z < nz; ++z) {
        for (std::size_t x = 0; x < nx; ++x) {
          line[x] = read_c(b_, b_idx(y, x, z));
        }
        Fft1d(line, inverse);
        p.Compute(FftFlops(nx));
        for (std::size_t x = 0; x < nx; ++x) {
          write_c(b_, b_idx(y, x, z), line[x]);
        }
      }
    }

    // Checksum: every processor writes its partial into a slot of one
    // shared page; the master reads them all (paper: a few useless
    // messages, since slot writers re-fault on the page every iteration).
    double partial = 0.0;
    for (std::size_t y = ys.begin; y < ys.end; ++y) {
      partial += std::abs(read_c(b_, b_idx(y, (y * 7) % nx, (y * 13) % nz)));
    }
    p.Write(checksum_, static_cast<std::size_t>(p.id()) * 2, partial);
    p.Barrier();
    if (p.id() == 0) {
      double total = 0.0;
      for (int q = 0; q < P; ++q) {
        total += p.Read(checksum_, static_cast<std::size_t>(q) * 2);
      }
      result_ = total;
    }

    // Transpose back: A[x][y][z] = B[y][x][z], by x-slab owner.
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = xs.begin; x < xs.end; ++x) {
        for (std::size_t z = 0; z < nz; ++z) {
          write_c(a_, a_idx(x, y, z), read_c(b_, b_idx(y, x, z)));
        }
      }
    }
    p.Barrier();
  }
}

}  // namespace dsm::apps

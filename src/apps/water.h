// Water (SPLASH, paper §5.5): molecular dynamics with an O(n²/2) cutoff
// interaction.  The molecule array is shared, contiguous, block-partitioned;
// a lock protects the force accumulator of each molecule.
//
// Sharing patterns reproduced from the paper's analysis:
//   * intra-molecular phase: owners rewrite their molecule records
//     (including owner-only scratch fields — the "private data in each
//     molecule data structure" that becomes piggybacked useless data);
//     write-write false sharing on the boundary pages between regions,
//     whose delivered data the faulting processor never reads (it reads
//     the FOLLOWING half of the array, not the preceding neighbour) —
//     the paper's source of useless messages;
//   * inter-molecular phase: each processor reads positions of the n/2
//     molecules following its own (wrap-around) and accumulates force
//     contributions under per-molecule locks (migratory data).
#pragma once

#include <cstddef>
#include <string>

#include "apps/app_common.h"

namespace dsm::apps {

struct WaterParams {
  std::string label;
  std::size_t num_molecules;
  int steps = 2;
  float cutoff2 = 3.4f;  // squared interaction cutoff
  float dt = 0.002f;
};

WaterParams WaterDataset(const std::string& label);  // "512"

struct WaterMol {
  float pos[3];
  float vel[3];
  float force[3];
  float scratch[15];  // intra-phase bookkeeping; owner-only
};
static_assert(sizeof(WaterMol) == 96);

class Water : public Application {
 public:
  explicit Water(WaterParams params);

  const char* name() const override { return "Water"; }
  std::string dataset() const override { return params_.label; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;
  void Body(Proc& p) override;
  double result() const override { return result_; }

 private:
  WaterParams params_;
  SharedArray<WaterMol> mols_;
  Reducer reducer_;
  double result_ = 0.0;
};

}  // namespace dsm::apps

// Modified Gramm-Schmidt (paper §5.5): orthonormalize M vectors of N
// floats, distributed cyclically across processors.
//
// The paper's pathological case: with the "1Kx1K" input, each vector is
// exactly one 4 KB page.  Larger consistency units colocate 2 or 4 vectors
// owned by *different* processors (cyclic distribution) on one unit, so
// every unit becomes write-write false shared and the useless-message
// count explodes — the only dramatic performance loss in the study.
//
// Dataset mapping (grain = vector size in bytes):
//   "1Kx1K" → vectors of 1K floats (4 KB),  "2Kx2K" → 2K floats (8 KB),
//   "1Kx4K" → 4K floats (16 KB).  Vector counts scaled down.
#pragma once

#include <cstddef>
#include <string>

#include "apps/app_common.h"

namespace dsm::apps {

struct MgsParams {
  std::string label;
  std::size_t num_vectors;
  std::size_t dim;  // floats per vector; dim*4 is the sharing grain
};

MgsParams MgsDataset(const std::string& label);  // "1Kx1K","2Kx2K","1Kx4K"

class Mgs : public Application {
 public:
  explicit Mgs(MgsParams params);

  const char* name() const override { return "MGS"; }
  std::string dataset() const override { return params_.label; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;
  void Body(Proc& p) override;
  double result() const override { return result_; }

 private:
  MgsParams params_;
  SharedArray<float> vectors_;
  Reducer reducer_;
  double result_ = 0.0;
};

}  // namespace dsm::apps

// Shallow (NCAR benchmark, paper §5.5): finite-difference shallow-water
// equations on a 2-D grid, column-major arrays partitioned in column
// chunks.  Reproduces the paper's three boundary patterns:
//
//   * flux arrays (cu, cv, z, h, and u, v, p reads): processors write only
//     their own columns and read one boundary column of a neighbour —
//     piggybacked useless data at large units (the Jacobi-like pattern);
//   * velocity updates (unew, vnew): processors also WRITE the first
//     column of the right neighbour's chunk and read none of the
//     neighbour's columns — write-write false sharing that turns into
//     useless messages once a unit holds two columns;
//   * wraparound: the master copies the last column of p to the first —
//     piggybacked useless data only.
//
// Dataset mapping (grain = column size R*4 bytes):
//   "1Kx0.5K" → 4 KB columns, "2Kx0.5K" → 8 KB, "4Kx0.5K" → 16 KB.
#pragma once

#include <cstddef>
#include <string>

#include "apps/app_common.h"

namespace dsm::apps {

struct ShallowParams {
  std::string label;
  std::size_t rows;  // column length; rows*4 is the sharing grain
  std::size_t cols;
  int iterations = 4;
};

ShallowParams ShallowDataset(const std::string& label);

class Shallow : public Application {
 public:
  explicit Shallow(ShallowParams params);

  const char* name() const override { return "Shallow"; }
  std::string dataset() const override { return params_.label; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;
  void Body(Proc& p) override;
  double result() const override { return result_; }

 private:
  ShallowParams params_;
  // State, flux, new, and old arrays — 13 in total, as in the original.
  SharedArray<float> u_, v_, p_;
  SharedArray<float> cu_, cv_, z_, h_;
  SharedArray<float> unew_, vnew_, pnew_;
  SharedArray<float> uold_, vold_, pold_;
  Reducer reducer_;
  double result_ = 0.0;
};

}  // namespace dsm::apps

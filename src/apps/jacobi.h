// Jacobi: iterative solver for a differential equation on a square grid
// (paper §5.5).  Row-band partition; only the boundary rows of each band
// are communicated between neighbouring processors.
//
// Dataset mapping (DESIGN.md §5): the paper's critical variable is the
// byte size of one grid row relative to the consistency unit.
//   "1Kx1K" → rows of 1K floats (4 KB = exactly one VM page)
//   "2Kx2K" → rows of 2K floats (8 KB)
// The number of rows is scaled down (256); it only changes the
// compute/communication ratio, not the sharing pattern.
#pragma once

#include <cstddef>
#include <string>

#include "apps/app_common.h"

namespace dsm::apps {

struct JacobiParams {
  std::string label;     // paper dataset name
  std::size_t rows;      // grid rows (excluding the fixed boundary ring)
  std::size_t cols;      // floats per row; cols*4 is the sharing grain
  int iterations = 6;
};

JacobiParams JacobiDataset(const std::string& label);  // "1Kx1K", "2Kx2K"

class Jacobi : public Application {
 public:
  explicit Jacobi(JacobiParams params);

  const char* name() const override { return "Jacobi"; }
  std::string dataset() const override { return params_.label; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;
  void Body(Proc& p) override;
  double result() const override { return result_; }

 private:
  JacobiParams params_;
  SharedArray<float> grid_;
  Reducer reducer_;
  double result_ = 0.0;
};

}  // namespace dsm::apps

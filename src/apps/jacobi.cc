#include "apps/jacobi.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace dsm::apps {

JacobiParams JacobiDataset(const std::string& label) {
  if (label == "1Kx1K") return {"1Kx1K", 256, 1024, 6};
  if (label == "2Kx2K") return {"2Kx2K", 256, 2048, 6};
  if (label == "tiny") return {"tiny", 32, 1024, 4};  // test-sized
  DSM_CHECK(false) << "unknown Jacobi dataset " << label;
  return {};
}

Jacobi::Jacobi(JacobiParams params) : params_(std::move(params)) {}

std::size_t Jacobi::heap_bytes() const {
  return params_.rows * params_.cols * sizeof(float) + (64u << 10);
}

void Jacobi::Setup(Runtime& rt) {
  grid_ = rt.AllocUnitAligned<float>(params_.rows * params_.cols, "grid");
  reducer_.Setup(rt, "jacobi_sum");
}

void Jacobi::Body(Proc& p) {
  const std::size_t R = params_.rows;
  const std::size_t C = params_.cols;
  const Range band = BlockRange(R, p.nprocs(), p.id());
  auto at = [&](std::size_t r, std::size_t c) { return r * C + c; };

  // Owners initialize their bands: a heat source along the top edge plus a
  // deterministic interior field (so every iteration's relaxation changes
  // every point — an all-zero grid would make the boundary diffs empty).
  for (std::size_t r = band.begin; r < band.end; ++r) {
    for (std::size_t c = 0; c < C; ++c) {
      const float v =
          r == 0 ? 100.0f
                 : 10.0f * std::sin(0.011f * static_cast<float>(r) +
                                    0.017f * static_cast<float>(c));
      p.Write(grid_, at(r, c), v);
    }
  }
  p.Barrier();

  std::vector<float> scratch(band.size() * C);
  for (int iter = 0; iter < params_.iterations; ++iter) {
    // Compute new values into private scratch, reading the shared grid
    // (own band plus one boundary row from each neighbouring band).
    for (std::size_t r = band.begin; r < band.end; ++r) {
      if (r == 0) {  // fixed heat-source row
        for (std::size_t c = 0; c < C; ++c) {
          scratch[(r - band.begin) * C + c] = p.Read(grid_, at(r, c));
        }
        continue;
      }
      for (std::size_t c = 0; c < C; ++c) {
        const float up = p.Read(grid_, at(r - 1, c));
        const float down = r + 1 < R ? p.Read(grid_, at(r + 1, c)) : 0.0f;
        const float left = c > 0 ? p.Read(grid_, at(r, c - 1)) : 0.0f;
        const float right = c + 1 < C ? p.Read(grid_, at(r, c + 1)) : 0.0f;
        scratch[(r - band.begin) * C + c] =
            0.25f * (up + down + left + right);
      }
      p.Compute(4 * C);
    }
    p.Barrier();
    // Publish the new band.
    for (std::size_t r = band.begin; r < band.end; ++r) {
      for (std::size_t c = 0; c < C; ++c) {
        p.Write(grid_, at(r, c), scratch[(r - band.begin) * C + c]);
      }
    }
    p.Barrier();
  }

  // Verification: global sum of the grid.
  double local = 0.0;
  for (std::size_t r = band.begin; r < band.end; ++r) {
    for (std::size_t c = 0; c < C; ++c) local += p.Read(grid_, at(r, c));
  }
  p.Compute(band.size() * C);
  reducer_.Contribute(p, local);
  p.Barrier();
  const double total = reducer_.Sum(p);
  if (p.id() == 0) result_ = total;
}

}  // namespace dsm::apps

// TSP (paper §5.5): branch-and-bound search for the minimum-cost tour.
//
// Shared data structures, all migratory (the paper's analysis):
//   * a pool of partially evaluated tours (multi-page, allocated by
//     whichever processor expands a node — tours allocated by other
//     processors but never read by the faulting one are the source of
//     both useless messages and useless data);
//   * a priority queue of pointers into the pool, under a lock;
//   * the current shortest tour, under its own lock.
//
// Partial tours shorter than the recursion threshold are expanded through
// the queue; deeper subtrees are solved by sequential DFS on the popping
// processor (the classic Rice TSP structure).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "apps/app_common.h"

namespace dsm::apps {

struct TspParams {
  std::string label;
  int num_cities = 11;
  int queue_depth = 5;  // tours shorter than this stay in the queue
  std::uint64_t seed = 0x75B1A5ED;
};

TspParams TspDataset(const std::string& label);  // "11-city"

inline constexpr int kTspMaxCities = 16;

struct TspTour {
  std::int32_t ncity;                  // cities placed so far
  float cost;                          // path cost so far
  float bound;                         // lower bound for the full tour
  std::int32_t path[kTspMaxCities];
  std::int32_t pad[13];                // pad record to 128 bytes
};
static_assert(sizeof(TspTour) == 128);

class Tsp : public Application {
 public:
  explicit Tsp(TspParams params);

  const char* name() const override { return "TSP"; }
  std::string dataset() const override { return params_.label; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;
  void Body(Proc& p) override;
  double result() const override { return result_; }

  // Host-side exhaustive solver for verification (small city counts).
  static double BruteForce(const TspParams& params);

  // The deterministic distance matrix both solvers use.
  static std::vector<float> Distances(const TspParams& params);

 private:
  TspParams params_;
  static constexpr std::size_t kPoolSize = 8192;

  SharedArray<float> dist_;        // num_cities^2
  SharedArray<TspTour> pool_;
  SharedArray<float> pq_keys_;     // binary heap: bound per entry
  SharedArray<std::int32_t> pq_tours_;
  SharedArray<std::int32_t> freelist_;
  SharedArray<std::int32_t> meta_;  // [0]=pq size, [1]=in-flight, [2]=free top
  SharedArray<float> best_cost_;
  Reducer reducer_;
  double result_ = 0.0;

  static constexpr int kQueueLock = 0;
  static constexpr int kPoolLock = 1;
  static constexpr int kBestLock = 2;
};

}  // namespace dsm::apps

// Ilink (paper §5.5): genetic linkage analysis.  We do not have the
// proprietary CLP pedigree inputs, so this is a synthetic workload with
// exactly the sharing pattern the paper describes (see DESIGN.md §5):
//
//   * a pool of sparse "genarrays" in shared memory;
//   * the master assigns non-zero elements to processors round-robin, so
//     every page of the pool is written concurrently by ALL processors
//     (maximal fine-grained write-write false sharing);
//   * after a barrier the master reads every non-zero (messages contact
//     all 7 peers — the "7" hump of the false sharing signature) and
//     rescales the pool, becoming its single writer;
//   * after another barrier all slaves read the pool back from the master
//     (the "1" hump of the signature).
//
// Nearly every message is useful (true sharing dominates), while useful
// messages carry useless data (the sparse zero gaps) — the paper's class
// of apps where aggregation wins.
#pragma once

#include <cstddef>
#include <string>

#include "apps/app_common.h"

namespace dsm::apps {

struct IlinkParams {
  std::string label;
  std::size_t num_genarrays;
  std::size_t genarray_len;   // floats
  std::size_t nonzero_stride; // every k-th element is non-zero
  int iterations = 6;
};

IlinkParams IlinkDataset(const std::string& label);  // "CLP"

class Ilink : public Application {
 public:
  explicit Ilink(IlinkParams params);

  const char* name() const override { return "ILINK"; }
  std::string dataset() const override { return params_.label; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;
  void Body(Proc& p) override;
  double result() const override { return result_; }

 private:
  IlinkParams params_;
  SharedArray<float> pool_;
  SharedArray<double> scale_;  // one page: master's per-iteration scale
  Reducer reducer_;
  double result_ = 0.0;
};

}  // namespace dsm::apps

#include "apps/registry.h"

#include "apps/barnes.h"
#include "apps/fft3d.h"
#include "apps/ilink.h"
#include "apps/jacobi.h"
#include "apps/mgs.h"
#include "apps/shallow.h"
#include "apps/tsp.h"
#include "apps/water.h"
#include "common/check.h"

namespace dsm::apps {

std::unique_ptr<Application> MakeApp(const std::string& app,
                                     const std::string& dataset) {
  if (app == "Jacobi") return std::make_unique<Jacobi>(JacobiDataset(dataset));
  if (app == "MGS") return std::make_unique<Mgs>(MgsDataset(dataset));
  if (app == "3D-FFT") return std::make_unique<Fft3d>(Fft3dDataset(dataset));
  if (app == "Shallow") {
    return std::make_unique<Shallow>(ShallowDataset(dataset));
  }
  if (app == "Barnes") return std::make_unique<Barnes>(BarnesDataset(dataset));
  if (app == "Water") return std::make_unique<Water>(WaterDataset(dataset));
  if (app == "TSP") return std::make_unique<Tsp>(TspDataset(dataset));
  if (app == "ILINK") return std::make_unique<Ilink>(IlinkDataset(dataset));
  DSM_CHECK(false) << "unknown application " << app;
  return nullptr;
}

std::vector<AppSpec> Figure1Specs() {
  return {
      {"Barnes", "16K"},
      {"ILINK", "CLP"},
      {"TSP", "11-city"},
      {"Water", "512"},
  };
}

std::vector<AppSpec> Figure2Specs() {
  return {
      {"Jacobi", "1Kx1K"},    {"Jacobi", "2Kx2K"},
      {"3D-FFT", "64x64x32"}, {"3D-FFT", "64x64x64"},
      {"3D-FFT", "128x128x128"},
      {"MGS", "1Kx1K"},       {"MGS", "2Kx2K"},
      {"MGS", "1Kx4K"},
      {"Shallow", "1Kx0.5K"}, {"Shallow", "2Kx0.5K"},
      {"Shallow", "4Kx0.5K"},
  };
}

std::vector<AppSpec> AllSpecs() {
  std::vector<AppSpec> specs = Figure1Specs();
  for (auto& s : Figure2Specs()) specs.push_back(s);
  return specs;
}

}  // namespace dsm::apps

#include "apps/registry.h"

#include "apps/barnes.h"
#include "apps/fft3d.h"
#include "apps/fuzz.h"
#include "apps/ilink.h"
#include "apps/jacobi.h"
#include "apps/kvstore.h"
#include "apps/life.h"
#include "apps/mgs.h"
#include "apps/shallow.h"
#include "apps/tsp.h"
#include "apps/water.h"
#include "common/check.h"

namespace dsm::apps {

std::unique_ptr<Application> MakeApp(const std::string& app,
                                     const std::string& dataset) {
  if (app == "Jacobi") return std::make_unique<Jacobi>(JacobiDataset(dataset));
  if (app == "MGS") return std::make_unique<Mgs>(MgsDataset(dataset));
  if (app == "3D-FFT") return std::make_unique<Fft3d>(Fft3dDataset(dataset));
  if (app == "Shallow") {
    return std::make_unique<Shallow>(ShallowDataset(dataset));
  }
  if (app == "Barnes") return std::make_unique<Barnes>(BarnesDataset(dataset));
  if (app == "Water") return std::make_unique<Water>(WaterDataset(dataset));
  if (app == "TSP") return std::make_unique<Tsp>(TspDataset(dataset));
  if (app == "ILINK") return std::make_unique<Ilink>(IlinkDataset(dataset));
  if (app == "Fuzz") return std::make_unique<Fuzz>(FuzzDataset(dataset));
  if (app == "RacyFuzz") {
    return std::make_unique<RacyFuzz>(FuzzDataset(dataset));
  }
  if (app == "KV") return std::make_unique<KvStore>(KvDataset(dataset));
  if (app == "RacyKv") return std::make_unique<RacyKv>(KvDataset(dataset));
  if (app == "Life") return std::make_unique<Life>(LifeDataset(dataset));
  DSM_CHECK(false) << "unknown application " << app;
  return nullptr;
}

std::vector<AppSpec> Figure1Specs() {
  return {
      {"Barnes", "16K"},
      {"ILINK", "CLP"},
      {"TSP", "11-city"},
      {"Water", "512"},
  };
}

std::vector<AppSpec> Figure2Specs() {
  return {
      {"Jacobi", "1Kx1K"},    {"Jacobi", "2Kx2K"},
      {"3D-FFT", "64x64x32"}, {"3D-FFT", "64x64x64"},
      {"3D-FFT", "128x128x128"},
      {"MGS", "1Kx1K"},       {"MGS", "2Kx2K"},
      {"MGS", "1Kx4K"},
      {"Shallow", "1Kx0.5K"}, {"Shallow", "2Kx0.5K"},
      {"Shallow", "4Kx0.5K"},
  };
}

std::vector<AppSpec> AllSpecs() {
  std::vector<AppSpec> specs = Figure1Specs();
  for (auto& s : Figure2Specs()) specs.push_back(s);
  return specs;
}

std::vector<ConformanceScenario> ConformanceScenarios() {
  // Golden checksums recorded from the reference backend at 4 processors
  // (see tests/test_conformance.cc, which re-derives and cross-checks
  // them on every run).  rel_tol 0 marks apps whose result is
  // bit-deterministic at fixed num_procs; Water accumulates forces under
  // locks and TSP races its branch-and-bound pruning, so their results
  // carry a scheduling tolerance.
  return {
      {"Jacobi", "tiny", 4, 189321.05570180155, 0.0, true},
      {"MGS", "tiny", 4, 1.4165231243520721e-06, 0.0, true},
      {"3D-FFT", "tiny", 4, 13.190211990917534, 0.0, true},
      {"Shallow", "tiny", 4, 164279.61499786377, 0.0, true},
      {"Barnes", "tiny", 4, 263.25515289674513, 0.0, true},
      {"ILINK", "tiny", 4, 6720.7531095147133, 0.0, true},
      {"Water", "tiny", 4, 1084.9943868517876, 1e-3, false},
      {"TSP", "tiny", 4, 262.54638671875, 1e-6, false},
      // Property-based randomized mix (src/apps/fuzz.cc): exact checksum
      // (commuting integer sums → rel_tol 0) but lock-scheduled
      // statistics.  Golden recorded from the reference backend.
      {"Fuzz", "tiny", 4, 547927.0, 0.0, false},
      // Partitioned key-value store (src/apps/kvstore.cc): request-shaped
      // lock-sharded traffic.  Checksum exact by construction (additive
      // updates + per-proc tallies, DESIGN.md §11) but, like every lock
      // app, the modelled state follows the host's grant order.
      {"KV", "tiny", 4, 10525358.0, 0.0, false},
      // Game of life (src/apps/life.cc): barrier-only integer stencil,
      // bit-deterministic everywhere.
      {"Life", "tiny", 4, 43872.0, 0.0, true},
  };
}

}  // namespace dsm::apps

#include "apps/shallow.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace dsm::apps {

ShallowParams ShallowDataset(const std::string& label) {
  if (label == "1Kx0.5K") return {"1Kx0.5K", 1024, 96, 4};
  if (label == "2Kx0.5K") return {"2Kx0.5K", 2048, 96, 4};
  if (label == "4Kx0.5K") return {"4Kx0.5K", 4096, 64, 4};
  if (label == "tiny") return {"tiny", 1024, 16, 3};
  DSM_CHECK(false) << "unknown Shallow dataset " << label;
  return {};
}

Shallow::Shallow(ShallowParams params) : params_(std::move(params)) {}

std::size_t Shallow::heap_bytes() const {
  return 13 * params_.rows * params_.cols * sizeof(float) + (128u << 10);
}

void Shallow::Setup(Runtime& rt) {
  const std::size_t n = params_.rows * params_.cols;
  u_ = rt.AllocUnitAligned<float>(n, "u");
  v_ = rt.AllocUnitAligned<float>(n, "v");
  p_ = rt.AllocUnitAligned<float>(n, "p");
  cu_ = rt.AllocUnitAligned<float>(n, "cu");
  cv_ = rt.AllocUnitAligned<float>(n, "cv");
  z_ = rt.AllocUnitAligned<float>(n, "z");
  h_ = rt.AllocUnitAligned<float>(n, "h");
  unew_ = rt.AllocUnitAligned<float>(n, "unew");
  vnew_ = rt.AllocUnitAligned<float>(n, "vnew");
  pnew_ = rt.AllocUnitAligned<float>(n, "pnew");
  uold_ = rt.AllocUnitAligned<float>(n, "uold");
  vold_ = rt.AllocUnitAligned<float>(n, "vold");
  pold_ = rt.AllocUnitAligned<float>(n, "pold");
  reducer_.Setup(rt, "shallow_check");
}

void Shallow::Body(Proc& p) {
  const std::size_t R = params_.rows;
  const std::size_t C = params_.cols;
  const int P = p.nprocs();
  const Range cols = BlockRange(C, P, p.id());
  auto at = [&](std::size_t i, std::size_t j) { return j * R + i; };

  constexpr float kAlpha = 0.1f;      // time-smoothing constant
  constexpr float kFlux = 0.2f;       // flux coefficient
  constexpr float kGrad = 0.15f;      // gradient coefficient

  // Deterministic initialization of owned columns.
  for (std::size_t j = cols.begin; j < cols.end; ++j) {
    for (std::size_t i = 0; i < R; ++i) {
      const float a = 0.013f * static_cast<float>(i) +
                      0.029f * static_cast<float>(j);
      const float uu = std::sin(a);
      const float vv = std::cos(1.7f * a);
      const float pp = 10.0f + 0.5f * std::sin(0.41f * a);
      p.Write(u_, at(i, j), uu);
      p.Write(v_, at(i, j), vv);
      p.Write(p_, at(i, j), pp);
      p.Write(uold_, at(i, j), uu);
      p.Write(vold_, at(i, j), vv);
      p.Write(pold_, at(i, j), pp);
    }
  }
  p.Barrier();

  // Wraparound snapshot: the master copies the last column of p to the
  // first each iteration.  The copy's value is last iteration's height
  // field, so the READ happens here — right after the barrier, before
  // the owner's phase-C rewrite of column C-1 — and the value is carried
  // in host-private memory until the phase-C write below.  (Reading at
  // the write site would race with the owner's same-phase update; the
  // race detector flags exactly that.)
  std::vector<float> wrap(p.id() == 0 ? R : 0);

  for (int iter = 0; iter < params_.iterations; ++iter) {
    if (p.id() == 0) {
      for (std::size_t i = 0; i < R; ++i) {
        wrap[i] = p.Read(p_, at(i, C - 1));
      }
    }
    // --- Phase A: fluxes.  Own columns; reads column j-1 (left
    // neighbour's last column at the chunk boundary).
    for (std::size_t j = cols.begin; j < cols.end; ++j) {
      const std::size_t jm1 = j == 0 ? 0 : j - 1;
      for (std::size_t i = 0; i < R; ++i) {
        const float uj = p.Read(u_, at(i, j));
        const float vj = p.Read(v_, at(i, j));
        const float pj = p.Read(p_, at(i, j));
        const float um = p.Read(u_, at(i, jm1));
        const float vm = p.Read(v_, at(i, jm1));
        const float pm = p.Read(p_, at(i, jm1));
        p.Write(cu_, at(i, j), 0.5f * (pj + pm) * uj);
        p.Write(cv_, at(i, j), 0.5f * (pj + pm) * vj);
        p.Write(z_, at(i, j),
                (kFlux * (vj - vm) + kFlux * (uj - um)) / (0.5f * (pj + pm)));
        p.Write(h_, at(i, j), pj + 0.25f * (uj * uj + vj * vj));
      }
      p.Compute(10 * R);
    }
    p.Barrier();

    // --- Phase B: new time level.  Reads fluxes at j and j+1; writes
    // unew/vnew into column j+1 — the FIRST COLUMN OF THE RIGHT
    // NEIGHBOUR'S CHUNK at the boundary — and pnew into its own column.
    if (p.id() == 0) {
      for (std::size_t i = 0; i < R; ++i) {
        p.Write(unew_, at(i, 0), 0.99f * p.Read(uold_, at(i, 0)));
        p.Write(vnew_, at(i, 0), 0.99f * p.Read(vold_, at(i, 0)));
      }
    }
    for (std::size_t j = cols.begin; j < cols.end; ++j) {
      const std::size_t jp1 = j + 1 < C ? j + 1 : j;
      const bool write_next = j + 1 < C;
      for (std::size_t i = 0; i < R; ++i) {
        const float zj = p.Read(z_, at(i, j));
        const float zp = p.Read(z_, at(i, jp1));
        const float hj = p.Read(h_, at(i, j));
        const float hp = p.Read(h_, at(i, jp1));
        const float cuj = p.Read(cu_, at(i, j));
        const float cup = p.Read(cu_, at(i, jp1));
        const float cvj = p.Read(cv_, at(i, j));
        const float cvp = p.Read(cv_, at(i, jp1));
        if (write_next) {
          p.Write(unew_, at(i, j + 1),
                  p.Read(uold_, at(i, j)) +
                      kFlux * (zp + zj) * (cvp + cvj) * 0.25f -
                      kGrad * (hp - hj));
          p.Write(vnew_, at(i, j + 1),
                  p.Read(vold_, at(i, j)) -
                      kFlux * (zp + zj) * (cup + cuj) * 0.25f -
                      kGrad * (hp - hj));
        }
        p.Write(pnew_, at(i, j),
                p.Read(pold_, at(i, j)) - kGrad * (cup - cuj) -
                    kGrad * (cvp - cvj));
      }
      p.Compute(14 * R);
    }
    p.Barrier();

    // --- Phase C: time smoothing and rotation, own columns only.  The
    // first owned column of unew/vnew was written by the left neighbour —
    // true sharing on exactly one column.
    for (std::size_t j = cols.begin; j < cols.end; ++j) {
      for (std::size_t i = 0; i < R; ++i) {
        const float un = p.Read(unew_, at(i, j));
        const float vn = p.Read(vnew_, at(i, j));
        const float pn = p.Read(pnew_, at(i, j));
        const float uc = p.Read(u_, at(i, j));
        const float vc = p.Read(v_, at(i, j));
        const float pc = p.Read(p_, at(i, j));
        p.Write(uold_, at(i, j),
                uc + kAlpha * (un - 2.0f * uc + p.Read(uold_, at(i, j))));
        p.Write(vold_, at(i, j),
                vc + kAlpha * (vn - 2.0f * vc + p.Read(vold_, at(i, j))));
        p.Write(pold_, at(i, j),
                pc + kAlpha * (pn - 2.0f * pc + p.Read(pold_, at(i, j))));
        p.Write(u_, at(i, j), un);
        p.Write(v_, at(i, j), vn);
        p.Write(p_, at(i, j), pn);
      }
      p.Compute(12 * R);
    }

    // Wraparound write from the snapshot taken at the top of the
    // iteration; column 0 is touched by no other processor this phase.
    if (p.id() == 0) {
      for (std::size_t i = 0; i < R; ++i) {
        p.Write(p_, at(i, 0), wrap[i]);
      }
    }
    p.Barrier();
  }

  // Verification: global sum of the height field.
  double local = 0.0;
  for (std::size_t j = cols.begin; j < cols.end; ++j) {
    for (std::size_t i = 0; i < R; ++i) {
      local += p.Read(p_, at(i, j));
    }
  }
  reducer_.Contribute(p, local);
  p.Barrier();
  const double total = reducer_.Sum(p);
  if (p.id() == 0) result_ = total;
}

}  // namespace dsm::apps

#include "apps/kvstore.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace dsm::apps {
namespace {

// Integer-only hashing and Zipf weights: the request streams must be
// bit-identical across toolchains (the golden checksum depends on them),
// and libm's pow() is not — so the skew exponent is a small integer and
// every derived quantity is computed in 64-bit integer arithmetic.
constexpr std::uint64_t kZipfScale = 1ull << 40;

std::uint64_t Mix64(std::uint64_t x) { return SplitMix64(x).Next(); }

// Popularity rank -> key id: a bijection over the power-of-two keyspace
// (odd multiplier), so the hottest ranks land on unrelated keys — and,
// through the shard hash below, on unrelated shards.
std::size_t KeyOfRank(std::size_t rank, std::size_t num_keys) {
  return (rank * 0x9E3779B9ull) & (num_keys - 1);
}

}  // namespace

KvParams KvDataset(const std::string& label) {
  // Sizes: num_keys and num_shards are powers of two (the layout hashes
  // mask, not mod).  The table spans several 16 KB units even at "tiny"
  // so static aggregation has something to aggregate; the bench mixes
  // drive >= 1M requests at the default 8 processors
  // (8 × phases × ops_per_phase >= 1'048'576).
  if (label == "tiny") {
    return {"tiny", 4096, 16, 6, 400, 70, 10, 8, 1, 0x5eedcafeull};
  }
  if (label == "read-mostly") {
    return {"read-mostly", 65536, 64, 16, 8192, 95, 10, 16, 1,
            0x5eedcaffull};
  }
  if (label == "write-heavy") {
    return {"write-heavy", 65536, 64, 16, 8192, 25, 10, 16, 1,
            0x5eedcb00ull};
  }
  if (label == "hot") {
    // Hot-key contention: 60% of requests hammer the 16 hottest ranks,
    // and the sharper integer exponent concentrates the Zipf tail too —
    // a handful of shard locks carry most of the traffic.
    return {"hot", 65536, 64, 16, 8192, 50, 60, 16, 2, 0x5eedcb01ull};
  }
  DSM_CHECK(false) << "unknown KV dataset " << label;
  return {};
}

KvStore::KvStore(KvParams params) : params_(std::move(params)) {
  DSM_CHECK_GT(params_.num_keys, 0u);
  DSM_CHECK((params_.num_keys & (params_.num_keys - 1)) == 0)
      << "num_keys must be a power of two";
  DSM_CHECK_GT(params_.num_shards, 0);
  DSM_CHECK((params_.num_shards & (params_.num_shards - 1)) == 0)
      << "num_shards must be a power of two";
  DSM_CHECK(params_.zipf_exp == 1 || params_.zipf_exp == 2);

  // Deterministic layout, computed identically by every Runtime that
  // instantiates this dataset: keys are inserted in ascending id order
  // into their hashed shard with linear probing.  No run-time insertion
  // means no schedule-dependent probe chains.
  const std::size_t nkeys = params_.num_keys;
  const auto nshards = static_cast<std::size_t>(params_.num_shards);
  const std::size_t cap = shard_capacity();
  std::vector<std::uint8_t> used(nshards * cap, 0);
  slot_of_key_.resize(nkeys);
  for (std::size_t key = 0; key < nkeys; ++key) {
    const std::size_t shard =
        Mix64(params_.seed ^ (key * 0xA24BAED4963EE407ull)) & (nshards - 1);
    std::size_t slot = Mix64((params_.seed * 3) ^ key) & (cap - 1);
    std::size_t probes = 0;
    while (used[shard * cap + slot] != 0) {
      slot = (slot + 1) & (cap - 1);
      probes += 1;
      DSM_CHECK_LT(probes, cap) << "shard " << shard << " overflow";
    }
    used[shard * cap + slot] = 1;
    slot_of_key_[key] = static_cast<std::uint32_t>(shard * cap + slot);
  }

  // Integer Zipf cumulative weights over popularity ranks.
  zipf_cum_.resize(nkeys);
  std::uint64_t cum = 0;
  for (std::size_t r = 0; r < nkeys; ++r) {
    const std::uint64_t denom =
        params_.zipf_exp == 1 ? r + 1 : (r + 1) * (r + 1);
    cum += std::max<std::uint64_t>(kZipfScale / denom, 1);
    zipf_cum_[r] = cum;
  }
}

std::size_t KvStore::shard_capacity() const {
  // Load factor 1/2 keeps linear probe chains short; power of two so the
  // home-slot hash masks.
  return 2 * params_.num_keys / static_cast<std::size_t>(params_.num_shards);
}

std::size_t KvStore::heap_bytes() const {
  const std::size_t table_bytes = static_cast<std::size_t>(params_.num_shards) *
                                  shard_capacity() * 2 * sizeof(std::int32_t);
  return table_bytes + (96u << 10);
}

std::uint64_t KvStore::ModelledRequests(int num_procs) const {
  return static_cast<std::uint64_t>(num_procs) *
         static_cast<std::uint64_t>(params_.phases) *
         static_cast<std::uint64_t>(params_.ops_per_phase);
}

void KvStore::Setup(Runtime& rt) {
  table_ = rt.AllocUnitAligned<std::int32_t>(
      static_cast<std::size_t>(params_.num_shards) * shard_capacity() * 2,
      "kv_table");
  reducer_.Setup(rt, "kv_sum");
}

void KvStore::Body(Proc& p) {
  const auto nprocs = static_cast<std::size_t>(p.nprocs());
  const auto id = static_cast<std::size_t>(p.id());
  const std::size_t cap = shard_capacity();

  // Load phase: keys are partitioned over processors for initialization;
  // each slot has exactly one writer before the barrier, so no locks are
  // needed and the phase is race-free by ownership.
  for (std::size_t key = id; key < params_.num_keys; key += nprocs) {
    const std::size_t slot = slot_of_key_[key];
    p.Write(table_, 2 * slot, static_cast<std::int32_t>(key + 1));
    p.Write(table_, 2 * slot + 1,
            static_cast<std::int32_t>((key * 2654435761ull) % 1021));
  }
  p.Barrier();

  Xoshiro256 rng(params_.seed ^ (0x9e3779b97f4a7c15ull * (id + 1)));
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::int64_t get_sink = 0;  // schedule-dependent; never in the checksum
  std::uint64_t op_index = 0;

  for (int phase = 0; phase < params_.phases; ++phase) {
    PhaseStart(p, phase);
    for (int op = 0; op < params_.ops_per_phase; ++op, ++op_index) {
      // Pick the key: hot-set hit or a Zipf sample over all ranks.
      std::size_t rank;
      if (rng.UniformInt(100) <
          static_cast<std::uint64_t>(params_.hot_percent)) {
        rank = rng.UniformInt(static_cast<std::uint64_t>(params_.hot_ranks));
      } else {
        const std::uint64_t u = rng.UniformInt(zipf_cum_.back());
        rank = static_cast<std::size_t>(
            std::upper_bound(zipf_cum_.begin(), zipf_cum_.end(), u) -
            zipf_cum_.begin());
      }
      const std::size_t slot = slot_of_key_[KeyOfRank(rank, params_.num_keys)];
      const auto shard = static_cast<int>(slot / cap);

      if (rng.UniformInt(100) <
          static_cast<std::uint64_t>(params_.read_percent)) {
        // GET: the value word is only ever written under the shard lock,
        // so the read must hold it too — an unlocked fast path here is
        // precisely the bug RacyKv plants for the detector.
        p.Lock(shard);
        get_sink += p.Read(table_, 2 * slot + 1);
        p.Unlock(shard);
        gets += 1;
      } else {
        // UPDATE: additive read-modify-write; the delta depends only on
        // this proc's op ordinal, so the sum of all applied deltas — and
        // with it every final value word — commutes across schedules.
        const auto delta = static_cast<std::int32_t>(op_index % 7 + 1);
        p.Lock(shard);
        const std::int32_t v = p.Read(table_, 2 * slot + 1);
        p.Write(table_, 2 * slot + 1, v + delta);
        p.Unlock(shard);
        puts += 1;
      }
      p.Compute(24);  // modelled per-request service work
    }
    p.Barrier();
  }
  (void)get_sink;

  // Per-proc op tallies: pure functions of the seeded stream, identical
  // under any lock schedule.
  reducer_.Contribute(
      p, static_cast<double>(3 * gets) + static_cast<double>(5 * puts));
  p.Barrier();

  // Every processor folds the final table (key tags + values; all-integer
  // and schedule-independent after the last barrier) with the tallies.
  double table_sum = 0.0;
  const std::size_t words =
      static_cast<std::size_t>(params_.num_shards) * cap * 2;
  for (std::size_t w = 0; w < words; ++w) {
    table_sum += static_cast<double>(p.Read(table_, w));
  }
  p.Compute(words);
  const double total = table_sum + reducer_.Sum(p);
  if (p.id() == 0) result_ = total;
}

// --- RacyKv ------------------------------------------------------------------

RacyKv::RacyKv(KvParams params) : KvStore(std::move(params)) {
  DSM_CHECK_GT(params_.phases, 0);
}

std::size_t RacyKv::heap_bytes() const {
  return KvStore::heap_bytes() + (32u << 10);
}

void RacyKv::Setup(Runtime& rt) {
  KvStore::Setup(rt);
  racy_ = rt.AllocUnitAligned<std::int32_t>(
      static_cast<std::size_t>(params_.phases), "kv_racy_stats");
}

void RacyKv::PhaseStart(Proc& p, int phase) {
  // The planted bug: a per-phase stats word updated outside any shard
  // lock.  wp writes it, rp touches it, and since the last barrier
  // neither has synchronized with the other — unordered no matter how
  // the host schedules the two.  Values are discarded (p.Read still
  // drives the protocol), so the checksum never sees them.
  const auto nprocs = static_cast<std::size_t>(p.nprocs());
  const auto id = static_cast<std::size_t>(p.id());
  const auto wp = static_cast<std::size_t>(phase) % nprocs;
  const auto rp = (static_cast<std::size_t>(phase) + 1) % nprocs;
  if (id == wp) {
    p.Write(racy_, static_cast<std::size_t>(phase),
            static_cast<std::int32_t>(phase + 1));
  }
  if (id == rp && rp != wp) {
    if (phase % 2 == 0) {
      (void)p.Read(racy_, static_cast<std::size_t>(phase));
    } else {
      p.Write(racy_, static_cast<std::size_t>(phase),
              static_cast<std::int32_t>(phase + 101));
    }
  }
}

std::vector<RaceReport> RacyKv::ExpectedRaces(int num_procs,
                                              std::size_t unit_bytes) const {
  std::vector<RaceReport> out;
  if (num_procs < 2) return out;
  for (int k = 0; k < params_.phases; ++k) {
    const GlobalAddr addr = racy_.addr_of(static_cast<std::size_t>(k));
    // Request phase k runs after k + 1 barrier departures (the load
    // phase's barrier precedes phase 0), and both planted accesses happen
    // before any lock acquire of the phase, so the sub-phase is 0.
    const auto phase = static_cast<std::uint32_t>(k + 1);
    RaceSite a{static_cast<ProcId>(k % num_procs), /*is_write=*/true, phase,
               0};
    RaceSite b{static_cast<ProcId>((k + 1) % num_procs),
               /*is_write=*/k % 2 != 0, phase, 0};
    // Same normalization as RaceDetector::Report: (proc, kind) order.
    if (std::tuple(b.proc, b.is_write) < std::tuple(a.proc, a.is_write)) {
      std::swap(a, b);
    }
    out.push_back(RaceReport{
        static_cast<UnitId>(addr / unit_bytes),
        static_cast<std::uint32_t>((addr % unit_bytes) / kWordBytes), a, b});
  }
  // Same order as RaceDetector::Collect.
  std::sort(out.begin(), out.end(),
            [](const RaceReport& x, const RaceReport& y) {
              return std::tuple(x.unit, x.word, x.first.proc, x.second.proc) <
                     std::tuple(y.unit, y.word, y.first.proc, y.second.proc);
            });
  return out;
}

}  // namespace dsm::apps

// Application factory: name + dataset → Application instance, plus the
// catalogue of (app, dataset) pairs from the paper's evaluation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/app_common.h"

namespace dsm::apps {

struct AppSpec {
  std::string app;
  std::string dataset;
};

// Throws CheckError on unknown names.
std::unique_ptr<Application> MakeApp(const std::string& app,
                                     const std::string& dataset);

// All (app, dataset) pairs evaluated in the paper (Figures 1 and 2).
std::vector<AppSpec> Figure1Specs();  // Barnes, ILINK, TSP, Water
std::vector<AppSpec> Figure2Specs();  // Jacobi, 3D-FFT, MGS, Shallow × sizes
std::vector<AppSpec> AllSpecs();      // the union, Table 1 order

}  // namespace dsm::apps

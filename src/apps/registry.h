// Application factory: name + dataset → Application instance, plus the
// catalogue of (app, dataset) pairs from the paper's evaluation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/app_common.h"

namespace dsm::apps {

struct AppSpec {
  std::string app;
  std::string dataset;
};

// Throws CheckError on unknown names.
std::unique_ptr<Application> MakeApp(const std::string& app,
                                     const std::string& dataset);

// All (app, dataset) pairs evaluated in the paper (Figures 1 and 2).
std::vector<AppSpec> Figure1Specs();  // Barnes, ILINK, TSP, Water
std::vector<AppSpec> Figure2Specs();  // Jacobi, 3D-FFT, MGS, Shallow × sizes
std::vector<AppSpec> AllSpecs();      // the union, Table 1 order

// --- cross-backend conformance sweep ---------------------------------------
// One row per application — the paper's 8-program suite plus the
// repo-local additions (Fuzz, KV, Life): a seeded, test-sized input plus
// the golden checksum its result() must reproduce at `num_procs`
// processors under every (backend × aggregation) cell of the conformance
// sweep (tests/test_conformance.cc).
struct ConformanceScenario {
  std::string app;
  std::string dataset;  // deterministic (seeded) test-sized input
  int num_procs;
  // Golden result for (app, dataset, num_procs), recorded from the
  // sequentially consistent reference backend.
  double checksum;
  // Cross-cell comparison tolerance (relative).  0 → the app is
  // bit-deterministic at fixed num_procs, so every cell must produce the
  // identical bits.  >0 → scheduling-dependent floating-point accumulation
  // (e.g. force sums under locks); cells agree only within this error.
  //
  // A lock-synchronized app can still earn rel_tol 0 by building its
  // checksum exclusively from commuting, per-proc-deterministic parts
  // (DESIGN.md §11): shared updates that are additive integer
  // read-modify-writes (the applied-delta sum commutes across any grant
  // order), per-proc tallies that are pure functions of the proc's own
  // seeded stream, and a final whole-state fold taken after the last
  // barrier.  Values READ mid-stream under a lock are schedule-dependent
  // and must never feed the checksum.  Fuzz and KV follow this recipe.
  double rel_tol;
  // True iff the app's full modelled state (times, comm statistics) is
  // bit-reproducible at a fixed configuration.  False for any app that
  // synchronizes through locks, whose grant order the host schedules —
  // including Fuzz, whose *checksum* is exact (rel_tol 0: commuting
  // integer sums) while its statistics are not.  test_gc bit-compares
  // modelled state across GC settings only when this is set.
  bool modelled_stable = true;
};

std::vector<ConformanceScenario> ConformanceScenarios();

}  // namespace dsm::apps

#include "apps/tsp.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace dsm::apps {

TspParams TspDataset(const std::string& label) {
  if (label == "11-city") return {"11-city", 11, 4};
  if (label == "tiny") return {"tiny", 8, 4};
  DSM_CHECK(false) << "unknown TSP dataset " << label;
  return {};
}

std::vector<float> Tsp::Distances(const TspParams& params) {
  // Cities on a deterministic random plane; symmetric Euclidean distances.
  Xoshiro256 rng(params.seed);
  const int n = params.num_cities;
  std::vector<double> xs(n), ys(n);
  for (int i = 0; i < n; ++i) {
    xs[i] = rng.UniformDouble(0.0, 100.0);
    ys[i] = rng.UniformDouble(0.0, 100.0);
  }
  std::vector<float> d(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double dx = xs[i] - xs[j], dy = ys[i] - ys[j];
      d[static_cast<std::size_t>(i) * n + j] =
          static_cast<float>(std::sqrt(dx * dx + dy * dy));
    }
  }
  return d;
}

double Tsp::BruteForce(const TspParams& params) {
  const int n = params.num_cities;
  DSM_CHECK_LE(n, 10) << "brute force verification limited to 10 cities";
  const std::vector<float> d = Distances(params);
  std::vector<int> perm(n - 1);
  for (int i = 0; i < n - 1; ++i) perm[i] = i + 1;
  double best = std::numeric_limits<double>::infinity();
  do {
    double cost = d[static_cast<std::size_t>(perm[0])];
    int prev = perm[0];
    for (int k = 1; k < n - 1; ++k) {
      cost += d[static_cast<std::size_t>(prev) * n + perm[k]];
      prev = perm[k];
    }
    cost += d[static_cast<std::size_t>(prev) * n];
    best = std::min(best, cost);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

Tsp::Tsp(TspParams params) : params_(std::move(params)) {
  DSM_CHECK_LE(params_.num_cities, kTspMaxCities);
}

std::size_t Tsp::heap_bytes() const {
  return kPoolSize * sizeof(TspTour) + kPoolSize * 8 + (512u << 10);
}

void Tsp::Setup(Runtime& rt) {
  const int n = params_.num_cities;
  dist_ = rt.AllocUnitAligned<float>(static_cast<std::size_t>(n) * n, "dist");
  pool_ = rt.AllocUnitAligned<TspTour>(kPoolSize, "tour_pool");
  pq_keys_ = rt.AllocUnitAligned<float>(kPoolSize, "pq_keys");
  pq_tours_ = rt.AllocUnitAligned<std::int32_t>(kPoolSize, "pq_tours");
  freelist_ = rt.AllocUnitAligned<std::int32_t>(kPoolSize, "freelist");
  meta_ = rt.AllocUnitAligned<std::int32_t>(1024, "meta");
  best_cost_ = rt.AllocUnitAligned<float>(1024, "best");
  reducer_.Setup(rt, "tsp_check");
}

void Tsp::Body(Proc& p) {
  const int n = params_.num_cities;

  // Private copy of the distance matrix (read-only shared data is fetched
  // once per processor) and per-city minimum outgoing edge for the bound.
  std::vector<float> d(static_cast<std::size_t>(n) * n);
  std::vector<float> min_edge(n, std::numeric_limits<float>::infinity());

  if (p.id() == 0) {
    const std::vector<float> host = Distances(params_);
    for (std::size_t i = 0; i < host.size(); ++i) p.Write(dist_, i, host[i]);
    // Free list holds every pool slot; seed tour goes in slot taken below.
    for (std::size_t i = 0; i < kPoolSize; ++i) {
      p.Write(freelist_, i, static_cast<std::int32_t>(kPoolSize - 1 - i));
    }
    p.Write(meta_, 2, static_cast<std::int32_t>(kPoolSize));  // free top
    // Seed the bound with a greedy nearest-neighbour tour, as the Rice TSP
    // does; a tight initial bound also makes the explored node set nearly
    // schedule-independent.
    {
      std::vector<bool> used(n, false);
      used[0] = true;
      int last = 0;
      float greedy = 0.0f;
      for (int k = 1; k < n; ++k) {
        int next = -1;
        float best_w = std::numeric_limits<float>::max();
        for (int c = 1; c < n; ++c) {
          const float w = host[static_cast<std::size_t>(last) * n + c];
          if (!used[c] && w < best_w) {
            best_w = w;
            next = c;
          }
        }
        used[next] = true;
        greedy += best_w;
        last = next;
      }
      greedy += host[static_cast<std::size_t>(last) * n];
      p.Write(best_cost_, 0, greedy * 1.0001f);
    }
    // Seed: the partial tour {0}.
    TspTour seed{};
    seed.ncity = 1;
    seed.cost = 0.0f;
    seed.bound = 0.0f;
    seed.path[0] = 0;
    p.Write(pool_, 0, seed);
    p.Write(meta_, 2, static_cast<std::int32_t>(kPoolSize - 1));
    p.Write(pq_keys_, 0, 0.0f);
    p.Write(pq_tours_, 0, 0);
    p.Write(meta_, 0, 1);  // queue size
    p.Write(meta_, 1, 0);  // in-flight
  }
  p.Barrier();

  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const float w = p.Read(dist_, static_cast<std::size_t>(i) * n + j);
      d[static_cast<std::size_t>(i) * n + j] = w;
      if (i != j) min_edge[i] = std::min(min_edge[i], w);
    }
  }

  auto lower_bound = [&](const TspTour& t) {
    // Cost so far + min outgoing edge of every city still to leave.
    float lb = t.cost + min_edge[t.path[t.ncity - 1]];
    bool used[kTspMaxCities] = {};
    for (int k = 0; k < t.ncity; ++k) used[t.path[k]] = true;
    for (int c = 1; c < n; ++c) {
      if (!used[c]) lb += min_edge[c];
    }
    return lb;
  };

  // Sequential DFS below the queue depth, pruning against `limit`.
  // Returns the best complete cost found (or +inf) and its path.
  std::uint64_t dfs_nodes = 0;
  auto dfs = [&](auto&& self, std::vector<int>& path, bool used[],
                 float cost, float& limit, std::vector<int>& best_path)
      -> void {
    ++dfs_nodes;
    const int last = path.back();
    if (static_cast<int>(path.size()) == n) {
      const float total = cost + d[static_cast<std::size_t>(last) * n];
      if (total < limit) {
        limit = total;
        best_path = path;
      }
      return;
    }
    for (int c = 1; c < n; ++c) {
      if (used[c]) continue;
      const float nc = cost + d[static_cast<std::size_t>(last) * n + c];
      // Cheap bound: remaining cities each cost at least their min edge.
      float lb = nc;
      for (int r = 1; r < n; ++r) {
        if (!used[r] && r != c) lb += min_edge[r];
      }
      lb += min_edge[c];
      if (lb >= limit) continue;
      used[c] = true;
      path.push_back(c);
      self(self, path, used, nc, limit, best_path);
      path.pop_back();
      used[c] = false;
    }
  };

  // Worker loop.
  for (;;) {
    p.Lock(kQueueLock);
    std::int32_t qsize = p.Read(meta_, 0);
    const std::int32_t in_flight = p.Read(meta_, 1);
    if (qsize == 0) {
      p.Unlock(kQueueLock);
      if (in_flight == 0) break;
      // Back off before polling again (the paper-era code sleeps between
      // queue polls; immediate re-polling would hammer the queue lock and,
      // in the simulation, let the poller's clock race ahead of the
      // workers actually producing tours).
      p.Compute(1000000);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    // Pop the minimum-bound tour from the shared heap.
    const std::int32_t tour_idx = p.Read(pq_tours_, 0);
    --qsize;
    if (qsize > 0) {
      float k = p.Read(pq_keys_, qsize);
      std::int32_t t = p.Read(pq_tours_, qsize);
      std::size_t hole = 0;
      for (;;) {
        const std::size_t l = 2 * hole + 1, r = 2 * hole + 2;
        std::size_t child = hole;
        float ck = k;
        if (l < static_cast<std::size_t>(qsize)) {
          const float lk = p.Read(pq_keys_, l);
          if (lk < ck) {
            child = l;
            ck = lk;
          }
        }
        if (r < static_cast<std::size_t>(qsize)) {
          const float rk = p.Read(pq_keys_, r);
          if (rk < ck) {
            child = r;
            ck = rk;
          }
        }
        if (child == hole) break;
        p.Write(pq_keys_, hole, ck);
        p.Write(pq_tours_, hole, p.Read(pq_tours_, child));
        hole = child;
      }
      p.Write(pq_keys_, hole, k);
      p.Write(pq_tours_, hole, t);
    }
    p.Write(meta_, 0, qsize);
    p.Write(meta_, 1, in_flight + 1);
    p.Unlock(kQueueLock);

    // Read the popped tour from the pool (diffs migrate from whichever
    // processor allocated it).
    const TspTour tour = p.Read(pool_, static_cast<std::size_t>(tour_idx));

    p.Lock(kBestLock);
    const float best_now = p.Read(best_cost_, 0);
    p.Unlock(kBestLock);

    std::vector<std::pair<float, TspTour>> children;
    if (tour.bound < best_now) {
      if (tour.ncity < params_.queue_depth) {
        // Expand one level into the shared queue.
        bool used[kTspMaxCities] = {};
        for (int k = 0; k < tour.ncity; ++k) used[tour.path[k]] = true;
        for (int c = 1; c < n; ++c) {
          if (used[c]) continue;
          TspTour child = tour;
          child.path[child.ncity] = c;
          child.ncity += 1;
          child.cost +=
              d[static_cast<std::size_t>(tour.path[tour.ncity - 1]) * n + c];
          child.bound = lower_bound(child);
          p.Compute(4 * n);
          if (child.bound < best_now) {
            children.emplace_back(child.bound, child);
          }
        }
      } else {
        // Solve the subtree by sequential DFS.
        std::vector<int> path(tour.path, tour.path + tour.ncity);
        bool used[kTspMaxCities] = {};
        for (int k = 0; k < tour.ncity; ++k) used[tour.path[k]] = true;
        float limit = best_now;
        std::vector<int> best_path;
        dfs_nodes = 0;
        dfs(dfs, path, used, tour.cost, limit, best_path);
        // Each 11-city subtree stands in for the ~10^3x larger 19-city
        // subtree of the paper's input; the charge is calibrated so the
        // compute:communication ratio matches (DESIGN.md section 5).
        p.Compute(dfs_nodes * 24000 * static_cast<std::uint64_t>(n));
        if (limit < best_now) {
          p.Lock(kBestLock);
          if (limit < p.Read(best_cost_, 0)) {
            p.Write(best_cost_, 0, limit);
            for (int k = 0; k < n; ++k) {
              p.Write(best_cost_, 16 + static_cast<std::size_t>(k),
                      static_cast<float>(best_path[k]));
            }
          }
          p.Unlock(kBestLock);
        }
      }
    }

    // Allocate children in the pool, then push them and retire the parent
    // under one queue acquisition.
    std::vector<std::int32_t> child_idx;
    if (!children.empty()) {
      p.Lock(kPoolLock);
      std::int32_t top = p.Read(meta_, 2);
      for (auto& [bound, child] : children) {
        DSM_CHECK_GT(top, 0) << "TSP tour pool exhausted";
        const std::int32_t idx = p.Read(freelist_, --top);
        p.Write(pool_, static_cast<std::size_t>(idx), child);
        child_idx.push_back(idx);
      }
      p.Write(meta_, 2, top);
      p.Unlock(kPoolLock);
    }

    p.Lock(kQueueLock);
    std::int32_t size = p.Read(meta_, 0);
    for (std::size_t k = 0; k < children.size(); ++k) {
      std::size_t hole = static_cast<std::size_t>(size);
      float key = children[k].first;
      ++size;
      while (hole > 0) {
        const std::size_t parent = (hole - 1) / 2;
        const float pk = p.Read(pq_keys_, parent);
        if (pk <= key) break;
        p.Write(pq_keys_, hole, pk);
        p.Write(pq_tours_, hole, p.Read(pq_tours_, parent));
        hole = parent;
      }
      p.Write(pq_keys_, hole, key);
      p.Write(pq_tours_, hole, child_idx[k]);
    }
    p.Write(meta_, 0, size);
    p.Write(meta_, 1, p.Read(meta_, 1) - 1);
    p.Unlock(kQueueLock);

    // Retire the parent slot.
    p.Lock(kPoolLock);
    const std::int32_t top = p.Read(meta_, 2);
    p.Write(freelist_, static_cast<std::size_t>(top), tour_idx);
    p.Write(meta_, 2, top + 1);
    p.Unlock(kPoolLock);
  }

  p.Barrier();
  double local = 0.0;
  if (p.id() == 0) {
    p.Lock(kBestLock);
    local = p.Read(best_cost_, 0);
    p.Unlock(kBestLock);
  }
  reducer_.Contribute(p, local);
  p.Barrier();
  const double total = reducer_.Sum(p);
  if (p.id() == 0) result_ = total;
}

}  // namespace dsm::apps

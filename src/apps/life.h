// Life: Conway's game of life on a row-band-partitioned grid — a second
// stencil conformance app (alongside Jacobi) whose state is trivially
// visualizable and whose integer update rule makes the checksum exact on
// every backend.  Not from the paper's suite; ported as a cheap
// conformance cell (ROADMAP "lighter companions").
//
// Double-buffered: generation g reads grid A (fully published before the
// previous barrier) and writes the proc's own band of grid B, one
// barrier per generation, roles swapping each time.  Only the band
// boundary rows are actually shared — the same neighbour-row sharing
// grain as Jacobi, at one int32 word per cell (no bit packing: adjacent
// cells in a word would give one word two owning writers at the band
// edge).  Edges are dead (no wraparound — the Shallow wraparound race
// was found by the detector; Life keeps the stencil strictly local).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "apps/app_common.h"

namespace dsm::apps {

struct LifeParams {
  std::string label;
  std::size_t rows;
  std::size_t cols;      // int32 cells; cols*4 bytes is the sharing grain
  int generations;
  int density_pct;       // seeded soup density, percent alive
  std::uint64_t seed;
};

LifeParams LifeDataset(const std::string& label);  // "tiny", "256x256"

class Life : public Application {
 public:
  explicit Life(LifeParams params);

  const char* name() const override { return "Life"; }
  std::string dataset() const override { return params_.label; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;
  void Body(Proc& p) override;
  double result() const override { return result_; }

 private:
  LifeParams params_;
  SharedArray<std::int32_t> grid_[2];  // double buffer
  Reducer reducer_;
  double result_ = 0.0;
};

}  // namespace dsm::apps

// Application framework: the common harness for the paper's 8-program
// suite (§5.2) and the repo-local additions (Fuzz, the KV request
// workload, Life).  Every application implements Application; benches
// and tests drive any app at any consistency-unit configuration through
// Execute().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/runtime.h"

namespace dsm::apps {

class Application {
 public:
  virtual ~Application() = default;

  virtual const char* name() const = 0;
  // Dataset label as the paper prints it (e.g. "1Kx1K").
  virtual std::string dataset() const = 0;
  // Shared-heap bytes this instance needs.
  virtual std::size_t heap_bytes() const = 0;

  // Allocate shared data (called once, before the parallel region).
  virtual void Setup(Runtime& rt) = 0;
  // The parallel body, executed by every logical processor.
  virtual void Body(Proc& p) = 0;
  // Verification value, available after the run completes.  Computed
  // identically in sequential (num_procs = 1) and parallel runs.
  virtual double result() const = 0;
};

struct AppRun {
  RunStats stats;
  double result = 0.0;
};

// Run `app` under `cfg` (cfg.heap_bytes is overridden by the app).
AppRun Execute(Application& app, RuntimeConfig cfg);

// Convenience: same app logic on one processor — the Table 1 baseline.
AppRun ExecuteSequential(Application& app, RuntimeConfig cfg);

// --- cross-proc reduction -----------------------------------------------
// Per-processor slots padded to one VM page each, so that the reduction
// adds the same (small) amount of end-of-phase sharing at every unit size.
// Usage: Contribute() then Barrier() on all procs, then Sum() everywhere.
class Reducer {
 public:
  Reducer() = default;

  void Setup(Runtime& rt, const char* name);
  void Contribute(Proc& p, double value);
  // Sum of all contributions; call after a barrier.  Every caller reads
  // all slots (the master-reads pattern of the paper's checksums).
  double Sum(Proc& p) const;

 private:
  static constexpr std::size_t kStrideDoubles =
      kBasePageBytes / sizeof(double);
  SharedArray<double> slots_;
  int nprocs_ = 0;
};

// Block partition helpers: rows/columns/indices [begin, end) for proc p.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool contains(std::size_t i) const { return i >= begin && i < end; }
};
Range BlockRange(std::size_t n, int nprocs, int p);

}  // namespace dsm::apps

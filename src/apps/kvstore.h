// KV: a partitioned key-value store laid out over the DSM heap — the
// request-shaped workload the scientific suite never exercises (ROADMAP
// "serve real traffic").  Each shard is a fixed-capacity open-addressed
// hash table guarded by its own LockService lock; every processor drives
// a seeded Zipfian-skewed request stream (GET / additive UPDATE) against
// the shared table, barrier-delimited into rounds.  Shards are packed
// contiguously, NOT unit-padded: how many shards share one consistency
// unit is exactly the aggregation-vs-false-sharing knob the paper
// studies, now under lock-sharded request traffic instead of SPMD bands.
//
// The checksum must be bit-comparable across backends even though lock
// grant order is host-scheduled, so it is built only from commuting and
// per-proc-deterministic parts (the requirement DESIGN.md §11 documents
// for every lock-scheduled app):
//
//   * UPDATEs are additive (value += delta, deltas a pure function of the
//     proc's seeded stream) — integer addition commutes, so the final
//     key/value words are exact no matter how the host interleaves the
//     shard-lock hand-offs,
//   * GET values are read under the shard lock but feed NOTHING: a read
//     taken mid-stream depends on the schedule, so only the per-proc op
//     tallies (counts, derived from the seeded stream alone) are summed,
//   * after the final barrier every processor reads the whole table
//     (master-reads pattern) and folds the key/value words plus the
//     reduced tallies into the result.
//
// Like Fuzz/Water/TSP, the *modelled* state is host-order dependent
// (lock chains), so conformance scenarios mark rel_tol == 0 with
// modelled_stable == false.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/app_common.h"

namespace dsm::apps {

struct KvParams {
  std::string label;
  std::size_t num_keys;    // power of two; keyspace of the store
  int num_shards;          // power of two; one LockService lock per shard
  int phases;              // barrier-delimited request rounds
  int ops_per_phase;       // requests per processor per round
  int read_percent;        // GET share of the mix (rest: additive UPDATE)
  int hot_percent;         // share of requests redirected to the hot set
  int hot_ranks;           // size of the hot set (hottest Zipf ranks)
  int zipf_exp;            // integer Zipf exponent (1 or 2; see .cc)
  std::uint64_t seed;      // expanded per processor
};

// Named datasets: "tiny" (conformance-sized), and the bench mixes
// "read-mostly" / "write-heavy" / "hot" — each sized so the default
// 8-processor sweep drives >= 1M modelled requests per row.
KvParams KvDataset(const std::string& label);

class KvStore : public Application {
 public:
  explicit KvStore(KvParams params);

  const char* name() const override { return "KV"; }
  std::string dataset() const override { return params_.label; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;
  void Body(Proc& p) override;
  double result() const override { return result_; }

  // Requests a run at `num_procs` models (procs × phases × ops_per_phase)
  // — the denominator of bench_wallclock's modelled_requests_per_sec.
  std::uint64_t ModelledRequests(int num_procs) const;

  const KvParams& params() const { return params_; }

 protected:
  // RacyKv hook: called once at the top of every request phase, BEFORE
  // the proc takes any shard lock in that phase.  The ordering matters
  // for the exact-match race fixture: a fresh barrier departure leaves
  // the detector's lock-chain sub-phase at 0, so accesses planted here
  // carry deterministic (phase, 0) stamps even though the later locked
  // traffic advances host-order-dependent chain positions.
  virtual void PhaseStart(Proc& p, int phase) {
    (void)p;
    (void)phase;
  }

  std::size_t shard_capacity() const;  // slots per shard (load factor 1/2)

  KvParams params_;
  // Precomputed in the constructor, identically on every process/backend:
  // global slot index (shard * capacity + probe slot) per key, and the
  // integer Zipf cumulative weights the request streams sample from.
  std::vector<std::uint32_t> slot_of_key_;
  std::vector<std::uint64_t> zipf_cum_;

  SharedArray<std::int32_t> table_;  // [2 * slot] = key tag, [+1] = value
  Reducer reducer_;
  double result_ = 0.0;
};

// RacyKv: the deliberately under-locked variant for the race detector's
// KV regression gate — the classic "metrics counter updated outside the
// shard lock" bug, planted deterministically.  Same seeded, correctly
// locked request traffic as KvStore, plus ONE unsynchronized word per
// request phase: a dedicated stats slot racy_[k] that proc k % nprocs
// writes and proc (k + 1) % nprocs reads (even phases) or writes (odd
// phases) with no ordering between them.  Both accesses happen at the
// top of the phase, before either proc touches a shard lock, so the
// report stamps are (phase, subphase 0) — deterministic despite the
// host-scheduled lock chains around them (mirrors RacyFuzz).  The racy
// values never feed the checksum, so the result stays bit-identical
// across every cell while the report list is exactly ExpectedRaces().
class RacyKv : public KvStore {
 public:
  explicit RacyKv(KvParams params);

  const char* name() const override { return "RacyKv"; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;

  // The injected-race schedule, normalized and ordered exactly as
  // RaceDetector::Collect reports it.  Valid after Setup (needs racy_'s
  // address) for a run at `num_procs` processors and `unit_bytes` units.
  std::vector<RaceReport> ExpectedRaces(int num_procs,
                                        std::size_t unit_bytes) const;

 protected:
  void PhaseStart(Proc& p, int phase) override;

 private:
  SharedArray<std::int32_t> racy_;  // one unsynchronized word per phase
};

}  // namespace dsm::apps

// Barnes-Hut N-body simulation (SPLASH Barnes, paper §5.5).
//
// The octree is built sequentially by a master processor (reading
// essentially the entire body array); the O(N log N) force computation is
// done in parallel.  Bodies are small AoS records assigned to processors
// cyclically, so every page of the body array is written concurrently by
// all processors — heavy write-write false sharing, but because there is
// extensive true sharing on the same pages (everyone reads positions),
// false sharing shows up almost entirely as piggybacked useless data
// (velocities, accelerations, per-body work counters that only the owner
// reads), not as useless messages.  Aggregation therefore wins.
#pragma once

#include <cstddef>
#include <string>

#include "apps/app_common.h"

namespace dsm::apps {

struct BarnesParams {
  std::string label;
  std::size_t num_bodies;
  int steps = 2;
  float theta = 0.6f;  // opening criterion
  float dt = 0.025f;
};

BarnesParams BarnesDataset(const std::string& label);  // "16K"

// Shared AoS records.  Sizes mirror SPLASH (bodies ~100 B).
struct BarnesBody {
  float pos[3];
  float vel[3];
  float acc[3];
  float mass;
  float phi;   // potential, written by owner, read by nobody else
  float work;  // interaction counter, written by owner, read by nobody
  float pad[12];
};
static_assert(sizeof(BarnesBody) == 96);

struct BarnesCell {
  float center[3];
  float half;  // half of the cube edge
  float com[3];
  float mass;
  // child[j]: -1 empty, >= 0 child cell index, <= -2 body index -(c+2).
  std::int32_t child[8];
  std::int32_t pad[4];
};
static_assert(sizeof(BarnesCell) == 80);

class Barnes : public Application {
 public:
  explicit Barnes(BarnesParams params);

  const char* name() const override { return "Barnes"; }
  std::string dataset() const override { return params_.label; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;
  void Body(Proc& p) override;
  double result() const override { return result_; }

 private:
  void BuildTree(Proc& p);  // master only
  void ComputeForce(Proc& p, std::size_t body_index);

  BarnesParams params_;
  std::size_t max_cells_ = 0;
  SharedArray<BarnesBody> bodies_;
  SharedArray<BarnesCell> cells_;
  SharedArray<std::int32_t> tree_header_;  // [0] = number of cells
  Reducer reducer_;
  double result_ = 0.0;
};

}  // namespace dsm::apps

#include "apps/app_common.h"

#include "common/check.h"

namespace dsm::apps {

AppRun Execute(Application& app, RuntimeConfig cfg) {
  cfg.heap_bytes = app.heap_bytes();
  // The apps size their fixed scratch slack (Reducer slots, shared
  // scalars) for the paper's native 8 processors, and the Reducer is the
  // only allocation that grows with the cluster — one page-padded slot
  // per processor.  Charge the excess here so scaled clusters (--procs
  // past 8) don't exhaust the heap; every run at <= 8 processors keeps
  // its exact heap size, unit count, and modelled state.
  if (cfg.num_procs > 8) {
    cfg.heap_bytes +=
        static_cast<std::size_t>(cfg.num_procs - 8) * kBasePageBytes;
  }
  // Round the heap up to a whole number of consistency units.
  const std::size_t unit = cfg.unit_bytes();
  cfg.heap_bytes = (cfg.heap_bytes + unit - 1) / unit * unit;

  Runtime rt(cfg);
  app.Setup(rt);
  rt.Run([&](Proc& p) { app.Body(p); });
  return {rt.CollectStats(), app.result()};
}

AppRun ExecuteSequential(Application& app, RuntimeConfig cfg) {
  cfg.num_procs = 1;
  cfg.allow_sequential = true;  // intentional sequential-oracle run
  return Execute(app, cfg);
}

void Reducer::Setup(Runtime& rt, const char* name) {
  nprocs_ = rt.config().num_procs;
  slots_ = rt.AllocUnitAligned<double>(kStrideDoubles * nprocs_, name);
}

void Reducer::Contribute(Proc& p, double value) {
  p.Write(slots_, static_cast<std::size_t>(p.id()) * kStrideDoubles, value);
}

double Reducer::Sum(Proc& p) const {
  double total = 0.0;
  for (int q = 0; q < nprocs_; ++q) {
    total += p.Read(slots_, static_cast<std::size_t>(q) * kStrideDoubles);
  }
  return total;
}

Range BlockRange(std::size_t n, int nprocs, int p) {
  DSM_CHECK_GE(p, 0);
  DSM_CHECK_LT(p, nprocs);
  const std::size_t base = n / nprocs;
  const std::size_t extra = n % nprocs;
  const std::size_t up = static_cast<std::size_t>(p);
  const std::size_t begin = up * base + std::min(up, extra);
  return {begin, begin + base + (up < extra ? 1 : 0)};
}

}  // namespace dsm::apps

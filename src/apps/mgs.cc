#include "apps/mgs.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace dsm::apps {

MgsParams MgsDataset(const std::string& label) {
  if (label == "1Kx1K") return {"1Kx1K", 320, 1024};
  if (label == "2Kx2K") return {"2Kx2K", 320, 2048};
  if (label == "1Kx4K") return {"1Kx4K", 160, 4096};
  if (label == "tiny") return {"tiny", 32, 1024};
  DSM_CHECK(false) << "unknown MGS dataset " << label;
  return {};
}

Mgs::Mgs(MgsParams params) : params_(std::move(params)) {}

std::size_t Mgs::heap_bytes() const {
  return params_.num_vectors * params_.dim * sizeof(float) + (64u << 10);
}

void Mgs::Setup(Runtime& rt) {
  vectors_ =
      rt.AllocUnitAligned<float>(params_.num_vectors * params_.dim, "A");
  reducer_.Setup(rt, "mgs_check");
}

void Mgs::Body(Proc& p) {
  const std::size_t M = params_.num_vectors;
  const std::size_t N = params_.dim;
  const int P = p.nprocs();
  auto at = [&](std::size_t vec, std::size_t k) { return vec * N + k; };
  auto owner = [&](std::size_t vec) {
    return static_cast<int>(vec % static_cast<std::size_t>(P));
  };

  // Deterministic well-conditioned initialization: every owner fills its
  // vectors (diagonal dominance keeps the basis numerically stable).
  {
    Xoshiro256 rng(0xA5C0FFEEu);
    for (std::size_t v = 0; v < M; ++v) {
      for (std::size_t k = 0; k < N; ++k) {
        const float x =
            static_cast<float>(rng.UniformDouble(-0.5, 0.5)) +
            (k % M == v ? 4.0f : 0.0f);
        if (owner(v) == p.id()) p.Write(vectors_, at(v, k), x);
      }
    }
  }
  p.Barrier();

  std::vector<float> pivot(N);
  for (std::size_t i = 0; i < M; ++i) {
    // Owner normalizes the pivot vector.
    if (owner(i) == p.id()) {
      double norm2 = 0.0;
      for (std::size_t k = 0; k < N; ++k) {
        const float x = p.Read(vectors_, at(i, k));
        norm2 += static_cast<double>(x) * x;
      }
      const float inv = static_cast<float>(1.0 / std::sqrt(norm2));
      for (std::size_t k = 0; k < N; ++k) {
        p.Write(vectors_, at(i, k), p.Read(vectors_, at(i, k)) * inv);
      }
      p.Compute(4 * N);
    }
    p.Barrier();

    // Everyone orthogonalizes its own vectors j > i against the pivot.
    bool have_pivot = false;
    for (std::size_t j = i + 1; j < M; ++j) {
      if (owner(j) != p.id()) continue;
      if (!have_pivot) {  // read the pivot once per processor
        for (std::size_t k = 0; k < N; ++k) {
          pivot[k] = p.Read(vectors_, at(i, k));
        }
        have_pivot = true;
      }
      double dot = 0.0;
      for (std::size_t k = 0; k < N; ++k) {
        dot += static_cast<double>(p.Read(vectors_, at(j, k))) * pivot[k];
      }
      const float d = static_cast<float>(dot);
      for (std::size_t k = 0; k < N; ++k) {
        p.Write(vectors_, at(j, k),
                p.Read(vectors_, at(j, k)) - d * pivot[k]);
      }
      p.Compute(4 * N);
    }
    p.Barrier();
  }

  // Verification: sum of |v_i · v_i - 1| over owned vectors (should be ~0)
  // plus a sample of cross dot products, reduced globally.
  double err = 0.0;
  for (std::size_t v = 0; v < M; ++v) {
    if (owner(v) != p.id()) continue;
    double self = 0.0, cross = 0.0;
    for (std::size_t k = 0; k < N; ++k) {
      const float x = p.Read(vectors_, at(v, k));
      self += static_cast<double>(x) * x;
      if (v + 1 < M) {
        cross += static_cast<double>(x) * p.Read(vectors_, at(v + 1, k));
      }
    }
    err += std::abs(self - 1.0) + std::abs(cross);
  }
  reducer_.Contribute(p, err);
  p.Barrier();
  const double total = reducer_.Sum(p);
  if (p.id() == 0) result_ = total;
}

}  // namespace dsm::apps

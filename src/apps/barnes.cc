#include "apps/barnes.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace dsm::apps {

namespace {
constexpr float kBoxHalf = 1.0f;  // bodies live in [-1, 1]^3
}

BarnesParams BarnesDataset(const std::string& label) {
  if (label == "16K") return {"16K", 4096, 3};
  if (label == "tiny") return {"tiny", 256, 2};
  DSM_CHECK(false) << "unknown Barnes dataset " << label;
  return {};
}

Barnes::Barnes(BarnesParams params) : params_(std::move(params)) {
  max_cells_ = 4 * params_.num_bodies;
}

std::size_t Barnes::heap_bytes() const {
  return params_.num_bodies * sizeof(BarnesBody) +
         max_cells_ * sizeof(BarnesCell) + (64u << 10);
}

void Barnes::Setup(Runtime& rt) {
  bodies_ = rt.AllocUnitAligned<BarnesBody>(params_.num_bodies, "bodies");
  cells_ = rt.AllocUnitAligned<BarnesCell>(max_cells_, "cells");
  tree_header_ = rt.AllocUnitAligned<std::int32_t>(
      kBasePageBytes / sizeof(std::int32_t), "tree_header");
  reducer_.Setup(rt, "barnes_check");
}

// Sequential tree construction by the master (paper: "the tree is
// constructed sequentially by a master processor").  Reads every body's
// position through the DSM; writes cells through the DSM.
void Barnes::BuildTree(Proc& p) {
  const std::size_t n = params_.num_bodies;

  // Local snapshot of positions (the master's read of the whole region).
  std::vector<std::array<float, 3>> pos(n);
  for (std::size_t i = 0; i < n; ++i) {
    const GlobalAddr a = bodies_.addr_of(i) + offsetof(BarnesBody, pos);
    pos[i] = {p.ReadAt<float>(a), p.ReadAt<float>(a + 4),
              p.ReadAt<float>(a + 8)};
  }
  std::vector<float> mass(n);
  for (std::size_t i = 0; i < n; ++i) {
    mass[i] = p.ReadAt<float>(bodies_.addr_of(i) + offsetof(BarnesBody, mass));
  }

  // Build the octree in private memory first (cheap host-side), then
  // publish it to shared memory in one pass — the master's single big
  // write burst, just like SPLASH's sequential maketree.
  struct LocalCell {
    float center[3];
    float half;
    float com[3] = {0, 0, 0};
    float mass = 0;
    std::int32_t child[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  };
  std::vector<LocalCell> cells;
  cells.reserve(2 * n);
  cells.push_back({{0, 0, 0}, kBoxHalf, {0, 0, 0}, 0,
                   {-1, -1, -1, -1, -1, -1, -1, -1}});

  auto octant = [](const LocalCell& c, const std::array<float, 3>& q) {
    int o = 0;
    if (q[0] >= c.center[0]) o |= 1;
    if (q[1] >= c.center[1]) o |= 2;
    if (q[2] >= c.center[2]) o |= 4;
    return o;
  };
  auto child_center = [](const LocalCell& c, int o) {
    const float h = c.half * 0.5f;
    return std::array<float, 3>{
        c.center[0] + ((o & 1) != 0 ? h : -h),
        c.center[1] + ((o & 2) != 0 ? h : -h),
        c.center[2] + ((o & 4) != 0 ? h : -h)};
  };

  for (std::size_t i = 0; i < n; ++i) {
    std::size_t cur = 0;
    for (;;) {
      const int o = octant(cells[cur], pos[i]);
      const std::int32_t c = cells[cur].child[o];
      if (c == -1) {
        cells[cur].child[o] = -static_cast<std::int32_t>(i) - 2;
        break;
      }
      if (c >= 0) {
        cur = static_cast<std::size_t>(c);
        continue;
      }
      // Occupied by a body: split into a subcell.
      const std::size_t other = static_cast<std::size_t>(-c - 2);
      DSM_CHECK_LT(cells.size(), max_cells_) << "Barnes cell pool exhausted";
      LocalCell sub;
      const auto ctr = child_center(cells[cur], o);
      sub.center[0] = ctr[0];
      sub.center[1] = ctr[1];
      sub.center[2] = ctr[2];
      sub.half = cells[cur].half * 0.5f;
      cells.push_back(sub);
      const std::int32_t sub_idx = static_cast<std::int32_t>(cells.size() - 1);
      cells[cur].child[o] = sub_idx;
      cells[sub_idx].child[octant(cells[sub_idx], pos[other])] =
          -static_cast<std::int32_t>(other) - 2;
      cur = static_cast<std::size_t>(sub_idx);
      // Loop continues: insert body i into the subcell (may split again).
    }
  }

  // Centers of mass, bottom-up (children always have larger indices only
  // for freshly split cells, so do an explicit post-order).
  std::vector<std::int32_t> order;
  order.reserve(cells.size());
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const std::int32_t c = stack.back();
    stack.pop_back();
    order.push_back(c);
    for (const std::int32_t ch : cells[static_cast<std::size_t>(c)].child) {
      if (ch >= 0) stack.push_back(ch);
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    LocalCell& c = cells[static_cast<std::size_t>(*it)];
    double m = 0, cx = 0, cy = 0, cz = 0;
    for (const std::int32_t ch : c.child) {
      if (ch == -1) continue;
      float chm, chx, chy, chz;
      if (ch >= 0) {
        const LocalCell& sub = cells[static_cast<std::size_t>(ch)];
        chm = sub.mass;
        chx = sub.com[0];
        chy = sub.com[1];
        chz = sub.com[2];
      } else {
        const std::size_t b = static_cast<std::size_t>(-ch - 2);
        chm = mass[b];
        chx = pos[b][0];
        chy = pos[b][1];
        chz = pos[b][2];
      }
      m += chm;
      cx += static_cast<double>(chm) * chx;
      cy += static_cast<double>(chm) * chy;
      cz += static_cast<double>(chm) * chz;
    }
    c.mass = static_cast<float>(m);
    if (m > 0) {
      c.com[0] = static_cast<float>(cx / m);
      c.com[1] = static_cast<float>(cy / m);
      c.com[2] = static_cast<float>(cz / m);
    }
  }
  p.Compute(20 * n);  // modelled tree-build flops

  // Publish to shared memory.
  for (std::size_t c = 0; c < cells.size(); ++c) {
    BarnesCell out{};
    for (int k = 0; k < 3; ++k) {
      out.center[k] = cells[c].center[k];
      out.com[k] = cells[c].com[k];
    }
    out.half = cells[c].half;
    out.mass = cells[c].mass;
    for (int k = 0; k < 8; ++k) out.child[k] = cells[c].child[k];
    p.Write(cells_, c, out);
  }
  p.Write(tree_header_, 0, static_cast<std::int32_t>(cells.size()));
}

void Barnes::ComputeForce(Proc& p, std::size_t i) {
  const float theta2 = params_.theta * params_.theta;
  const GlobalAddr my = bodies_.addr_of(i);
  const float xi = p.ReadAt<float>(my + offsetof(BarnesBody, pos));
  const float yi = p.ReadAt<float>(my + offsetof(BarnesBody, pos) + 4);
  const float zi = p.ReadAt<float>(my + offsetof(BarnesBody, pos) + 8);

  double ax = 0, ay = 0, az = 0, phi = 0;
  std::uint64_t interactions = 0;

  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const std::int32_t nref = stack.back();
    stack.pop_back();

    float m, qx, qy, qz;
    bool open = false;
    if (nref >= 0) {
      const GlobalAddr c = cells_.addr_of(static_cast<std::size_t>(nref));
      const float half = p.ReadAt<float>(c + offsetof(BarnesCell, half));
      qx = p.ReadAt<float>(c + offsetof(BarnesCell, com));
      qy = p.ReadAt<float>(c + offsetof(BarnesCell, com) + 4);
      qz = p.ReadAt<float>(c + offsetof(BarnesCell, com) + 8);
      m = p.ReadAt<float>(c + offsetof(BarnesCell, mass));
      const float dx = qx - xi, dy = qy - yi, dz = qz - zi;
      const float d2 = dx * dx + dy * dy + dz * dz + 1e-9f;
      open = (4.0f * half * half) > theta2 * d2;
      if (open) {
        for (int k = 0; k < 8; ++k) {
          const std::int32_t ch = p.ReadAt<std::int32_t>(
              c + offsetof(BarnesCell, child) + 4 * k);
          if (ch != -1) stack.push_back(ch);
        }
        continue;
      }
    } else {
      const std::size_t b = static_cast<std::size_t>(-nref - 2);
      if (b == i) continue;
      const GlobalAddr ba = bodies_.addr_of(b);
      qx = p.ReadAt<float>(ba + offsetof(BarnesBody, pos));
      qy = p.ReadAt<float>(ba + offsetof(BarnesBody, pos) + 4);
      qz = p.ReadAt<float>(ba + offsetof(BarnesBody, pos) + 8);
      m = p.ReadAt<float>(ba + offsetof(BarnesBody, mass));
    }
    const float dx = qx - xi, dy = qy - yi, dz = qz - zi;
    const float d2 = dx * dx + dy * dy + dz * dz + 1e-4f;
    const float inv = 1.0f / std::sqrt(d2);
    const float inv3 = inv * inv * inv;
    ax += static_cast<double>(m) * dx * inv3;
    ay += static_cast<double>(m) * dy * inv3;
    az += static_cast<double>(m) * dz * inv3;
    phi -= static_cast<double>(m) * inv;
    ++interactions;
  }
  p.Compute(45 * interactions);

  p.WriteAt<float>(my + offsetof(BarnesBody, acc),
                   static_cast<float>(ax));
  p.WriteAt<float>(my + offsetof(BarnesBody, acc) + 4,
                   static_cast<float>(ay));
  p.WriteAt<float>(my + offsetof(BarnesBody, acc) + 8,
                   static_cast<float>(az));
  p.WriteAt<float>(my + offsetof(BarnesBody, phi), static_cast<float>(phi));
  p.WriteAt<float>(my + offsetof(BarnesBody, work),
                   static_cast<float>(interactions));
}

void Barnes::Body(Proc& p) {
  const std::size_t n = params_.num_bodies;
  const int P = p.nprocs();

  // Master initializes bodies: deterministic uniform cube.
  if (p.id() == 0) {
    Xoshiro256 rng(0xBA43E5u);
    for (std::size_t i = 0; i < n; ++i) {
      BarnesBody b{};
      for (int k = 0; k < 3; ++k) {
        b.pos[k] = static_cast<float>(rng.UniformDouble(-0.9, 0.9));
        b.vel[k] = static_cast<float>(rng.UniformDouble(-0.1, 0.1));
      }
      b.mass = 1.0f / static_cast<float>(n);
      p.Write(bodies_, i, b);
    }
  }
  p.Barrier();

  const Range own = BlockRange(n, P, p.id());
  for (int step = 0; step < params_.steps; ++step) {
    // Sequential tree build by the master; everyone else waits.
    if (p.id() == 0) BuildTree(p);
    p.Barrier();

    // Parallel force computation, contiguous body ownership (the paper's
    // Barnes partitions bodies in array order; pages at partition
    // boundaries are write-write false shared, while the force phase
    // reads positions across the whole array — true sharing everywhere).
    for (std::size_t i = own.begin; i < own.end; ++i) {
      ComputeForce(p, i);
    }
    p.Barrier();

    // Position/velocity update of owned bodies.
    for (std::size_t i = own.begin; i < own.end; ++i) {
      const GlobalAddr a = bodies_.addr_of(i);
      for (int k = 0; k < 3; ++k) {
        const float acc =
            p.ReadAt<float>(a + offsetof(BarnesBody, acc) + 4 * k);
        const float vel =
            p.ReadAt<float>(a + offsetof(BarnesBody, vel) + 4 * k) +
            acc * params_.dt;
        p.WriteAt<float>(a + offsetof(BarnesBody, vel) + 4 * k, vel);
        const float pos =
            p.ReadAt<float>(a + offsetof(BarnesBody, pos) + 4 * k) +
            vel * params_.dt;
        p.WriteAt<float>(a + offsetof(BarnesBody, pos) + 4 * k, pos);
      }
      p.Compute(12);
    }
    p.Barrier();
  }

  // Verification: sum of |acc| over owned bodies.
  double local = 0.0;
  for (std::size_t i = own.begin; i < own.end; ++i) {
    const GlobalAddr a = bodies_.addr_of(i);
    for (int k = 0; k < 3; ++k) {
      local += std::abs(
          p.ReadAt<float>(a + offsetof(BarnesBody, acc) + 4 * k));
    }
  }
  reducer_.Contribute(p, local);
  p.Barrier();
  const double total = reducer_.Sum(p);
  if (p.id() == 0) result_ = total;
}

}  // namespace dsm::apps

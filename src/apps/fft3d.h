// 3D-FFT (NAS FT kernel, paper §5.5): forward/inverse FFTs over a 3-D
// complex array with a distributed transpose between the local FFT passes.
//
// Layout: A[x][y][z] (z fastest), complex<double> elements, x-slab
// partition.  The transpose builds B[y][x][z] = A[x][y][z] with B owned in
// y-slabs, so a processor reads, from every source plane, one contiguous
// chunk of (ny/P)*nz*16 bytes — that chunk is the paper's per-processor
// read granularity during the transpose:
//   "64x64x32"    → 4 KB chunks   (degrades at 8 K and 16 K units)
//   "64x64x64"    → 8 KB chunks   (best at 8 K, degrades at 16 K)
//   "128x128x128" → 32 KB chunks  (improves through 16 K)
// A small shared checksum structure is concurrently written by all
// processors and read by the master — the paper's source of a few useless
// messages.
#pragma once

#include <complex>
#include <cstddef>
#include <string>

#include "apps/app_common.h"

namespace dsm::apps {

struct Fft3dParams {
  std::string label;
  std::size_t nx, ny, nz;  // ny*nz*16/P is the transpose read grain
  int iterations = 2;
};

Fft3dParams Fft3dDataset(const std::string& label);

class Fft3d : public Application {
 public:
  explicit Fft3d(Fft3dParams params);

  const char* name() const override { return "3D-FFT"; }
  std::string dataset() const override { return params_.label; }
  std::size_t heap_bytes() const override;

  void Setup(Runtime& rt) override;
  void Body(Proc& p) override;
  double result() const override { return result_; }

 private:
  Fft3dParams params_;
  SharedArray<double> a_;  // nx*ny*nz complex values (2 doubles each)
  SharedArray<double> b_;  // transposed copy, y-major
  SharedArray<double> checksum_;  // one page, slot per proc
  double result_ = 0.0;
};

}  // namespace dsm::apps

#include "analysis/race_detector.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace dsm {

namespace {

const char* KindName(bool is_write) { return is_write ? "write" : "read"; }

std::tuple<ProcId, bool, std::uint32_t, std::uint32_t> SiteOrder(
    const RaceSite& s) {
  return {s.proc, s.is_write, s.phase, s.subphase};
}

}  // namespace

std::string RaceReport::ToString() const {
  std::ostringstream out;
  out << "unit " << unit << " word " << word << ": P" << first.proc << " "
      << KindName(first.is_write) << " @ " << first.phase << "."
      << first.subphase << " <-> P" << second.proc << " "
      << KindName(second.is_write) << " @ " << second.phase << "."
      << second.subphase;
  return out.str();
}

std::string RaceStats::ToString() const {
  if (!checked) return {};
  std::ostringstream out;
  out << "races: " << reports.size();
  if (dropped > 0) out << " (+" << dropped << " beyond cap)";
  out << "\n";
  for (const RaceReport& r : reports) out << "  " << r.ToString() << "\n";
  return out.str();
}

RaceDetector::RaceDetector(int num_procs, std::size_t num_units,
                           std::size_t words_per_unit, int num_locks)
    : num_procs_(num_procs),
      words_per_unit_(words_per_unit),
      procs_(static_cast<std::size_t>(num_procs)),
      shadow_(num_units),
      shadow_mutex_(std::make_unique<std::mutex[]>(num_units)),
      lock_clock_(static_cast<std::size_t>(num_locks)),
      lock_mutex_(std::make_unique<std::mutex[]>(kLockStripes)),
      arrive_accum_(num_procs) {
  for (int p = 0; p < num_procs; ++p) {
    procs_[p].clock = VectorClock(num_procs);
    procs_[p].clock[p] = 1;  // epoch clocks are 1-based; 0 = "no access"
  }
}

RaceDetector::WordShadow* RaceDetector::EnsureUnit(UnitId unit) {
  std::unique_ptr<WordShadow[]>& slot = shadow_[unit];
  if (slot == nullptr) {
    slot = std::make_unique<WordShadow[]>(words_per_unit_);
  }
  return slot.get();
}

RaceDetector::Site* RaceDetector::AcquireReadVector() {
  std::lock_guard<std::mutex> g(rv_mutex_);
  if (!rv_free_.empty()) {
    Site* rv = rv_free_.back();
    rv_free_.pop_back();
    std::fill(rv, rv + num_procs_, Site{});
    return rv;
  }
  rv_pool_.push_back(
      std::make_unique<Site[]>(static_cast<std::size_t>(num_procs_)));
  return rv_pool_.back().get();
}

void RaceDetector::ReleaseReadVector(Site* rv) {
  std::lock_guard<std::mutex> g(rv_mutex_);
  rv_free_.push_back(rv);
}

void RaceDetector::Report(UnitId unit, std::uint32_t word, const Site& prior,
                          bool prior_is_write, const Site& current,
                          bool is_write) {
  if (prior.proc == current.proc) return;  // same-thread accesses are ordered
  RaceSite a{prior.proc, prior_is_write, prior.phase, prior.subphase};
  RaceSite b{current.proc, is_write, current.phase, current.subphase};
  // Normalize by (proc, kind), not observation order: whichever access the
  // host happened to see second, the report is the same.
  if (SiteOrder(b) < SiteOrder(a)) std::swap(a, b);
  const ReportKey key{unit,   word,       a.proc, a.is_write,
                      a.phase, b.proc,    b.is_write, b.phase};
  std::lock_guard<std::mutex> g(report_mutex_);
  if (!report_keys_.insert(key).second) return;  // already reported
  if (reports_.size() >= kMaxReports) {
    ++dropped_;
    return;
  }
  reports_.push_back(RaceReport{unit, word, a, b});
}

void RaceDetector::OnAccess(ProcId p, UnitId unit, std::uint32_t first_word,
                            std::uint32_t nwords, bool is_write) {
  ProcState& ps = procs_[p];
  const Seq own = ps.clock[p];
  const Site me{own, p, ps.phase, ps.subphase};
  std::lock_guard<std::mutex> g(shadow_mutex_[unit]);
  WordShadow* shadow = EnsureUnit(unit);
  DSM_DCHECK(first_word + nwords <= words_per_unit_);
  for (std::uint32_t i = 0; i < nwords; ++i) {
    WordShadow& w = shadow[first_word + i];
    if (is_write) {
      if (w.write.clock == own && w.write.proc == p) {
        continue;  // same-epoch write: nothing new to order against
      }
      if (w.write.clock != 0 && !Covered(ps, w.write)) {
        Report(unit, first_word + i, w.write, /*prior_is_write=*/true, me,
               /*is_write=*/true);
      }
      if (w.rv != nullptr) {
        for (int q = 0; q < num_procs_; ++q) {
          if (w.rv[q].clock != 0 && !Covered(ps, w.rv[q])) {
            Report(unit, first_word + i, w.rv[q], /*prior_is_write=*/false, me,
                   /*is_write=*/true);
          }
        }
        ReleaseReadVector(w.rv);
        w.rv = nullptr;
      } else if (w.read.clock != 0 && !Covered(ps, w.read)) {
        Report(unit, first_word + i, w.read, /*prior_is_write=*/false, me,
               /*is_write=*/true);
      }
      w.write = me;
      w.read = Site{};
    } else {
      if (w.rv != nullptr) {
        if (w.rv[p].clock == own) continue;  // same-epoch read
        if (w.write.clock != 0 && !Covered(ps, w.write)) {
          Report(unit, first_word + i, w.write, /*prior_is_write=*/true, me,
                 /*is_write=*/false);
        }
        w.rv[p] = me;
        continue;
      }
      if (w.read.clock == own && w.read.proc == p) {
        continue;  // same-epoch read
      }
      if (w.write.clock != 0 && !Covered(ps, w.write)) {
        Report(unit, first_word + i, w.write, /*prior_is_write=*/true, me,
               /*is_write=*/false);
      }
      if (w.read.clock == 0 || w.read.proc == p || Covered(ps, w.read)) {
        // Exclusive read (FastTrack): the previous read is ordered before
        // this one, so a single epoch still suffices.
        w.read = me;
      } else {
        // Concurrent readers: inflate to a per-processor read vector.
        Site* rv = AcquireReadVector();
        rv[w.read.proc] = w.read;
        rv[p] = me;
        w.rv = rv;
        w.read = Site{};
      }
    }
  }
}

void RaceDetector::OnBarrierArrive(ProcId p) {
  std::lock_guard<std::mutex> g(barrier_mutex_);
  arrive_accum_.Merge(procs_[p].clock);
  if (++arrive_count_ == num_procs_) {
    merged_.emplace_back(arrive_gen_, MergedGen{arrive_accum_, 0});
    arrive_accum_ = VectorClock(num_procs_);
    arrive_count_ = 0;
    ++arrive_gen_;
  }
}

void RaceDetector::OnBarrierDepart(ProcId p) {
  ProcState& ps = procs_[p];
  std::lock_guard<std::mutex> g(barrier_mutex_);
  auto it = std::find_if(
      merged_.begin(), merged_.end(),
      [&](const auto& e) { return e.first == ps.barrier_gen; });
  DSM_CHECK(it != merged_.end()) << "barrier depart without matching arrive";
  ps.clock = it->second.vc;
  ps.clock[p] += 1;  // fresh epoch after the barrier
  ps.phase += 1;
  ps.subphase = 0;
  ps.barrier_gen += 1;
  if (++it->second.departed == num_procs_) merged_.erase(it);
}

void RaceDetector::OnLockRelease(ProcId p, int lock_id) {
  ProcState& ps = procs_[p];
  {
    std::lock_guard<std::mutex> g(
        lock_mutex_[static_cast<std::size_t>(lock_id) % kLockStripes]);
    VectorClock& lc = lock_clock_[lock_id];
    if (lc.size() == 0) lc = VectorClock(num_procs_);
    lc.Merge(ps.clock);
  }
  ps.clock[p] += 1;  // fresh epoch after the release
  auto& held = ps.held_locks;
  held.erase(std::remove(held.begin(), held.end(), lock_id), held.end());
}

void RaceDetector::OnLockAcquire(ProcId p, int lock_id, bool cached,
                                 std::uint64_t chain_pos) {
  ProcState& ps = procs_[p];
  ps.held_locks.push_back(lock_id);
  if (cached) return;  // re-acquire by the last releaser: nothing new
  ps.subphase = static_cast<std::uint32_t>(chain_pos);
  std::lock_guard<std::mutex> g(
      lock_mutex_[static_cast<std::size_t>(lock_id) % kLockStripes]);
  const VectorClock& lc = lock_clock_[lock_id];
  if (lc.size() != 0) ps.clock.Merge(lc);
}

void RaceDetector::OnCrashSweep(ProcId p) {
  // Victim's own thread, at the crash point: publish its clock on every
  // lock it still holds, exactly as its own releases would have, before
  // LockService::OnCrash hands those locks to peers.  The held set is
  // kept — the app thread continues through the crash and its orphan
  // release republishes the same clock (harmless) and clears the entry.
  ProcState& ps = procs_[p];
  for (int lock_id : ps.held_locks) {
    std::lock_guard<std::mutex> g(
        lock_mutex_[static_cast<std::size_t>(lock_id) % kLockStripes]);
    VectorClock& lc = lock_clock_[lock_id];
    if (lc.size() == 0) lc = VectorClock(num_procs_);
    lc.Merge(ps.clock);
  }
}

RaceStats RaceDetector::Collect() const {
  RaceStats stats;
  stats.checked = true;
  std::lock_guard<std::mutex> g(report_mutex_);
  stats.reports = reports_;
  stats.dropped = dropped_;
  std::sort(stats.reports.begin(), stats.reports.end(),
            [](const RaceReport& x, const RaceReport& y) {
              return std::tuple(x.unit, x.word, SiteOrder(x.first),
                                SiteOrder(x.second)) <
                     std::tuple(y.unit, y.word, SiteOrder(y.first),
                                SiteOrder(y.second));
            });
  return stats;
}

std::size_t RaceDetector::report_count() const {
  std::lock_guard<std::mutex> g(report_mutex_);
  return reports_.size();
}

}  // namespace dsm

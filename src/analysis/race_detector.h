// On-line happens-before race detection over the LRC clock substrate
// (DESIGN.md §10).  Opt-in via RuntimeConfig::race_check; purely
// observational — the detector charges no modelled time, credits no
// modelled counters, and never touches protocol state, so every modelled
// quantity (times, comm, fingerprints) is bit-identical with the checker
// on or off.
//
// Algorithm: FastTrack-style epochs (Flanagan & Freund) over shadow
// words.  Every shared word carries a last-write epoch plus an adaptive
// read side — a single read epoch that inflates to a per-processor read
// vector the first time genuinely concurrent readers appear.  An access
// races with a recorded prior access iff the prior epoch is not covered
// by the accessor's happens-before clock.
//
// The detector maintains its OWN per-processor vector clocks rather than
// reading the protocol's vc_: the reference backend never maintains vc_
// (its barriers and locks are pure rendezvous), yet it must yield the
// oracle ordering.  The clocks are advanced by the same events the
// protocol orders on — lock release publishes the releaser's clock on
// the lock, a non-cached acquire merges it, a barrier merges every
// arriver's clock into one departure clock — so under LRC/HLRC the
// detector's happens-before coincides with the ordering the protocol
// actually enforces, and under the reference backend it reproduces it.
//
// Threading: sync hooks and shadow state are mutex-guarded (per-unit
// shadow mutexes, striped lock-clock mutexes, one barrier-merge mutex),
// because a *racy target program* drives conflicting hooks from
// unordered host threads — the checker must stay TSan-clean precisely
// when the program under test is not.  Per-proc clocks are touched only
// by their own thread (the barrier merge copies them under the barrier
// mutex, still on the owning thread).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/vector_clock.h"
#include "mem/types.h"

namespace dsm {

// One side of a detected race: which processor, what kind of access, and
// where in the synchronization structure it happened (barrier phase +
// lock-chain sub-phase, the same coordinates stamp_key() quantizes the
// lazy-diffing cost model with).
struct RaceSite {
  ProcId proc = -1;
  bool is_write = false;
  std::uint32_t phase = 0;     // completed barriers before the access
  std::uint32_t subphase = 0;  // lock-chain sub-phase within the phase

  bool operator==(const RaceSite&) const = default;
};

// A deduplicated, normalized race: `first`/`second` are ordered by
// (proc, kind), never by host observation order, so a seeded run produces
// the identical report list no matter how the host interleaves threads.
struct RaceReport {
  UnitId unit = 0;
  std::uint32_t word = 0;  // word offset within the unit
  RaceSite first;
  RaceSite second;

  bool operator==(const RaceReport&) const = default;
  std::string ToString() const;
};

// Detector results carried on RunStats.  `checked` distinguishes "ran
// clean" from "never ran": a default RunStats reports checked == false.
struct RaceStats {
  bool checked = false;
  std::vector<RaceReport> reports;  // deduped, deterministically sorted
  std::uint64_t dropped = 0;        // distinct races beyond the report cap

  std::string ToString() const;  // empty when !checked
};

class RaceDetector {
 public:
  RaceDetector(int num_procs, std::size_t num_units,
               std::size_t words_per_unit, int num_locks);

  // Word-range access by proc `p` (called from the Node access paths for
  // every application read/write; never from protocol-internal copies,
  // so recovery replay and diff application are invisible here).
  void OnAccess(ProcId p, UnitId unit, std::uint32_t first_word,
                std::uint32_t nwords, bool is_write);

  // Barrier bracket: Arrive merges the caller's clock into the pending
  // generation; Depart (after the real barrier released the caller)
  // adopts the generation's merged clock, starts a fresh local epoch,
  // and advances the phase counters.
  void OnBarrierArrive(ProcId p);
  void OnBarrierDepart(ProcId p);

  // Release publishes the releaser's clock on the lock and starts a
  // fresh epoch; a non-cached acquire merges the lock's clock (a cached
  // re-acquire by the last releaser learns nothing new) and adopts the
  // transfer's chain position as the sub-phase, mirroring the protocol.
  void OnLockRelease(ProcId p, int lock_id);
  void OnLockAcquire(ProcId p, int lock_id, bool cached,
                     std::uint64_t chain_pos);

  // Crash-recovery composition (DESIGN.md §9): called on the victim's
  // own thread at the crash point, before LockService::OnCrash
  // force-releases the locks it holds.  Publishes the victim's clock on
  // every lock it still held so a peer granted a force-released lock
  // inherits the ordering the victim's own release would have published
  // — recovery must not manufacture reports the program didn't earn.
  void OnCrashSweep(ProcId p);

  // Deduplicated reports in deterministic order.  Safe to call after
  // Runtime::Run has joined the proc threads.
  RaceStats Collect() const;

  std::size_t report_count() const;

 private:
  // One recorded access epoch.  clock == 0 means "no access recorded"
  // (detector clocks start at 1, so every real epoch is nonzero).
  struct Site {
    Seq clock = 0;
    ProcId proc = -1;
    std::uint32_t phase = 0;
    std::uint32_t subphase = 0;
  };

  // Shadow state of one shared word: last-write epoch + adaptive read
  // side (`read` while a single epoch suffices, inflated to a
  // per-processor vector in the pool once concurrent readers appear).
  // `rv` is the pool-owned array itself, not a pool index: the pooled
  // arrays never move, so the access path can use the pointer under the
  // unit's shadow mutex alone, while the pool vector (whose backing
  // store DOES move on growth) is only ever touched under rv_mutex_.
  struct WordShadow {
    Site write;
    Site read;
    Site* rv = nullptr;  // inflated read vector (pool-owned); null = none
  };

  // Padded to a cache line: clocks are own-thread-hot.
  struct alignas(64) ProcState {
    VectorClock clock;
    std::uint32_t phase = 0;
    std::uint32_t subphase = 0;
    std::uint64_t barrier_gen = 0;  // barriers this proc has departed
    std::vector<int> held_locks;    // own-thread only (crash sweep too)
  };

  bool Covered(const ProcState& ps, const Site& s) const {
    return s.clock <= ps.clock[s.proc];
  }

  WordShadow* EnsureUnit(UnitId unit);
  Site* AcquireReadVector();         // zeroed, ready to adopt readers
  void ReleaseReadVector(Site* rv);  // back to the free list

  void Report(UnitId unit, std::uint32_t word, const Site& prior,
              bool prior_is_write, const Site& current, bool is_write);

  const int num_procs_;
  const std::size_t words_per_unit_;

  std::vector<ProcState> procs_;

  // Shadow words, lazily allocated per touched unit (the WordTracker
  // discipline); one mutex per unit so conflicting hooks from unordered
  // threads serialize without a global bottleneck.
  std::vector<std::unique_ptr<WordShadow[]>> shadow_;
  std::unique_ptr<std::mutex[]> shadow_mutex_;

  // Read-vector pool (num_procs_ sites each).  rv_mutex_ guards the pool
  // and free-list vectors; the arrays they own are handed out by pointer
  // and then guarded by the borrowing word's shadow mutex.
  std::mutex rv_mutex_;
  std::vector<std::unique_ptr<Site[]>> rv_pool_;
  std::vector<Site*> rv_free_;

  // Per-lock release clocks.  Striped mutexes: the crash sweep can
  // publish a victim's clock while a peer merges it (see OnCrashSweep),
  // so lock-clock access is never assumed single-threaded.
  static constexpr std::size_t kLockStripes = 64;
  std::vector<VectorClock> lock_clock_;
  std::unique_ptr<std::mutex[]> lock_mutex_;  // kLockStripes entries

  // Barrier merge state: one generation accumulates arrivals at a time
  // (the real barrier orders them); departed generations are kept until
  // their last departure adopts the merged clock.
  std::mutex barrier_mutex_;
  VectorClock arrive_accum_;
  int arrive_count_ = 0;
  std::uint64_t arrive_gen_ = 0;
  struct MergedGen {
    VectorClock vc;
    int departed = 0;
  };
  std::vector<std::pair<std::uint64_t, MergedGen>> merged_;

  // Reports: deduped on insertion (normalized key), capped so a
  // pathologically racy program cannot grow without bound.
  static constexpr std::size_t kMaxReports = 1024;
  using ReportKey = std::tuple<UnitId, std::uint32_t, ProcId, bool,
                               std::uint32_t, ProcId, bool, std::uint32_t>;
  mutable std::mutex report_mutex_;
  std::set<ReportKey> report_keys_;
  std::vector<RaceReport> reports_;
  std::uint64_t dropped_ = 0;
};

}  // namespace dsm

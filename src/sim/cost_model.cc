#include "sim/cost_model.h"

// CostModel is a plain aggregate of calibrated constants; the inline
// helpers live in the header.  This translation unit exists so the module
// has a home for future non-inline cost functions (e.g., a measured-host
// calibration mode) without touching every dependent target.

namespace dsm {}  // namespace dsm

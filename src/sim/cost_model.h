// Cost model for compute and DSM protocol operations.
//
// Calibration targets come from §5.1 of the paper (166 MHz Pentium,
// FreeBSD 2.1.6, 100 Mbps switched Ethernet, UDP/IP):
//   * 1-byte round-trip latency:          296 µs
//   * lock acquisition:                   374–574 µs
//   * 8-processor barrier:                861 µs
//   * diff fetch:                         579–1746 µs
//
// The compute-side constants model a 166 MHz in-order CPU (~6 ns cycle) with
// the extra overhead software DSM adds to every shared access (the paper's
// programs run with VM traps; ours run with inline checks — the *modelled*
// charge is what enters virtual time, the host cost of the check is
// irrelevant to the results).
#pragma once

#include <cstddef>

#include "sim/virtual_clock.h"

namespace dsm {

struct CostModel {
  // --- compute side -------------------------------------------------------
  // Charge per shared-memory word access (load or store) issued by the
  // application.  ~5 cycles on a 166 MHz Pentium.
  VirtualNanos shared_access = 30;
  // Charge per private (unshared) floating-point operation unit; apps call
  // Proc::Compute(flops) for work on local data.
  VirtualNanos flop = 18;

  // --- VM / protocol side --------------------------------------------------
  // Fixed cost of taking an access fault and entering the protocol
  // (trap + dispatch; mprotect-era kernels: ~10 µs).
  VirtualNanos fault_overhead = 10 * kNanosPerMicro;
  // Memory-protection change for one consistency unit.
  VirtualNanos mprotect_op = 5 * kNanosPerMicro;
  // Twin creation / diff creation / diff application, per byte of the
  // consistency unit (twin: memcpy at ~80 MB/s on a 166 MHz Pentium;
  // diff: word compare; apply: scatter copy).
  VirtualNanos twin_per_byte = 8;
  VirtualNanos diff_create_per_byte = 8;
  VirtualNanos diff_apply_per_byte = 8;
  // Fixed parts: diff creation sets up the twin comparison; application is
  // a cheap scatter; serving a diff request is a lookup in the archive.
  VirtualNanos diff_create_fixed = 15 * kNanosPerMicro;
  VirtualNanos diff_apply_fixed = 5 * kNanosPerMicro;
  VirtualNanos request_service_overhead = 30 * kNanosPerMicro;

  // --- synchronization services -------------------------------------------
  // Fixed manager-side cost of a lock transfer, on top of the message
  // round trip (calibrated so acquire lands in the paper's 374–574 µs band).
  VirtualNanos lock_manager_overhead = 78 * kNanosPerMicro;
  // Per-participant processing at the barrier manager.  With the fixed part
  // below and the message round trip this calibrates the empty 8-processor
  // barrier to the paper's 861 µs: 296 + 145 + 7×60 = 861.
  VirtualNanos barrier_per_arrival = 60 * kNanosPerMicro;
  // Fixed cost at the barrier manager (entry + exit processing).
  VirtualNanos barrier_fixed = 145 * kNanosPerMicro;

  // Modelled cost of twinning a unit of `bytes` bytes.
  VirtualNanos TwinCost(std::size_t bytes) const {
    return twin_per_byte * static_cast<VirtualNanos>(bytes);
  }
  // Modelled cost of scanning a unit of `bytes` to create a diff.
  VirtualNanos DiffCreateCost(std::size_t unit_bytes) const {
    return diff_create_fixed +
           diff_create_per_byte * static_cast<VirtualNanos>(unit_bytes);
  }
  // Modelled cost of applying a diff carrying `diff_bytes` of payload.
  VirtualNanos DiffApplyCost(std::size_t diff_bytes) const {
    return diff_apply_fixed +
           diff_apply_per_byte * static_cast<VirtualNanos>(diff_bytes);
  }
};

}  // namespace dsm

#include "sim/virtual_clock.h"

#include "common/check.h"

namespace dsm {

void VirtualClock::Advance(VirtualNanos delta) {
  DSM_CHECK_GE(delta, 0);
  now_ += delta;
}

void VirtualClock::AdvanceTo(VirtualNanos t) {
  if (t > now_) now_ = t;
}

}  // namespace dsm

// Deterministic per-processor virtual time.
//
// The paper measures wall-clock time on an 8-node Pentium cluster.  We
// replace the cluster with a deterministic model: each logical processor
// owns a VirtualClock that advances by modelled compute cost (shared-memory
// accesses, explicit flop accounting) and modelled protocol/communication
// cost.  Synchronization operations reconcile clocks (a barrier sets every
// participant to the maximum arrival time plus the barrier cost), which is
// exactly how the critical path forms on a real cluster.
//
// Time is kept in integer nanoseconds so that accumulation is exact and
// runs are reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace dsm {

// Nanoseconds of virtual time.
using VirtualNanos = std::int64_t;

constexpr VirtualNanos kNanosPerMicro = 1000;
constexpr VirtualNanos kNanosPerMilli = 1000 * 1000;
constexpr VirtualNanos kNanosPerSecond = 1000 * 1000 * 1000;

class VirtualClock {
 public:
  VirtualClock() = default;

  VirtualNanos now() const { return now_; }

  // Advance by a non-negative amount of modelled work.
  void Advance(VirtualNanos delta);

  // Move forward to `t` if `t` is later (used by synchronization:
  // clocks never run backwards).
  void AdvanceTo(VirtualNanos t);

  void Reset() { now_ = 0; }

  double seconds() const {
    return static_cast<double>(now_) / static_cast<double>(kNanosPerSecond);
  }

 private:
  VirtualNanos now_ = 0;
};

}  // namespace dsm

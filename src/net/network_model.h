// Simulated cluster interconnect.
//
// Stands in for the paper's 100 Mbps switched Ethernet + UDP/IP stack.  The
// model is latency + bandwidth + fixed per-message CPU cost, calibrated to
// the paper's measured platform numbers (§5.1):
//
//     1-byte round trip = 296 µs   →  one-way fixed cost 147.92 µs
//     100 Mbps          = 12.5 MB/s →  80 ns per byte on the wire
//
// What matters for reproducing the paper is the *ratio* between the cost of
// an extra message and the cost of extra bytes on an existing message
// (~148 µs vs. 80 ns/B ≈ 1850 B of data per message-equivalent); that ratio
// is what makes useless messages first-order and useless data second-order
// (paper §2), and it is preserved exactly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/virtual_clock.h"

namespace dsm {

enum class MessageKind : std::uint8_t {
  kDiffRequest = 0,
  kDiffResponse,
  kBarrierArrival,
  kBarrierRelease,
  kLockRequest,
  kLockGrant,
  // Home-based LRC traffic (BackendKind::kHlrc, DESIGN.md §7).  Appended
  // after the original kinds: fingerprinting code relies on the prefix
  // ordering staying fixed (bench_wallclock skips zero entries of these
  // new kinds so pre-HLRC fingerprints are unchanged).
  kHomeFlush,       // release-time diff flush to the home (diff payload)
  kHomeFlushAck,    // home's acknowledgement of a flush
  kHomeFetch,       // fault-time whole-unit request to the home
  kHomeFetchReply,  // home's reply carrying full unit copies
  kCount,  // sentinel
};

constexpr std::size_t kNumMessageKinds =
    static_cast<std::size_t>(MessageKind::kCount);
// First of the HLRC home-traffic kinds (the fingerprint back-compat
// boundary; see bench_wallclock).
constexpr std::size_t kFirstHomeMessageKind =
    static_cast<std::size_t>(MessageKind::kHomeFlush);

const char* MessageKindName(MessageKind kind);

struct NetworkConfig {
  // Fixed one-way cost (send-side CPU + wire latency + receive-side CPU).
  VirtualNanos fixed_oneway = 147'920;  // 147.92 µs
  // Wire + copy cost per payload byte (12.5 MB/s → 80 ns/B).
  VirtualNanos ns_per_byte = 80;
  // Bytes of UDP/IP + protocol header charged to every message's wire time
  // (not counted as data in statistics).
  std::size_t wire_header_bytes = 60;
};

// Pure timing model — stateless, shared by all nodes.
class NetworkModel {
 public:
  NetworkModel() = default;
  explicit NetworkModel(const NetworkConfig& config) : config_(config) {}

  const NetworkConfig& config() const { return config_; }

  // Time for one message carrying `payload_bytes` to cross the network.
  VirtualNanos OneWayTime(std::size_t payload_bytes) const;

  // Request/response exchange with the given payload sizes.
  VirtualNanos RoundTripTime(std::size_t request_bytes,
                             std::size_t response_bytes) const;

 private:
  NetworkConfig config_;
};

}  // namespace dsm

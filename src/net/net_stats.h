// Raw per-kind message and byte accounting.
//
// NetStats counts what crossed the simulated wire.  The *semantic*
// classification (useful vs. useless messages and data — which needs to know
// whether delivered words were ever read) lives in core/comm_stats.h;
// NetStats is the physical layer's view.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "net/network_model.h"

namespace dsm {

class NetStats {
 public:
  NetStats() = default;

  void Record(MessageKind kind, std::size_t payload_bytes) {
    auto& e = entries_[static_cast<std::size_t>(kind)];
    e.messages += 1;
    e.bytes += payload_bytes;
  }

  std::uint64_t messages(MessageKind kind) const {
    return entries_[static_cast<std::size_t>(kind)].messages;
  }
  std::uint64_t bytes(MessageKind kind) const {
    return entries_[static_cast<std::size_t>(kind)].bytes;
  }

  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;

  // Messages/bytes that move application data (diff traffic), as opposed to
  // pure synchronization traffic.
  std::uint64_t data_messages() const;
  std::uint64_t data_bytes() const;
  std::uint64_t sync_messages() const;

  void Merge(const NetStats& other);

  std::string ToString() const;

 private:
  struct Entry {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  std::array<Entry, kNumMessageKinds> entries_{};
};

}  // namespace dsm

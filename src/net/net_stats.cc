#include "net/net_stats.h"

#include <sstream>

namespace dsm {

std::uint64_t NetStats::total_messages() const {
  std::uint64_t n = 0;
  for (const auto& e : entries_) n += e.messages;
  return n;
}

std::uint64_t NetStats::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& e : entries_) n += e.bytes;
  return n;
}

std::uint64_t NetStats::data_messages() const {
  return messages(MessageKind::kDiffRequest) +
         messages(MessageKind::kDiffResponse) +
         messages(MessageKind::kHomeFlush) +
         messages(MessageKind::kHomeFlushAck) +
         messages(MessageKind::kHomeFetch) +
         messages(MessageKind::kHomeFetchReply);
}

std::uint64_t NetStats::data_bytes() const {
  return bytes(MessageKind::kDiffRequest) +
         bytes(MessageKind::kDiffResponse) +
         bytes(MessageKind::kHomeFlush) +
         bytes(MessageKind::kHomeFlushAck) +
         bytes(MessageKind::kHomeFetch) +
         bytes(MessageKind::kHomeFetchReply);
}

std::uint64_t NetStats::sync_messages() const {
  return total_messages() - data_messages();
}

void NetStats::Merge(const NetStats& other) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].messages += other.entries_[i].messages;
    entries_[i].bytes += other.entries_[i].bytes;
  }
}

std::string NetStats::ToString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].messages == 0) continue;
    out << "  " << MessageKindName(static_cast<MessageKind>(i)) << ": "
        << entries_[i].messages << " msgs, " << entries_[i].bytes
        << " bytes\n";
  }
  return out.str();
}

}  // namespace dsm

#include "net/network_model.h"

#include "common/check.h"

namespace dsm {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kDiffRequest:
      return "diff_request";
    case MessageKind::kDiffResponse:
      return "diff_response";
    case MessageKind::kBarrierArrival:
      return "barrier_arrival";
    case MessageKind::kBarrierRelease:
      return "barrier_release";
    case MessageKind::kLockRequest:
      return "lock_request";
    case MessageKind::kLockGrant:
      return "lock_grant";
    case MessageKind::kHomeFlush:
      return "home_flush";
    case MessageKind::kHomeFlushAck:
      return "home_flush_ack";
    case MessageKind::kHomeFetch:
      return "home_fetch";
    case MessageKind::kHomeFetchReply:
      return "home_fetch_reply";
    case MessageKind::kCount:
      break;
  }
  return "unknown";
}

VirtualNanos NetworkModel::OneWayTime(std::size_t payload_bytes) const {
  const std::size_t wire_bytes = payload_bytes + config_.wire_header_bytes;
  return config_.fixed_oneway +
         config_.ns_per_byte * static_cast<VirtualNanos>(wire_bytes);
}

VirtualNanos NetworkModel::RoundTripTime(std::size_t request_bytes,
                                         std::size_t response_bytes) const {
  return OneWayTime(request_bytes) + OneWayTime(response_bytes);
}

}  // namespace dsm

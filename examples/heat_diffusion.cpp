// Heat diffusion demo: a realistic stencil workload on the DSM, swept
// across consistency-unit configurations.  Shows the aggregation trade-off
// of the paper on a program you can modify: change kCols (the row size in
// bytes) and watch the 8 K / 16 K numbers flip between "aggregation wins"
// and "false sharing bites".
//
//   $ ./examples/heat_diffusion
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/runtime.h"

namespace {
constexpr std::size_t kRows = 192;
constexpr std::size_t kCols = 1024;  // 1024 floats = 4 KB = one VM page
constexpr int kIters = 5;
}  // namespace

int main() {
  struct Point {
    const char* label;
    dsm::AggregationMode mode;
    int ppu;
  };
  const Point points[] = {
      {"4K", dsm::AggregationMode::kStatic, 1},
      {"8K", dsm::AggregationMode::kStatic, 2},
      {"16K", dsm::AggregationMode::kStatic, 4},
      {"Dyn", dsm::AggregationMode::kDynamic, 1},
  };

  std::printf("heat diffusion on a %zux%zu grid (row = %zu KB)\n\n", kRows,
              kCols, kCols * sizeof(float) / 1024);
  std::printf("%-5s %12s %10s %10s %12s\n", "cfg", "time(ms)", "messages",
              "data(KB)", "checksum");

  for (const Point& point : points) {
    dsm::RuntimeConfig cfg;
    cfg.num_procs = 8;
    cfg.heap_bytes = kRows * kCols * sizeof(float) + (1u << 16);
    cfg.aggregation = point.mode;
    cfg.pages_per_unit = point.ppu;

    dsm::Runtime rt(cfg);
    auto grid = rt.AllocUnitAligned<float>(kRows * kCols, "grid");
    auto sums = rt.AllocUnitAligned<double>(8 * 512, "sums");

    double checksum = 0.0;
    rt.Run([&](dsm::Proc& p) {
      const std::size_t band = kRows / p.nprocs();
      const std::size_t r0 = p.id() * band, r1 = r0 + band;
      auto at = [&](std::size_t r, std::size_t c) { return r * kCols + c; };

      for (std::size_t r = r0; r < r1; ++r) {
        for (std::size_t c = 0; c < kCols; ++c) {
          p.Write(grid, at(r, c),
                  std::sin(0.01f * static_cast<float>(r * 31 + c)));
        }
      }
      p.Barrier();

      std::vector<float> next(band * kCols);
      for (int it = 0; it < kIters; ++it) {
        for (std::size_t r = r0; r < r1; ++r) {
          for (std::size_t c = 0; c < kCols; ++c) {
            const float up = r > 0 ? p.Read(grid, at(r - 1, c)) : 0.0f;
            const float dn =
                r + 1 < kRows ? p.Read(grid, at(r + 1, c)) : 0.0f;
            const float lf = c > 0 ? p.Read(grid, at(r, c - 1)) : 0.0f;
            const float rt2 =
                c + 1 < kCols ? p.Read(grid, at(r, c + 1)) : 0.0f;
            next[(r - r0) * kCols + c] = 0.25f * (up + dn + lf + rt2);
          }
          p.Compute(4 * kCols);
        }
        p.Barrier();
        for (std::size_t r = r0; r < r1; ++r) {
          for (std::size_t c = 0; c < kCols; ++c) {
            p.Write(grid, at(r, c), next[(r - r0) * kCols + c]);
          }
        }
        p.Barrier();
      }

      double local = 0.0;
      for (std::size_t r = r0; r < r1; ++r) {
        local += p.Read(grid, at(r, kCols / 2));
      }
      p.Write(sums, static_cast<std::size_t>(p.id()) * 512, local);
      p.Barrier();
      if (p.id() == 0) {
        double total = 0.0;
        for (int q = 0; q < p.nprocs(); ++q) {
          total += p.Read(sums, static_cast<std::size_t>(q) * 512);
        }
        checksum = total;
      }
    });

    const dsm::RunStats stats = rt.CollectStats();
    std::printf("%-5s %12.2f %10llu %10.1f %12.5f\n", point.label,
                stats.exec_seconds() * 1e3,
                (unsigned long long)stats.comm.total_messages(),
                static_cast<double>(stats.comm.total_data_bytes()) / 1024.0,
                checksum);
  }
  std::printf("\nAll checksums must match: the protocol is semantics-"
              "preserving at every unit size.\n");
  return 0;
}

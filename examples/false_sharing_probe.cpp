// False-sharing probe: reproduces the two worked examples of paper §2 and
// prints the resulting classification, so you can see exactly what the
// library means by "useless messages" and "piggybacked useless data".
//
//   $ ./examples/false_sharing_probe
#include <cstdio>

#include "core/runtime.h"

namespace {

void Report(const char* title, const dsm::RunStats& stats) {
  std::printf("%s\n", title);
  std::printf("  messages: %llu useful, %llu useless\n",
              (unsigned long long)stats.comm.useful_messages,
              (unsigned long long)stats.comm.useless_messages);
  std::printf("  data:     %llu useful B, %llu piggybacked useless B, "
              "%llu B on useless msgs\n\n",
              (unsigned long long)stats.comm.useful_data_bytes,
              (unsigned long long)stats.comm.piggyback_useless_bytes,
              (unsigned long long)stats.comm.useless_msg_data_bytes);
}

dsm::RuntimeConfig Config() {
  dsm::RuntimeConfig cfg;
  cfg.num_procs = 3;
  cfg.heap_bytes = 1u << 20;
  return cfg;
}

}  // namespace

int main() {
  const std::size_t n = dsm::kBasePageBytes / sizeof(int);

  {
    // Scenario 1 (paper §2): p1 writes the top half of a page, p2 the
    // bottom half; after a barrier p3 reads only the top half.  p3 must
    // exchange messages with BOTH concurrent writers; the exchange with p2
    // is pure false-sharing overhead — useless messages.
    dsm::Runtime rt(Config());
    auto page = rt.AllocUnitAligned<int>(n, "page");
    rt.Run([&](dsm::Proc& p) {
      if (p.id() == 0) {
        for (std::size_t i = 0; i < n / 2; ++i) p.Write(page, i, 1);
      } else if (p.id() == 1) {
        for (std::size_t i = n / 2; i < n; ++i) p.Write(page, i, 2);
      }
      p.Barrier();
      if (p.id() == 2) {
        for (std::size_t i = 0; i < n / 2; ++i) (void)p.Read(page, i);
      }
    });
    Report("Scenario 1: write-write false sharing -> useless messages",
           rt.CollectStats());
  }

  {
    // Scenario 2 (paper §2): p1 writes the whole page, p2 reads only the
    // top half.  One perfectly useful exchange — but half of the diff it
    // carries is never read: piggybacked useless data.
    dsm::Runtime rt(Config());
    auto page = rt.AllocUnitAligned<int>(n, "page");
    rt.Run([&](dsm::Proc& p) {
      if (p.id() == 0) {
        for (std::size_t i = 0; i < n; ++i) p.Write(page, i, 3);
      }
      p.Barrier();
      if (p.id() == 1) {
        for (std::size_t i = 0; i < n / 2; ++i) (void)p.Read(page, i);
      }
    });
    Report("Scenario 2: partial read of a truly shared page -> "
           "piggybacked useless data",
           rt.CollectStats());
  }
  return 0;
}

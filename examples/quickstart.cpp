// Quickstart: allocate shared memory, run a parallel region on 8 logical
// DSM processors, and read the communication statistics.
//
//   $ ./examples/quickstart
//
// The program computes a parallel dot product: each processor owns a block
// of two shared vectors, writes them, and after a barrier reduces the
// partial sums.  The printed statistics show the protocol at work.
#include <cstdio>

#include "core/runtime.h"

int main() {
  dsm::RuntimeConfig cfg;
  cfg.num_procs = 8;
  cfg.heap_bytes = 4u << 20;
  cfg.pages_per_unit = 1;  // 4 KB consistency units (the VM page)

  dsm::Runtime rt(cfg);
  constexpr std::size_t kN = 64 * 1024;
  auto x = rt.AllocUnitAligned<float>(kN, "x");
  auto y = rt.AllocUnitAligned<float>(kN, "y");
  auto partial = rt.AllocUnitAligned<double>(8 * 512, "partials");

  double result = 0.0;
  rt.Run([&](dsm::Proc& p) {
    const std::size_t chunk = kN / p.nprocs();
    const std::size_t begin = p.id() * chunk;

    // Initialize the owned blocks.
    for (std::size_t i = begin; i < begin + chunk; ++i) {
      p.Write(x, i, 0.5f + static_cast<float>(i % 7));
      p.Write(y, i, 2.0f - static_cast<float>(i % 5));
    }
    p.Barrier();

    // Local dot product over the owned block.
    double sum = 0.0;
    for (std::size_t i = begin; i < begin + chunk; ++i) {
      sum += static_cast<double>(p.Read(x, i)) * p.Read(y, i);
    }
    p.Compute(2 * chunk);

    // Publish the partial on a private page and reduce on processor 0.
    p.Write(partial, static_cast<std::size_t>(p.id()) * 512, sum);
    p.Barrier();
    if (p.id() == 0) {
      double total = 0.0;
      for (int q = 0; q < p.nprocs(); ++q) {
        total += p.Read(partial, static_cast<std::size_t>(q) * 512);
      }
      result = total;
    }
  });

  const dsm::RunStats stats = rt.CollectStats();
  std::printf("dot(x, y)          = %.1f\n", result);
  std::printf("modelled exec time = %.3f ms\n",
              stats.exec_seconds() * 1e3);
  std::printf("messages           = %llu useful, %llu useless, %llu sync\n",
              (unsigned long long)stats.comm.useful_messages,
              (unsigned long long)stats.comm.useless_messages,
              (unsigned long long)stats.comm.sync_messages);
  std::printf("data               = %llu useful B, %llu useless B\n",
              (unsigned long long)stats.comm.useful_data_bytes,
              (unsigned long long)stats.comm.useless_data_bytes());
  return 0;
}

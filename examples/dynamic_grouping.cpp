// Dynamic aggregation under a changing access pattern (paper §4).
//
// Phase A repeats a scattered 4-page access pattern: the dynamic scheme
// learns it and fetches the (non-contiguous!) group with one fault.
// Phase B switches to a different pattern: the scheme pays one interval of
// hysteresis, splits the stale groups, and learns the new pattern.
//
//   $ ./examples/dynamic_grouping
#include <cstdio>

#include "core/runtime.h"

int main() {
  dsm::RuntimeConfig cfg;
  cfg.num_procs = 2;
  cfg.heap_bytes = 1u << 20;
  cfg.aggregation = dsm::AggregationMode::kDynamic;
  cfg.max_group_pages = 4;

  dsm::Runtime rt(cfg);
  const std::size_t per_page = dsm::kBasePageBytes / sizeof(int);
  auto pages = rt.AllocUnitAligned<int>(32 * per_page, "pages");

  // Scattered, non-contiguous page sets.
  const std::size_t pattern_a[] = {1, 9, 17, 25};
  const std::size_t pattern_b[] = {2, 6, 30, 14};

  rt.Run([&](dsm::Proc& p) {
    auto round = [&](const std::size_t* pat, int iters) {
      for (int it = 0; it < iters; ++it) {
        if (p.id() == 0) {
          for (int k = 0; k < 4; ++k) {
            p.Write(pages, pat[k] * per_page, it + 1);
          }
        }
        p.Barrier();
        if (p.id() == 1) {
          for (int k = 0; k < 4; ++k) {
            (void)p.Read(pages, pat[k] * per_page);
          }
        }
        p.Barrier();
      }
    };
    round(pattern_a, 6);  // learn pattern A
    round(pattern_b, 6);  // pattern change: hysteresis, then regroup
  });

  const dsm::RunStats stats = rt.CollectStats();
  std::printf("dynamic aggregation over a changing scattered pattern\n");
  std::printf("  read faults          : %llu\n",
              (unsigned long long)stats.comm.read_faults);
  std::printf("  group prefetches     : %llu\n",
              (unsigned long long)stats.comm.group_prefetch_units);
  std::printf("  silent validations   : %llu\n",
              (unsigned long long)stats.comm.silent_validations);
  std::printf("  data exchanges       : %llu\n",
              (unsigned long long)(stats.comm.useful_messages +
                                   stats.comm.useless_messages) / 2);
  std::printf(
      "\nWithout grouping this workload needs 4 exchanges per iteration;\n"
      "with learned groups it needs 1 (all four diffs combined per "
      "writer).\n");
  return 0;
}
